//! Figure 16: a small content-distribution network on sandboxed In-Net
//! modules — CDF of 1 KB download delays from the origin versus the
//! nearest of three caches.
//!
//! The origin sits in Italy; caches run on platforms in Romania, Germany,
//! and Italy; 75 clients scattered around Europe are spread to caches by
//! geolocation. A 1 KB fetch costs two round trips (TCP handshake, then
//! request/response).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One client's measurements.
#[derive(Debug, Clone, Copy)]
pub struct CdnClient {
    /// Client index.
    pub client: usize,
    /// Delay fetching from the origin, ms.
    pub origin_ms: f64,
    /// Delay fetching from the assigned cache, ms.
    pub cdn_ms: f64,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct CdnParams {
    /// Number of PlanetLab-style clients (the paper uses 75).
    pub clients: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CdnParams {
    fn default() -> Self {
        CdnParams {
            clients: 75,
            seed: 16,
        }
    }
}

/// Samples per-client RTT geography and computes download delays.
///
/// Cache RTTs are short (clients are assigned their regional cache);
/// origin RTTs include the cross-Europe distance, with a long tail for
/// clients far from Italy.
pub fn cdn_downloads(params: &CdnParams) -> Vec<CdnClient> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.clients)
        .map(|client| {
            // RTT to the regional cache: 15–60 ms (PlanetLab nodes are
            // not adjacent to the caches).
            let cache_rtt = 15.0 + 45.0 * rng.gen::<f64>();
            // RTT to the origin: the regional leg plus a cross-Europe
            // component, heavy-tailed so the p90 gain is ≈4× while the
            // median gain stays ≈2× (the paper's Figure 16).
            let cross = 15.0 + 200.0 * rng.gen::<f64>().powf(2.8);
            let origin_rtt = cache_rtt + cross;
            // 1 KB download = TCP handshake (1 RTT) + request/response
            // (1 RTT): two round trips.
            CdnClient {
                client,
                origin_ms: 2.0 * origin_rtt,
                cdn_ms: 2.0 * cache_rtt,
            }
        })
        .collect()
}

/// Percentile over a sample (nearest-rank).
pub fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((p / 100.0) * (xs.len() as f64 - 1.0)).round() as usize;
    xs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_halved_p90_quartered() {
        let clients = cdn_downloads(&CdnParams::default());
        let origin: Vec<f64> = clients.iter().map(|c| c.origin_ms).collect();
        let cdn: Vec<f64> = clients.iter().map(|c| c.cdn_ms).collect();
        let med_ratio = percentile(origin.clone(), 50.0) / percentile(cdn.clone(), 50.0);
        let p90_ratio = percentile(origin, 90.0) / percentile(cdn, 90.0);
        // Paper: "the median download time is halved, and the 90%
        // percentile is four times lower."
        assert!((1.5..=3.5).contains(&med_ratio), "median ratio {med_ratio}");
        assert!((2.5..=6.0).contains(&p90_ratio), "p90 ratio {p90_ratio}");
    }

    #[test]
    fn cdn_never_slower() {
        for c in cdn_downloads(&CdnParams::default()) {
            assert!(c.cdn_ms < c.origin_ms, "{c:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = cdn_downloads(&CdnParams::default());
        let b = cdn_downloads(&CdnParams::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.origin_ms, y.origin_ms);
        }
    }
}
