//! The Click static analyzer end to end: lint a configuration with a
//! seeded wiring mistake, print the structured diagnostics, then fix it
//! and print the field-effect summary table the abstract interpreter
//! derives for each egress flow — the same machinery the controller uses
//! to refuse malformed configurations with precise messages and to skip
//! symbolic execution on its fast path.
//!
//! Run with: `cargo run -p innet-examples --bin lint`

use innet::analysis::{flow_effects, lint};
use innet::prelude::*;

fn main() {
    let registry = Registry::standard();

    // A plausible first draft with two classic mistakes: a Tee branch
    // wired to nothing (packets vanish) and a leftover debug counter
    // nothing feeds.
    let mut draft = ClickConfig::new();
    draft.add_element("in", "FromNetfront", &[]);
    draft.add_element("mirror", "Tee", &["2"]);
    draft.add_element("nat", "IPRewriter", &["pattern - - 172.16.15.133 - 0 0"]);
    draft.add_element("out", "ToNetfront", &[]);
    draft.add_element("dbg", "Counter", &[]);
    draft.add_element("dbg_sink", "Discard", &[]);
    draft.connect("in", 0, "mirror", 0);
    draft.connect("mirror", 0, "nat", 0);
    draft.connect("nat", 0, "out", 0);
    draft.connect("dbg", 0, "dbg_sink", 0);

    println!("== lint: first draft ==");
    let report = lint(&draft, &registry);
    for d in &report.diagnostics {
        println!("  {d}");
    }
    println!(
        "  -> {} finding(s), errors: {}",
        report.diagnostics.len(),
        report.has_errors()
    );

    // The corrected configuration: mirror branch fed to a counter that
    // drains into a Discard, debug chain attached.
    let fixed = ClickConfig::parse(
        "in :: FromNetfront();
         mirror :: Tee(2);
         nat :: IPRewriter(pattern - - 172.16.15.133 - 0 0);
         out :: ToNetfront();
         dbg :: Counter();
         dbg_sink :: Discard();
         in -> mirror;
         mirror[0] -> nat -> out;
         mirror[1] -> dbg -> dbg_sink;",
    )
    .expect("fixed config parses");

    println!();
    println!("== lint: fixed ==");
    let report = lint(&fixed, &registry);
    println!(
        "  {} finding(s), errors: {}",
        report.diagnostics.len(),
        report.has_errors()
    );

    println!();
    println!("== field effects per abstract egress flow ==");
    let effects = flow_effects(&fixed, &registry).expect("chain is analyzable");
    for (i, fx) in effects.iter().enumerate() {
        println!(
            "  flow {i}{}:",
            if fx.filtered { " (filtered)" } else { "" }
        );
        for (field, value, written) in &fx.fields {
            // Only show fields the flow touched, plus the addresses the
            // security rules care about.
            if *written || *field == "ip_src" || *field == "ip_dst" {
                let mark = if *written { "*" } else { " " };
                println!("    {mark} {field:10} = {value}");
            }
        }
    }
}
