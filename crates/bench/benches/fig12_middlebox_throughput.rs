//! Figure 12: aggregate throughput of many middlebox VMs of four kinds
//! on a single core. Measured natively, on both engines — the
//! interpreted element graph and the compiled flat plan — and recorded
//! as a `BENCH_fig12_middlebox.json` snapshot (the committed perf
//! trajectory).

use innet::experiments::fig12_middleboxes::{middlebox_sweep_with, KINDS};
use innet_bench::{quick_mode, BenchSnapshot, Report};

fn main() {
    let quick = quick_mode();
    let counts: Vec<usize> = if quick {
        vec![1, 10, 40]
    } else {
        vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    };
    let frame = 1472;
    let mut r = Report::new(
        "fig12_middlebox_throughput",
        "Figure 12: aggregate throughput (Gbit/s) vs VM count, one core",
    );
    let mut snap = BenchSnapshot::new("fig12_middlebox");
    for (compiled, mode) in [(false, "interpreted"), (true, "compiled")] {
        r.line(&format!("engine: {mode}"));
        let header = format!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "VMs", KINDS[0], KINDS[1], KINDS[2], KINDS[3]
        );
        r.line(&header);
        let sweeps: Vec<Vec<_>> = KINDS
            .iter()
            .map(|kind| middlebox_sweep_with(kind, &counts, frame, compiled))
            .collect();
        for (i, &n) in counts.iter().enumerate() {
            r.line(&format!(
                "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                n, sweeps[0][i].gbps, sweeps[1][i].gbps, sweeps[2][i].gbps, sweeps[3][i].gbps
            ));
        }
        r.blank();
    }
    // Snapshot rows: the single-VM point per kind, measured at the
    // minimum frame size. The figure above keeps the paper's 1472-byte
    // frames, where the modelled netfront cost (a copy plus a checksum
    // over every frame byte, paid identically by both engines) dominates
    // and hides the engines from each other; at 64 bytes the per-packet
    // classification and header work — the cost the compiled plan
    // removes — is what the row measures.
    // Each row is the best of `reps` sweeps: ambient load on a shared
    // machine only ever slows a run, so the max is the noise-robust
    // estimate.
    let snap_frame = 64;
    let reps = if quick { 2 } else { 5 };
    for (compiled, mode) in [(false, "interpreted"), (true, "compiled")] {
        let mut agg_pps = 0.0;
        let mut agg_gbps = 0.0;
        for kind in KINDS.iter() {
            let p = (0..reps)
                .map(|_| middlebox_sweep_with(kind, &[1], snap_frame, compiled)[0])
                .max_by(|a, b| a.mpps.total_cmp(&b.mpps))
                .expect("reps >= 1");
            let pps = p.mpps * 1e6;
            snap.row(&format!("fig12-{kind}"), mode, 1, pps, p.gbps);
            agg_pps += pps;
            agg_gbps += p.gbps;
        }
        let n = KINDS.len() as f64;
        snap.row("fig12-aggregate", mode, 1, agg_pps / n, agg_gbps / n);
    }
    println!();
    println!(
        "{:<20} {:>12} {:>12} {:>8}",
        "corpus", "interp pps", "compiled pps", "speedup"
    );
    for kind in KINDS
        .iter()
        .map(|k| format!("fig12-{k}"))
        .chain(["fig12-aggregate".to_string()])
    {
        let find = |mode: &str| {
            snap.rows
                .iter()
                .find(|r| r.corpus == kind && r.mode == mode)
                .map(|r| r.pps)
                .unwrap_or(0.0)
        };
        let (i, c) = (find("interpreted"), find("compiled"));
        println!(
            "{kind:<20} {i:>12.0} {c:>12.0} {:>7.2}x",
            if i > 0.0 { c / i } else { 0.0 }
        );
    }
    r.line(
        "paper: high, flat aggregate regardless of middlebox count and \
         type (their testbed tops at ~10 Gbit/s)",
    );
    r.finish();
    snap.write();
}
