//! The Click configuration language: parser, AST, and programmatic builder.
//!
//! In-Net clients express processing requests in this language (paper §4.1).
//! The subset implemented here covers everything the paper uses:
//!
//! ```text
//! config     := (statement ';')*
//! statement  := declaration | connection
//! declaration:= NAME '::' CLASS [ '(' raw-args ')' ]
//! connection := endpoint ('->' endpoint)+
//! endpoint   := ['[' PORT ']'] ref ['[' PORT ']']
//! ref        := NAME                      -- previously declared element
//!             | NAME '::' CLASS '(..)'    -- inline declaration
//!             | CLASS '(..)'              -- anonymous element
//! ```
//!
//! Comments (`// ...` and `/* ... */`) are stripped. Class names start with
//! an uppercase letter; element names do not (Click's own convention).

use std::collections::HashMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::args::split_args;

/// A declared element instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementDecl {
    /// Instance name (unique within a configuration).
    pub name: String,
    /// Element class, e.g. `IPFilter`.
    pub class: String,
    /// Raw arguments, already split on top-level commas.
    pub args: Vec<String>,
}

/// One endpoint of a connection: an element name plus a port number.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortRef {
    /// Element instance name.
    pub element: String,
    /// Port index on that element.
    pub port: usize,
}

impl PortRef {
    /// Builds a port reference.
    pub fn new(element: impl Into<String>, port: usize) -> PortRef {
        PortRef {
            element: element.into(),
            port,
        }
    }
}

/// A directed edge from an output port to an input port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Source output port.
    pub from: PortRef,
    /// Destination input port.
    pub to: PortRef,
}

/// Errors produced while parsing or validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Lexical or syntactic failure, with a human-readable description.
    Syntax(String),
    /// An element name was declared twice.
    DuplicateName(String),
    /// A connection references an element that was never declared.
    UnknownElement(String),
    /// Two connections leave the same output port (Click forbids this for
    /// push ports, and so do we).
    OutputFanout(PortRef),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Syntax(m) => write!(f, "syntax error: {m}"),
            ConfigError::DuplicateName(n) => write!(f, "duplicate element name '{n}'"),
            ConfigError::UnknownElement(n) => write!(f, "unknown element '{n}'"),
            ConfigError::OutputFanout(p) => {
                write!(f, "output [{}]{} connected twice", p.port, p.element)
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A parsed Click configuration: element declarations plus connections.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct ClickConfig {
    /// Declared elements, in declaration order.
    pub elements: Vec<ElementDecl>,
    /// Connections, in source order.
    pub connections: Vec<Connection>,
    anon_counter: usize,
    /// Memoized canonical text (see [`ClickConfig::canonical_text`]) —
    /// every admission-path memo keys on it, so it is rendered at most
    /// once per config instance. The mutating builder methods reset it
    /// and clones start unmemoized, so it cannot go stale through this
    /// type's API; code mutating the public fields of a config it did not
    /// just create must clone first.
    #[serde(skip)]
    pub(crate) canonical: std::sync::OnceLock<String>,
}

/// Clones restart with an empty canonical-text memo: the usual reason to
/// clone is to mutate (e.g. `$SELF` substitution), after which the
/// original's rendered text would be wrong for the copy.
impl Clone for ClickConfig {
    fn clone(&self) -> ClickConfig {
        ClickConfig {
            elements: self.elements.clone(),
            connections: self.connections.clone(),
            anon_counter: self.anon_counter,
            canonical: std::sync::OnceLock::new(),
        }
    }
}

/// Equality ignores the canonical-text memo (a derived value).
impl PartialEq for ClickConfig {
    fn eq(&self, other: &ClickConfig) -> bool {
        self.elements == other.elements
            && self.connections == other.connections
            && self.anon_counter == other.anon_counter
    }
}

impl Eq for ClickConfig {}

impl ClickConfig {
    /// An empty configuration (use the builder methods to populate it).
    pub fn new() -> ClickConfig {
        ClickConfig::default()
    }

    /// Declares an element; returns the instance name.
    pub fn add_element(
        &mut self,
        name: impl Into<String>,
        class: impl Into<String>,
        args: &[&str],
    ) -> String {
        let name = name.into();
        self.canonical.take();
        self.elements.push(ElementDecl {
            name: name.clone(),
            class: class.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        });
        name
    }

    /// Declares an element with a generated unique name.
    pub fn add_anon(&mut self, class: impl Into<String>, args: &[&str]) -> String {
        let class = class.into();
        self.anon_counter += 1;
        let name = format!("{}@{}", class, self.anon_counter);
        self.add_element(name, class, args)
    }

    /// Connects `[from_port]from -> [to_port]to`.
    pub fn connect(
        &mut self,
        from: impl Into<String>,
        from_port: usize,
        to: impl Into<String>,
        to_port: usize,
    ) {
        self.canonical.take();
        self.connections.push(Connection {
            from: PortRef::new(from, from_port),
            to: PortRef::new(to, to_port),
        });
    }

    /// Looks up a declaration by instance name.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Instance names of all elements of the given class.
    pub fn elements_of_class(&self, class: &str) -> Vec<&str> {
        self.elements
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Checks structural sanity: unique names, known references, no output
    /// fan-out.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut seen = HashMap::new();
        for e in &self.elements {
            if seen.insert(e.name.as_str(), ()).is_some() {
                return Err(ConfigError::DuplicateName(e.name.clone()));
            }
        }
        let mut outs = HashMap::new();
        for c in &self.connections {
            for p in [&c.from, &c.to] {
                if !seen.contains_key(p.element.as_str()) {
                    return Err(ConfigError::UnknownElement(p.element.clone()));
                }
            }
            if outs.insert(c.from.clone(), ()).is_some() {
                return Err(ConfigError::OutputFanout(c.from.clone()));
            }
        }
        Ok(())
    }

    /// Imports all elements and connections of `other`, prefixing every
    /// instance name with `prefix/`.
    ///
    /// This is the primitive behind tenant consolidation (paper §5): a
    /// platform merges several clients' configurations into one VM-level
    /// configuration. No connections are added between the imported graph
    /// and existing elements — isolation is preserved by construction.
    pub fn merge_namespaced(&mut self, prefix: &str, other: &ClickConfig) {
        self.canonical.take();
        let rename = |n: &str| format!("{prefix}/{n}");
        for e in &other.elements {
            self.elements.push(ElementDecl {
                name: rename(&e.name),
                class: e.class.clone(),
                args: e.args.clone(),
            });
        }
        for c in &other.connections {
            self.connections.push(Connection {
                from: PortRef::new(rename(&c.from.element), c.from.port),
                to: PortRef::new(rename(&c.to.element), c.to.port),
            });
        }
    }

    /// Serializes back to Click-language text. `parse(to_text())` yields an
    /// equivalent configuration (a property test asserts this).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for e in &self.elements {
            let _ = writeln!(s, "{} :: {}({});", e.name, e.class, e.args.join(", "));
        }
        for c in &self.connections {
            let _ = writeln!(
                s,
                "{}[{}] -> [{}]{};",
                c.from.element, c.from.port, c.to.port, c.to.element
            );
        }
        s
    }

    /// Parses a Click-language configuration.
    pub fn parse(text: &str) -> Result<ClickConfig, ConfigError> {
        Parser::new(text)?.run()
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    /// `(` raw argument text `)` — captured verbatim with nesting.
    Args(String),
    DoubleColon,
    Arrow,
    LBracket,
    RBracket,
    Semi,
    Number(usize),
}

fn strip_comments(text: &str) -> Result<String, ConfigError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for d in chars.by_ref() {
                        if d == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let mut prev = '\0';
                    let mut closed = false;
                    for d in chars.by_ref() {
                        if prev == '*' && d == '/' {
                            closed = true;
                            break;
                        }
                        prev = d;
                    }
                    if !closed {
                        return Err(ConfigError::Syntax("unterminated /* comment".into()));
                    }
                    out.push(' ');
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn lex(text: &str) -> Result<Vec<Tok>, ConfigError> {
    let text = strip_comments(text)?;
    let mut toks = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            c if c.is_whitespace() => {}
            ';' => toks.push(Tok::Semi),
            '[' => toks.push(Tok::LBracket),
            ']' => toks.push(Tok::RBracket),
            ':' => {
                if chars.peek().map(|&(_, d)| d) == Some(':') {
                    chars.next();
                    toks.push(Tok::DoubleColon);
                } else {
                    return Err(ConfigError::Syntax(format!("stray ':' at byte {i}")));
                }
            }
            '-' => {
                if chars.peek().map(|&(_, d)| d) == Some('>') {
                    chars.next();
                    toks.push(Tok::Arrow);
                } else {
                    return Err(ConfigError::Syntax(format!("stray '-' at byte {i}")));
                }
            }
            '(' => {
                // Capture raw args up to the matching close paren.
                let mut depth = 1usize;
                let mut raw = String::new();
                for (_, d) in chars.by_ref() {
                    match d {
                        '(' => {
                            depth += 1;
                            raw.push(d);
                        }
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            raw.push(d);
                        }
                        _ => raw.push(d),
                    }
                }
                if depth != 0 {
                    return Err(ConfigError::Syntax("unbalanced '('".into()));
                }
                toks.push(Tok::Args(raw));
            }
            c if c.is_ascii_digit() => {
                let mut n = String::from(c);
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = n
                    .parse()
                    .map_err(|_| ConfigError::Syntax(format!("bad number '{n}'")))?;
                toks.push(Tok::Number(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut id = String::from(c);
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '@' || d == '/' {
                        id.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(id));
            }
            other => {
                return Err(ConfigError::Syntax(format!(
                    "unexpected character '{other}' at byte {i}"
                )));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    cfg: ClickConfig,
}

impl Parser {
    fn new(text: &str) -> Result<Parser, ConfigError> {
        Ok(Parser {
            toks: lex(text)?,
            pos: 0,
            cfg: ClickConfig::new(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), ConfigError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(ConfigError::Syntax(format!(
                "expected {what}, found {:?}",
                self.peek()
            )))
        }
    }

    fn run(mut self) -> Result<ClickConfig, ConfigError> {
        while self.peek().is_some() {
            if self.eat(&Tok::Semi) {
                continue;
            }
            self.statement()?;
            self.expect(Tok::Semi, "';'")?;
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Parses either a pure declaration or a connection chain.
    fn statement(&mut self) -> Result<(), ConfigError> {
        let first = self.endpoint()?;
        if self.peek() != Some(&Tok::Arrow) {
            // A lone declaration/reference statement.
            return Ok(());
        }
        let mut prev = first;
        while self.eat(&Tok::Arrow) {
            let next = self.endpoint()?;
            self.cfg.connections.push(Connection {
                from: PortRef::new(prev.0.clone(), prev.2),
                to: PortRef::new(next.0.clone(), next.1),
            });
            prev = next;
        }
        Ok(())
    }

    /// Parses `[inport]? ref [outport]?`, returning
    /// `(element_name, in_port, out_port)`.
    fn endpoint(&mut self) -> Result<(String, usize, usize), ConfigError> {
        let in_port = if self.eat(&Tok::LBracket) {
            let n = self.number()?;
            self.expect(Tok::RBracket, "']'")?;
            n
        } else {
            0
        };
        let name = self.element_ref()?;
        let out_port = if self.eat(&Tok::LBracket) {
            let n = self.number()?;
            self.expect(Tok::RBracket, "']'")?;
            n
        } else {
            0
        };
        Ok((name, in_port, out_port))
    }

    fn number(&mut self) -> Result<usize, ConfigError> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            other => Err(ConfigError::Syntax(format!(
                "expected port number, found {other:?}"
            ))),
        }
    }

    /// Parses an element reference, registering declarations as needed.
    fn element_ref(&mut self) -> Result<String, ConfigError> {
        let Some(Tok::Ident(id)) = self.next() else {
            return Err(ConfigError::Syntax(format!(
                "expected element, found {:?}",
                self.toks.get(self.pos.saturating_sub(1))
            )));
        };

        // `name :: Class(args)` — declaration (inline or standalone).
        if self.peek() == Some(&Tok::DoubleColon) {
            self.pos += 1;
            let Some(Tok::Ident(class)) = self.next() else {
                return Err(ConfigError::Syntax("expected class after '::'".into()));
            };
            let args = self.optional_args();
            if self.cfg.element(&id).is_some() {
                return Err(ConfigError::DuplicateName(id));
            }
            self.cfg.elements.push(ElementDecl {
                name: id.clone(),
                class,
                args,
            });
            return Ok(id);
        }

        // `Class(args)` — anonymous element (class names are capitalized).
        let looks_like_class = id.chars().next().is_some_and(|c| c.is_uppercase());
        if looks_like_class && matches!(self.peek(), Some(Tok::Args(_))) {
            let args = self.optional_args();
            return Ok(self
                .cfg
                .add_anon(id, &args.iter().map(|s| s.as_str()).collect::<Vec<_>>()));
        }
        if looks_like_class && self.cfg.element(&id).is_none() {
            // `-> Discard;` style: anonymous element without parens.
            return Ok(self.cfg.add_anon(id, &[]));
        }

        // Otherwise: a reference to a previously declared element.
        if self.cfg.element(&id).is_none() {
            return Err(ConfigError::UnknownElement(id));
        }
        Ok(id)
    }

    fn optional_args(&mut self) -> Vec<String> {
        if let Some(Tok::Args(raw)) = self.peek() {
            let raw = raw.clone();
            self.pos += 1;
            split_args(&raw)
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_figure4() {
        let cfg = ClickConfig::parse(
            r#"
            // Batcher module from Figure 4.
            FromNetfront() ->
            IPFilter(allow udp dst port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
            "#,
        )
        .unwrap();
        assert_eq!(cfg.elements.len(), 5);
        assert_eq!(cfg.connections.len(), 4);
        assert!(cfg.element("dst").is_some());
        assert_eq!(cfg.element("dst").unwrap().class, "ToNetfront");
        assert_eq!(cfg.elements_of_class("IPFilter").len(), 1);
    }

    #[test]
    fn declarations_then_connections() {
        let cfg = ClickConfig::parse(
            r#"
            src :: FromNetfront();
            f :: IPFilter(allow udp);
            snk :: ToNetfront();
            src -> f -> snk;
            "#,
        )
        .unwrap();
        assert_eq!(cfg.elements.len(), 3);
        assert_eq!(cfg.connections.len(), 2);
    }

    #[test]
    fn explicit_ports() {
        let cfg = ClickConfig::parse(
            r#"
            c :: Classifier(12/0800, -);
            d1 :: Discard;
            d2 :: Discard;
            c[0] -> d1;
            c[1] -> [0]d2;
            "#,
        )
        .unwrap();
        assert_eq!(cfg.connections[0].from.port, 0);
        assert_eq!(cfg.connections[1].from.port, 1);
        assert_eq!(cfg.connections[1].to.port, 0);
    }

    #[test]
    fn block_comments() {
        let cfg = ClickConfig::parse("/* hi */ a :: Discard; /* multi\nline */").unwrap();
        assert_eq!(cfg.elements.len(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let e = ClickConfig::parse("a :: Discard; a :: Discard;").unwrap_err();
        assert!(matches!(e, ConfigError::DuplicateName(_)));
    }

    #[test]
    fn unknown_reference_rejected() {
        let e = ClickConfig::parse("a :: Discard; a -> b;").unwrap_err();
        assert!(matches!(e, ConfigError::UnknownElement(_)));
    }

    #[test]
    fn fanout_rejected() {
        let e =
            ClickConfig::parse("a :: Tee(2); b :: Discard; c :: Discard; a[0] -> b; a[0] -> c;")
                .unwrap_err();
        assert!(matches!(e, ConfigError::OutputFanout(_)));
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(matches!(
            ClickConfig::parse("/* nope"),
            Err(ConfigError::Syntax(_))
        ));
    }

    #[test]
    fn unbalanced_paren_rejected() {
        assert!(matches!(
            ClickConfig::parse("a :: IPFilter(allow udp;"),
            Err(ConfigError::Syntax(_))
        ));
    }

    #[test]
    fn to_text_roundtrip() {
        let cfg = ClickConfig::parse(
            "f :: IPFilter(allow udp dst port 1500, deny all); s :: ToNetfront(); f -> s;",
        )
        .unwrap();
        let again = ClickConfig::parse(&cfg.to_text()).unwrap();
        assert_eq!(cfg.elements, again.elements);
        assert_eq!(cfg.connections, again.connections);
    }

    #[test]
    fn merge_namespaced_isolates() {
        let client: ClickConfig =
            ClickConfig::parse("f :: IPFilter(allow udp); t :: ToNetfront(); f -> t;").unwrap();
        let mut host = ClickConfig::new();
        host.merge_namespaced("alice", &client);
        host.merge_namespaced("bob", &client);
        assert!(host.element("alice/f").is_some());
        assert!(host.element("bob/f").is_some());
        host.validate().unwrap();
        // No cross-tenant connections were introduced.
        for c in &host.connections {
            let from_tenant = c.from.element.split('/').next().unwrap();
            let to_tenant = c.to.element.split('/').next().unwrap();
            assert_eq!(from_tenant, to_tenant);
        }
    }

    #[test]
    fn builder_api() {
        let mut cfg = ClickConfig::new();
        cfg.add_element("src", "FromNetfront", &[]);
        let f = cfg.add_anon("IPFilter", &["allow udp"]);
        cfg.add_element("snk", "ToNetfront", &[]);
        cfg.connect("src", 0, &f, 0);
        cfg.connect(&f, 0, "snk", 0);
        cfg.validate().unwrap();
        let parsed = ClickConfig::parse(&cfg.to_text()).unwrap();
        assert_eq!(parsed.elements.len(), 3);
    }
}
