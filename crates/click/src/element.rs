//! The element abstraction: Click's unit of packet processing.

use std::any::Any;

use innet_packet::Packet;

/// Per-run execution context handed to every element invocation.
///
/// Elements never read wall-clock time themselves; the driver (the platform's
/// native engine or the discrete-event simulator) supplies virtual time, so
/// the same element code runs identically in both.
#[derive(Debug, Clone, Copy, Default)]
pub struct Context {
    /// Current virtual time in nanoseconds.
    pub now_ns: u64,
}

impl Context {
    /// A context at the given virtual time.
    pub fn at(now_ns: u64) -> Context {
        Context { now_ns }
    }
}

/// Where an element's output packets go.
///
/// `push` delivers to a numbered output port (wired to a downstream element
/// by the router); `transmit` hands a packet to the outside world through a
/// numbered interface (used by `ToNetfront`).
pub trait Sink {
    /// Emits a packet on an element output port.
    fn push(&mut self, port: usize, pkt: Packet);

    /// Transmits a packet out of the router on an interface.
    fn transmit(&mut self, iface: u16, pkt: Packet);
}

/// A [`Sink`] that records everything, for unit-testing elements in
/// isolation.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Packets pushed to output ports, in emission order.
    pub pushed: Vec<(usize, Packet)>,
    /// Packets transmitted out of the router, in emission order.
    pub transmitted: Vec<(u16, Packet)>,
}

impl VecSink {
    /// A fresh, empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The single packet pushed on `port`, if exactly one was pushed overall.
    pub fn only(&self, port: usize) -> Option<&Packet> {
        match self.pushed.as_slice() {
            [(p, pkt)] if *p == port => Some(pkt),
            _ => None,
        }
    }
}

impl Sink for VecSink {
    fn push(&mut self, port: usize, pkt: Packet) {
        self.pushed.push((port, pkt));
    }

    fn transmit(&mut self, iface: u16, pkt: Packet) {
        self.transmitted.push((iface, pkt));
    }
}

/// Number of input and output ports an element exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCount {
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
}

impl PortCount {
    /// The common one-in/one-out shape.
    pub const ONE_ONE: PortCount = PortCount {
        inputs: 1,
        outputs: 1,
    };

    /// Builds a port count.
    pub fn new(inputs: usize, outputs: usize) -> PortCount {
        PortCount { inputs, outputs }
    }
}

/// Errors raised while configuring an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementError {
    /// The element class is not in the registry — the request must be
    /// rejected because static analysis has no model for it (paper §4.1:
    /// "we can automatically analyze the client's processing as long as it
    /// relies only on known elements").
    UnknownClass(String),
    /// The arguments did not parse.
    BadArgs {
        /// Element class being configured.
        class: &'static str,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ElementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementError::UnknownClass(c) => write!(f, "unknown element class '{c}'"),
            ElementError::BadArgs { class, message } => {
                write!(f, "bad arguments for {class}: {message}")
            }
        }
    }
}

impl std::error::Error for ElementError {}

/// A packet-processing element.
///
/// Elements are single-threaded state machines: the router guarantees that
/// `push` and `tick` are never called concurrently. All inter-element
/// communication happens through packets (the property the paper relies on
/// when consolidating multiple tenants into one VM, §5).
pub trait Element: Send + Any {
    /// The Click class name (e.g. `"IPFilter"`).
    fn class_name(&self) -> &'static str;

    /// How many input and output ports this instance exposes.
    fn ports(&self) -> PortCount;

    /// Processes one packet arriving on `port`.
    fn push(&mut self, port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink);

    /// Advances virtual time; timed elements (queues, shapers, batchers)
    /// release packets here.
    fn tick(&mut self, _ctx: &Context, _out: &mut dyn Sink) {}

    /// The earliest virtual time at which this element wants a `tick`, if
    /// any. Drivers use this to schedule wake-ups instead of polling.
    fn next_tick_ns(&self) -> Option<u64> {
        None
    }

    /// Dynamic view for test/metric introspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable dynamic view for test/metric introspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::PacketBuilder;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.push(0, PacketBuilder::udp().build());
        s.transmit(3, PacketBuilder::udp().build());
        s.push(1, PacketBuilder::udp().build());
        assert_eq!(s.pushed.len(), 2);
        assert_eq!(s.pushed[0].0, 0);
        assert_eq!(s.pushed[1].0, 1);
        assert_eq!(s.transmitted[0].0, 3);
    }

    #[test]
    fn only_helper() {
        let mut s = VecSink::new();
        assert!(s.only(0).is_none());
        s.push(0, PacketBuilder::udp().build());
        assert!(s.only(0).is_some());
        assert!(s.only(1).is_none());
        s.push(0, PacketBuilder::udp().build());
        assert!(s.only(0).is_none(), "two packets -> not 'only'");
    }
}
