//! Flow-sharded parallel execution: scale the stock consolidated
//! firewall across worker threads with the unified `RunnerConfig`
//! builder, observe the `innet_parallel_*` instruments, shard a
//! bidirectional NAT gateway under the symmetric dispatch hash, and
//! verify the global-state degrade rule on a queue.
//!
//! Exits non-zero if 4 workers fail to reach 1.5x the single-worker
//! rate on the stateless corpus — the smoke threshold CI enforces (the
//! full ≥3x target is measured by the `parallel_scaling` bench). The
//! speedup gate only applies on hosts with at least 4 CPUs: on fewer
//! cores the workers time-slice one another and no speedup is
//! physically possible, so the run still checks every correctness
//! invariant but reports the scaling numbers as informational.
//!
//! Run with: `cargo run --release -p innet-examples --bin parallel`

use std::net::Ipv4Addr;

use innet::obs;
use innet::platform::consolidated_config;
use innet::prelude::*;

const TRACE_LEN: usize = 4096;
const FLOWS: usize = 64;
const ROUNDS: usize = 40;

fn trace(dsts: &[Ipv4Addr]) -> Vec<Packet> {
    (0..TRACE_LEN)
        .map(|i| {
            let f = i % FLOWS;
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                .dst(dsts[f % dsts.len()], 80)
                .pad_to(64)
                .build()
        })
        .collect()
}

fn main() {
    // The paper's §5 consolidated firewall: one demux, 16 tenant
    // firewalls. Stateless end to end, so the registry clears it for
    // flow-sharded replication.
    let clients: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let pkts = trace(&clients);

    println!("== consolidated firewall (16 tenants), {TRACE_LEN}-packet trace x{ROUNDS} ==");
    let mut baseline = 0.0;
    let mut at4 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let reg = obs::Registry::new();
        let mut runner = RunnerConfig::new()
            .workers(workers)
            .batch(32)
            .metrics(&reg)
            .parallel(&cfg)
            .expect("valid config");
        let stats = runner.run(&pkts, ROUNDS);
        assert_eq!(stats.transmitted, stats.packets, "nothing lost");
        let speedup = if baseline > 0.0 {
            stats.pps() / baseline
        } else {
            1.0
        };
        if workers == 1 {
            baseline = stats.pps();
        }
        if workers == 4 {
            at4 = stats.pps();
        }
        // Every worker reports its own share through the shared registry.
        let per_worker = reg.labeled_counter("innet_parallel_packets_total", "worker");
        let shares: Vec<String> = (0..workers)
            .map(|w| format!("w{w}={}", per_worker.get(&w.to_string())))
            .collect();
        println!(
            "  {workers} worker(s): {:>8.0} kpps  ({speedup:.2}x)   [{}]",
            stats.pps() / 1e3,
            shares.join(" ")
        );
    }

    // The compiled flat plan: the same verified config lowered to a
    // host-table dispatch + fused header ops, behind one builder flag.
    // Both engines must agree packet-for-packet (the differential suite
    // proves it); here we show the flag and the single-worker delta.
    println!("== engine: compiled (flat plan vs interpreted graph, 1 worker) ==");
    let mut interp = RunnerConfig::new().batch(32).native(&cfg).expect("valid");
    let mut comp = RunnerConfig::new()
        .batch(32)
        .compiled(true)
        .native(&cfg)
        .expect("valid");
    let si = interp.run(&pkts, ROUNDS / 4);
    let sc = comp.run(&pkts, ROUNDS / 4);
    assert_eq!(sc.transmitted, si.transmitted, "engines agree on delivery");
    println!(
        "  interpreted {:>8.0} kpps | compiled {:>8.0} kpps ({:.2}x)",
        si.pps() / 1e3,
        sc.pps() / 1e3,
        sc.pps() / si.pps()
    );

    // Sharded NAT: per-connection state is flow-partitionable, so a
    // bidirectional NAT gateway runs on all requested workers — the
    // symmetric dispatch hash pins each connection's forward packets
    // and its publicly-addressed replies to the same replica.
    let public = Ipv4Addr::new(203, 0, 113, 1);
    let nat = nat_gateway_config(public);
    let mut runner = RunnerConfig::new()
        .workers(4)
        .batch(32)
        .parallel(&nat)
        .expect("valid config");
    println!("== sharded NAT (symmetric dispatch) ==");
    println!(
        "  IPNAT gateway: requested {} workers, running {} (verdict: {:?})",
        runner.requested_workers(),
        runner.effective_workers(),
        runner.shardability()
    );
    assert_eq!(runner.shardability(), Shardability::FlowPartitionable);
    assert_eq!(runner.effective_workers(), 4);
    // Interleaved forward and reverse traffic: every reply must find
    // its mapping on the replica that created it. The NAT allocates
    // public ports as a pure hash of the flow key, so replies can
    // target the mapped port up front; the corpus skips the rare
    // preferred-port collision so every allocation is its preferred.
    let mut conns: Vec<(FlowKey, u16)> = Vec::new();
    let mut used_ports = std::collections::BTreeSet::new();
    let mut c = 0usize;
    while conns.len() < FLOWS {
        let key = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, (c % 250) as u8 + 1),
            dst: Ipv4Addr::new(198, 51, 100, (c % 250) as u8 + 1),
            proto: IpProto::Udp,
            src_port: 5000 + c as u16,
            dst_port: 53,
        };
        c += 1;
        let mapped = innet::click::elements::IpNat::preferred_port(&key);
        if used_ports.insert(mapped) {
            conns.push((key, mapped));
        }
    }
    let mut nat_trace: Vec<Packet> = Vec::new();
    for round in 0..4 {
        for (key, mapped) in &conns {
            if round % 2 == 0 {
                nat_trace.push(
                    PacketBuilder::udp()
                        .src(key.src, key.src_port)
                        .dst(key.dst, key.dst_port)
                        .pad_to(64)
                        .build(),
                );
            } else {
                let mut reply = PacketBuilder::udp()
                    .src(key.dst, key.dst_port)
                    .dst(public, *mapped)
                    .pad_to(64)
                    .build();
                reply.meta.ingress = 1;
                nat_trace.push(reply);
            }
        }
    }
    let stats = runner.run(&nat_trace, 1);
    assert_eq!(
        stats.transmitted, stats.packets,
        "every reply found its mapping across {} workers",
        stats.workers
    );
    println!(
        "  {} bidirectional packets across {} workers, all translated",
        stats.packets, stats.workers
    );

    // The global-state degrade rule, visibly: a queue shares timing
    // state across every flow, so it requests 4 workers and runs on 1.
    let queued =
        ClickConfig::parse("FromNetfront() -> Queue(64) -> TimedUnqueue(1, 64) -> ToNetfront();")
            .expect("valid literal config");
    let runner = RunnerConfig::new()
        .workers(4)
        .parallel(&queued)
        .expect("valid config");
    println!("== global-state degrade ==");
    println!(
        "  Queue: requested {} workers, running {} (verdict: {:?})",
        runner.requested_workers(),
        runner.effective_workers(),
        runner.shardability()
    );
    assert!(!runner.shardable());
    assert_eq!(runner.effective_workers(), 1);

    let speedup4 = at4 / baseline;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        println!("== verdict: 4-worker speedup {speedup4:.2}x on {cores} cores (smoke threshold 1.5x) ==");
        assert!(
            speedup4 >= 1.5,
            "expected >=1.5x at 4 workers on a {cores}-core host, measured {speedup4:.2}x"
        );
    } else {
        println!(
            "== verdict: 4-worker speedup {speedup4:.2}x on {cores} core(s) — \
             speedup gate skipped (needs >=4 CPUs to be meaningful) =="
        );
    }
}
