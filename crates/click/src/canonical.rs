//! Canonical serialization and stable hashing of configurations.
//!
//! The controller caches verification verdicts keyed by the *meaning* of a
//! tenant configuration rather than its spelling: two requests whose
//! configurations differ only in declaration order, connection order, or
//! argument whitespace must produce the same cache key. [`ClickConfig::canonical_text`]
//! computes a normal form with those degrees of freedom removed, and
//! [`ClickConfig::canonical_hash`] digests it with 64-bit FNV-1a — a hash
//! that, unlike `std`'s seeded `DefaultHasher`, is identical across
//! processes and runs.

use std::fmt::Write as _;

use crate::config::ClickConfig;

/// 64-bit FNV-1a over a byte string: stable across processes and
/// platforms, cheap, and good enough dispersion for cache digests. Do not
/// use it alone as a map key for security-relevant caches — it is not
/// collision-resistant against adversarial inputs; key the map by the full
/// canonical form and treat this as a fingerprint.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Collapses every whitespace run to a single space and trims the ends, so
/// `allow udp   dst port 1500` and `allow udp dst port 1500` normalize to
/// the same argument.
fn normalize_arg(arg: &str) -> String {
    let mut out = String::with_capacity(arg.len());
    for word in arg.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(word);
    }
    out
}

impl ClickConfig {
    /// Serializes to a canonical normal form: element declarations sorted
    /// by `(name, class, args)` with whitespace-normalized arguments,
    /// followed by connections sorted by `(from, from_port, to, to_port)`.
    ///
    /// Two configurations describing the same element graph under
    /// different statement orderings or argument spacing yield identical
    /// canonical text; the text parses back to an equivalent
    /// configuration. Element *names* are preserved (they are part of the
    /// graph's identity — requirements reference them as way-points), so
    /// alpha-renamed configurations canonicalize differently by design.
    ///
    /// The rendered text is memoized per config instance (every
    /// admission-path memo — verdict, lint, graph — keys on it), so
    /// repeated calls return a clone of the first rendering.
    pub fn canonical_text(&self) -> String {
        self.canonical
            .get_or_init(|| self.render_canonical())
            .clone()
    }

    fn render_canonical(&self) -> String {
        let mut elements: Vec<(&str, &str, Vec<String>)> = self
            .elements
            .iter()
            .map(|e| {
                (
                    e.name.as_str(),
                    e.class.as_str(),
                    e.args.iter().map(|a| normalize_arg(a)).collect(),
                )
            })
            .collect();
        elements.sort();
        let mut connections: Vec<(&str, usize, &str, usize)> = self
            .connections
            .iter()
            .map(|c| {
                (
                    c.from.element.as_str(),
                    c.from.port,
                    c.to.element.as_str(),
                    c.to.port,
                )
            })
            .collect();
        connections.sort();

        let mut s = String::new();
        for (name, class, args) in &elements {
            let _ = writeln!(s, "{} :: {}({});", name, class, args.join(", "));
        }
        for (from, from_port, to, to_port) in &connections {
            let _ = writeln!(s, "{from}[{from_port}] -> [{to_port}]{to};");
        }
        s
    }

    /// Stable 64-bit fingerprint of [`canonical_text`](Self::canonical_text).
    pub fn canonical_hash(&self) -> u64 {
        fnv1a_64(self.canonical_text().as_bytes())
    }

    /// Canonical form of an ordered *slice* of this configuration's
    /// elements (by index into `self.elements`): one positional line per
    /// element — class and whitespace-normalized arguments only, **no
    /// element names** — in slice order.
    ///
    /// This keys the controller's chain-summary cache: a linear
    /// single-in/single-out chain's symbolic transfer function depends
    /// only on the element classes, their arguments, and their order, so
    /// alpha-renamed tenant configurations (and the same stock chain
    /// embedded in different surrounding graphs) share one cache entry —
    /// deliberately unlike [`canonical_text`](Self::canonical_text),
    /// where names are part of the graph's identity. The implied wiring
    /// (`[0] -> [0]` between successive lines) is part of the form by
    /// construction and needs no encoding.
    ///
    /// Out-of-range indices are skipped (callers derive indices from the
    /// same config, so this is defensive only).
    pub fn canonical_slice_text(&self, indices: &[usize]) -> String {
        let mut s = String::new();
        for &i in indices {
            if let Some(e) = self.elements.get(i) {
                let args: Vec<String> = e.args.iter().map(|a| normalize_arg(a)).collect();
                let _ = writeln!(s, "{}({});", e.class, args.join(", "));
            }
        }
        s
    }

    /// Stable 64-bit fingerprint of
    /// [`canonical_slice_text`](Self::canonical_slice_text). Like
    /// [`canonical_hash`](Self::canonical_hash), FNV-1a is a fingerprint,
    /// not a collision-resistant digest — security-relevant caches must
    /// key on the full slice text.
    pub fn canonical_slice_hash(&self, indices: &[usize]) -> u64 {
        fnv1a_64(self.canonical_slice_text(indices).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_is_irrelevant() {
        let a = ClickConfig::parse(
            "src :: FromNetfront(); f :: IPFilter(allow udp); snk :: ToNetfront(); \
             src -> f -> snk;",
        )
        .unwrap();
        let b = ClickConfig::parse(
            "snk :: ToNetfront(); f :: IPFilter(allow udp); src :: FromNetfront(); \
             src -> f -> snk;",
        )
        .unwrap();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn connection_order_is_irrelevant() {
        let a = ClickConfig::parse(
            "c :: Classifier(12/0800, -); d1 :: Discard; d2 :: Discard; \
             c[0] -> d1; c[1] -> d2;",
        )
        .unwrap();
        let b = ClickConfig::parse(
            "c :: Classifier(12/0800, -); d1 :: Discard; d2 :: Discard; \
             c[1] -> d2; c[0] -> d1;",
        )
        .unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn argument_whitespace_normalized() {
        let a = ClickConfig::parse("f :: IPFilter(allow   udp\n dst port 1500);").unwrap();
        let b = ClickConfig::parse("f :: IPFilter(allow udp dst port 1500);").unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn different_configs_differ() {
        let a = ClickConfig::parse("f :: IPFilter(allow udp);").unwrap();
        let b = ClickConfig::parse("f :: IPFilter(allow tcp);").unwrap();
        let c = ClickConfig::parse("g :: IPFilter(allow udp);").unwrap();
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        assert_ne!(a.canonical_hash(), c.canonical_hash(), "names are identity");
    }

    #[test]
    fn canonical_text_reparses_equivalent() {
        let cfg = ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp dst port 1500) \
             -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> dst :: ToNetfront();",
        )
        .unwrap();
        let again = ClickConfig::parse(&cfg.canonical_text()).unwrap();
        assert_eq!(again.canonical_text(), cfg.canonical_text());
        assert_eq!(again.elements.len(), cfg.elements.len());
        assert_eq!(again.connections.len(), cfg.connections.len());
    }

    #[test]
    fn slice_is_name_independent() {
        let a = ClickConfig::parse(
            "src :: FromNetfront(); f :: IPFilter(allow udp); snk :: ToNetfront(); \
             src -> f -> snk;",
        )
        .unwrap();
        let b = ClickConfig::parse(
            "in0 :: FromNetfront(); flt9 :: IPFilter(allow   udp); out7 :: ToNetfront(); \
             in0 -> flt9 -> out7;",
        )
        .unwrap();
        assert_eq!(
            a.canonical_slice_text(&[0, 1, 2]),
            b.canonical_slice_text(&[0, 1, 2]),
            "alpha-renamed chains share a slice key"
        );
        assert_eq!(
            a.canonical_slice_hash(&[0, 1, 2]),
            b.canonical_slice_hash(&[0, 1, 2])
        );
    }

    #[test]
    fn slice_order_and_content_matter() {
        let a = ClickConfig::parse("f :: IPFilter(allow udp); d :: DecIPTTL();").unwrap();
        assert_ne!(
            a.canonical_slice_text(&[0, 1]),
            a.canonical_slice_text(&[1, 0]),
            "chain order is the chain's identity"
        );
        let b = ClickConfig::parse("f :: IPFilter(allow tcp); d :: DecIPTTL();").unwrap();
        assert_ne!(
            a.canonical_slice_hash(&[0, 1]),
            b.canonical_slice_hash(&[0, 1])
        );
        assert_ne!(
            a.canonical_slice_hash(&[0]),
            a.canonical_slice_hash(&[0, 1]),
            "prefixes differ from the full chain"
        );
    }

    #[test]
    fn slice_skips_out_of_range() {
        let a = ClickConfig::parse("f :: IPFilter(allow udp);").unwrap();
        assert_eq!(
            a.canonical_slice_text(&[0, 99]),
            a.canonical_slice_text(&[0])
        );
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
