//! Deploy storm: admission latency of the staged verification pipeline,
//! compositional chain summaries versus the whole-graph oracle.
//!
//! The storm drives one controller with a large corpus of *uncached*
//! requests — every request gets a fresh module name, so the verdict
//! cache never replays and each admission pays the full pipeline
//! (lint → symbolic check; the analyzer fast path is disabled so the
//! symbolic stage always runs). The corpus mixes **stock** chains (a
//! handful of templates fleets of tenants share, alpha-renamed per
//! tenant) with **novel** one-off chains (randomized arguments, so
//! their canonical slices are unique).
//!
//! Every config ends by writing an unregistered source address, so the
//! security check rejects it after doing all the verification work:
//! rejections never commit, which keeps the module table, the address
//! pools, and the per-request cost constant across a 100k-request storm.
//!
//! Run twice from identical cold controllers:
//!
//! * `whole-graph` — summaries disabled, every element symbolically
//!   re-executed per request (the differential oracle);
//! * `compositional` — chain summaries replayed from the fleet-wide
//!   cache keyed by canonical slice text.
//!
//! The per-request latency distribution of both modes is recorded to
//! `BENCH_admission.json`.

use std::time::Instant;

use innet::controller::{ClientRequest, Controller};
use innet::prelude::*;
use innet::topology::Topology;
use innet_bench::{quick_mode, AdmissionSnapshot, Report};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CLIENTS: usize = 16;

/// Stock templates: shared chain-safe pipelines a fleet deploys over and
/// over (each tenant's copy is alpha-renamed by the module name, which
/// the canonical slice key ignores). All end with a spoofed source so
/// admission rejects without committing.
const STOCK: &[&str] = &[
    "FromNetfront() -> CheckIPHeader() -> DecIPTTL() -> IPFilter(allow udp dst port 1500) \
     -> SetTOS(12) -> Counter() -> IPFilter(allow udp) -> Paint(1) -> DecIPTTL() \
     -> Counter() -> IPFilter(allow udp dst port 1500) -> SetTOS(14) \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
    "FromNetfront() -> IPFilter(allow tcp dst port 80) -> SetTOS(46) -> Counter() \
     -> IPFilter(allow tcp) -> DecIPTTL() -> Paint(9) -> CheckIPHeader() -> Counter() \
     -> IPFilter(allow tcp syn) -> SetTOS(40) -> DecIPTTL() \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
    "FromNetfront() -> CheckIPHeader() -> Paint(3) -> IPFilter(allow udp) -> DecIPTTL() \
     -> Counter() -> IPFilter(allow udp dst port 53) -> SetTOS(2) -> Paint(4) \
     -> DecIPTTL() -> Counter() -> CheckIPHeader() \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
    "FromNetfront() -> DecIPTTL() -> DecIPTTL() -> SetTOS(4) -> IPFilter(allow tcp) \
     -> Counter() -> Paint(8) -> IPFilter(allow tcp dst port 443) -> CheckIPHeader() \
     -> DecIPTTL() -> Counter() -> SetTOS(6) \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
    "FromNetfront() -> IPFilter(allow udp dst port 53) -> CheckIPHeader() -> Counter() \
     -> SetTOS(10) -> IPFilter(allow udp) -> Paint(5) -> DecIPTTL() -> Counter() \
     -> IPFilter(allow udp src port 53) -> DecIPTTL() -> CheckIPHeader() \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
    "FromNetfront() -> CheckIPHeader() -> IPFilter(allow icmp) -> Paint(7) \
     -> DecIPTTL() -> Counter() -> IPFilter(allow icmp) -> SetTOS(22) -> Paint(11) \
     -> Counter() -> DecIPTTL() -> CheckIPHeader() \
     -> DecIPTTL() -> Counter() -> SetTOS(18) -> Paint(13) -> CheckIPHeader() \
     -> Counter() -> DecIPTTL() -> Paint(21) -> Counter() -> SetTOS(30) \
     -> CheckIPHeader() -> DecIPTTL() -> Counter() -> Paint(29) \
     -> SetIPSrc(8.8.8.8) -> ToNetfront();",
];

/// A novel one-off chain: randomized arguments make its canonical slice
/// unique, so its summary is computed (and cached) on first sight.
fn novel_config(rng: &mut StdRng) -> String {
    let tos = rng.gen_range(0u32..64);
    let paint = rng.gen_range(0u32..256);
    let port = rng.gen_range(0u32..256);
    format!(
        "FromNetfront() -> SetTOS({tos}) -> Paint({paint}) -> DecIPTTL() \
         -> Paint({port}) -> SetIPSrc(8.8.8.8) -> ToNetfront();"
    )
}

/// Builds request `i` of the corpus: 80% stock, 20% novel, all with a
/// unique module name so the verdict cache never short-circuits the
/// pipeline.
fn request(i: usize, rng: &mut StdRng) -> ClientRequest {
    let config = if rng.gen_range(0u32..5) < 4 {
        STOCK[rng.gen_range(0..STOCK.len())].to_string()
    } else {
        novel_config(rng)
    };
    ClientRequest::parse(&format!("module m{i}:\n{config}")).expect("corpus configs parse")
}

fn controller() -> Controller {
    let mut c = Controller::new(Topology::figure3());
    for i in 0..CLIENTS {
        c.register_client(
            format!("tenant{i}"),
            RequesterClass::Client,
            vec!["172.16.15.133".parse().unwrap()],
        );
    }
    // Force the symbolic stage: the abstract-interpretation fast path
    // would decide these verdicts without ever touching the engines
    // under comparison.
    c.set_analysis_enabled(false);
    c
}

struct Run {
    latencies_ns: Vec<u64>,
    summary_hits: u64,
    chain_nodes: u64,
}

/// Drives the full corpus through one cold controller and records every
/// per-request admission latency.
fn storm(summaries: bool, requests: usize, seed: u64) -> Run {
    let mut c = controller();
    c.set_summaries_enabled(summaries);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies_ns = Vec::with_capacity(requests);
    for i in 0..requests {
        let req = request(i, &mut rng);
        let client = format!("tenant{}", i % CLIENTS);
        let t = Instant::now();
        let outcome = c.deploy(&client, req);
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        assert!(
            outcome.is_err(),
            "storm configs spoof their source and must be rejected"
        );
    }
    let stats = c.stats();
    assert_eq!(stats.cache_hits, 0, "unique module names defeat replay");
    Run {
        latencies_ns,
        summary_hits: stats.summary_cache_hits,
        chain_nodes: stats.summary_chain_nodes,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let requests: usize = if quick_mode() { 2_000 } else { 100_000 };
    let mut r = Report::new(
        "deploy_storm",
        "Deploy storm: admission latency, compositional summaries vs whole-graph",
    );
    r.line(&format!(
        "{requests} uncached requests per mode, {} stock templates + randomized novel chains",
        STOCK.len()
    ));
    r.blank();
    r.line(&format!(
        "{:>15} {:>12} {:>12} {:>12} {:>14}",
        "mode", "mean (us)", "p50 (us)", "p99 (us)", "summary hits"
    ));

    let mut snap = AdmissionSnapshot::new("admission");
    let mut means = Vec::new();
    for (mode, summaries) in [("whole-graph", false), ("compositional", true)] {
        let mut run = storm(summaries, requests, 0x5702_2015);
        run.latencies_ns.sort_unstable();
        let mean = run.latencies_ns.iter().sum::<u64>() as f64 / run.latencies_ns.len() as f64;
        let p50 = percentile(&run.latencies_ns, 0.50);
        let p99 = percentile(&run.latencies_ns, 0.99);
        r.line(&format!(
            "{:>15} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            mode,
            mean / 1e3,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            run.summary_hits
        ));
        if summaries {
            assert!(
                run.summary_hits > 0 && run.chain_nodes > 0,
                "compositional mode must replay summaries"
            );
        } else {
            assert_eq!(run.summary_hits, 0, "oracle mode must not touch the cache");
        }
        snap.row(
            "mixed-stock-novel",
            mode,
            requests as u64,
            mean,
            p50 as f64,
            p99 as f64,
            run.summary_hits,
        );
        means.push(mean);
    }

    r.blank();
    let speedup = means[0] / means[1];
    r.line(&format!(
        "mean uncached admission latency: {speedup:.2}x lower with compositional summaries"
    ));
    r.finish();
    snap.write();
}
