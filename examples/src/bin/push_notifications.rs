//! The paper's unifying example (§4.5) end-to-end: push notifications for
//! mobiles, with the energy saving of Figure 13.
//!
//! Run with: `cargo run -p innet-examples --bin push_notifications`

use innet::experiments::fig13_energy::push_energy;
use innet::prelude::*;
use innet::sim::des::SECOND;

fn main() {
    // Deploy the batcher exactly as the paper's walk-through does.
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "galaxy-nexus",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    let request = ClientRequest::parse(
        r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
        "#,
    )
    .unwrap();
    let resp = ctl.deploy("galaxy-nexus", request).expect("deployable");
    println!(
        "controller placed the batcher on {} at {} \
         (checked in {:.0} ms)",
        resp.platform,
        resp.public_addr,
        (resp.compile_ns + resp.check_ns) as f64 / 1e6
    );

    // One notification every 30 s for an hour; sweep batching intervals
    // and measure device power with the 3G radio model.
    println!("\nbatching interval vs average device power (Figure 13):");
    println!(
        "{:>12}  {:>12}  {:>10}",
        "interval", "avg power", "delivered"
    );
    for p in push_energy(&[30, 60, 120, 240], 30 * SECOND, 3600 * SECOND) {
        println!(
            "{:>10} s  {:>9.0} mW  {:>10}",
            p.interval_s, p.avg_power_mw, p.delivered
        );
    }
    println!(
        "\nbatching trades notification delay for battery life — the\n\
         client picks the interval, the operator gets inspectable traffic."
    );
}
