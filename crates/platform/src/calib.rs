//! Calibration constants for the virtual-time platform model.
//!
//! Every latency and memory constant in this module is taken from the
//! paper's own measurements; the module is the single source of truth for
//! "modelled from the paper" numbers, so the line between *measured on
//! our code* (the native execution engine) and *modelled* (VM lifecycle
//! timing) stays explicit.
//!
//! | Constant | Paper source |
//! |---|---|
//! | ClickOS boot ≈ 30 ms | §5 "ClickOS VMs can boot rather quickly (in about 30 milliseconds)" |
//! | First-packet RTT grows to ≈ 100 ms at 100 VMs | §6 / Figure 5 |
//! | Linux VM first-packet RTT ≈ 700 ms | §6 "the average round-trip time of the first packet is around 700ms" |
//! | ClickOS memory ≈ 8 MB (plus toolstack overhead) | §6 "the memory footprint of a ClickOS VM … around 8MB", 10,000 VMs on 128 GB |
//! | Linux VM memory 512 MB (plus overhead) | §6 "200 stripped down Linux VMs, each with a 512MB memory footprint" |
//! | Suspend/resume 30–100 ms, growing with VM count | §6 / Figure 7 |

/// Nanoseconds per millisecond, for readability.
const MS: f64 = 1e6;

/// Base ClickOS boot latency (≈30 ms).
pub const CLICKOS_BOOT_BASE_NS: u64 = (30.0 * MS) as u64;

/// Base Linux VM boot latency (the ≈700 ms first-RTT of §6, minus the
/// same network component ClickOS pays).
pub const LINUX_BOOT_BASE_NS: u64 = (690.0 * MS) as u64;

/// ClickOS VM resident memory in MB.
pub const CLICKOS_MEM_MB: u64 = 8;

/// Per-VM Xen/toolstack overhead in MB. Chosen so that a 128 GB host
/// saturates at ≈10,000 ClickOS VMs, the paper's measured bound.
pub const XEN_OVERHEAD_MB: u64 = 5;

/// Stripped-down Linux VM resident memory in MB.
pub const LINUX_MEM_MB: u64 = 512;

/// Per-Linux-VM overhead in MB (512 + 128 ⇒ 200 VMs on 128 GB, the
/// paper's measured bound).
pub const LINUX_OVERHEAD_MB: u64 = 128;

/// Boot latency of one more VM when `existing` VMs are already running.
///
/// The Xen toolstack walks xenstore state that grows with the number of
/// domains, so creation cost rises superlinearly; the coefficients are
/// fitted to Figure 5 (≈50 ms average over the first 100 flows, ≈100 ms
/// for the 100th).
pub fn boot_latency_ns(kind: VmTimingKind, existing: usize) -> u64 {
    let n = existing as f64;
    let growth = 0.2 * n + 0.005 * n * n; // In milliseconds.
    let base = match kind {
        VmTimingKind::ClickOs => CLICKOS_BOOT_BASE_NS,
        VmTimingKind::Linux => LINUX_BOOT_BASE_NS,
    };
    base + (growth * MS) as u64
}

/// Suspend latency with `existing` other VMs (Figure 7: ~30 ms alone,
/// ~70 ms with 200 VMs).
pub fn suspend_latency_ns(existing: usize) -> u64 {
    ((30.0 + 0.2 * existing as f64) * MS) as u64
}

/// Resume latency with `existing` other VMs (Figure 7: ~40 ms alone,
/// ~100 ms with 200 VMs).
pub fn resume_latency_ns(existing: usize) -> u64 {
    ((40.0 + 0.3 * existing as f64) * MS) as u64
}

/// Total memory charged to one VM, including hypervisor overhead.
pub fn vm_mem_mb(kind: VmTimingKind) -> u64 {
    match kind {
        VmTimingKind::ClickOs => CLICKOS_MEM_MB + XEN_OVERHEAD_MB,
        VmTimingKind::Linux => LINUX_MEM_MB + LINUX_OVERHEAD_MB,
    }
}

/// The two guest types whose timing the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmTimingKind {
    /// A ClickOS unikernel.
    ClickOs,
    /// A stripped-down Linux guest.
    Linux,
}

/// Maximum VMs of a kind a host with `host_mem_mb` MB can run (§6's
/// capacity experiment).
pub fn max_vms(host_mem_mb: u64, kind: VmTimingKind) -> u64 {
    host_mem_mb / vm_mem_mb(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_latency_matches_figure5_shape() {
        // First VM: ~30 ms.
        let first = boot_latency_ns(VmTimingKind::ClickOs, 0);
        assert!((29.0..=31.0).contains(&(first as f64 / MS)));
        // 100th VM: ~100 ms.
        let hundredth = boot_latency_ns(VmTimingKind::ClickOs, 99);
        assert!(
            (90.0..=110.0).contains(&(hundredth as f64 / MS)),
            "{}",
            hundredth as f64 / MS
        );
        // Average of the first 100 boots: ~50 ms (paper: "still only
        // 50 milliseconds on average").
        let avg: f64 = (0..100)
            .map(|n| boot_latency_ns(VmTimingKind::ClickOs, n) as f64 / MS)
            .sum::<f64>()
            / 100.0;
        assert!((45.0..=60.0).contains(&avg), "{avg}");
    }

    #[test]
    fn linux_vm_an_order_of_magnitude_slower() {
        let clickos = boot_latency_ns(VmTimingKind::ClickOs, 0);
        let linux = boot_latency_ns(VmTimingKind::Linux, 0);
        assert!(linux > 10 * clickos);
    }

    #[test]
    fn capacity_matches_section6() {
        // "we were able run as many as 10000 instances of ClickOS" and
        // "up to 200 stripped down Linux VMs" on 128 GB.
        assert_eq!(max_vms(128 * 1024, VmTimingKind::ClickOs), 10082);
        assert_eq!(max_vms(128 * 1024, VmTimingKind::Linux), 204);
    }

    #[test]
    fn suspend_resume_band() {
        // Figure 7: both curves within roughly 30–100 ms for 0–200 VMs.
        for n in [0usize, 50, 100, 200] {
            let s = suspend_latency_ns(n) as f64 / MS;
            let r = resume_latency_ns(n) as f64 / MS;
            assert!((25.0..=105.0).contains(&s), "suspend {s}");
            assert!((25.0..=105.0).contains(&r), "resume {r}");
            assert!(r > s, "resume costs more than suspend");
        }
    }
}
