//! Example binaries live under `src/bin`; this library is intentionally empty.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
