//! Gravity-model traffic matrices over the capacitated topology.
//!
//! A [`TrafficMatrix`] is a seeded, deterministic demand set between the
//! topology's client subnets and a list of tenant addresses: each
//! (subnet, tenant) pair gets a rate proportional to the product of two
//! seeded masses (the classic gravity model), scaled so the whole
//! matrix offers `total_pps` packets per second. Demands are paced into
//! `SimTime`-stamped packet schedules that enter the fleet at each
//! subnet's nearest platform — so cross-PoP demand crosses the fabric
//! and stresses per-link `bandwidth_bps`, not just latency.
//!
//! Flash crowds are multiplicative: scaling a PoP multiplies the rate
//! of every demand originating there. [`TrafficMatrix::demand_by_tenant`]
//! exports the per-tenant offered load that [`crate::Fleet::rebalance`]
//! consumes instead of raw VM counts.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::{Packet, PacketBuilder};
use innet_sim::des::{SimTime, SECOND};
use innet_topology::{NodeId, Topology};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Knobs for [`TrafficMatrix::gravity`].
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Seed for masses, source addresses, ports, and pacing phases.
    pub seed: u64,
    /// Aggregate offered load across all demands, packets per second.
    pub total_pps: u64,
    /// On-the-wire frame length of every generated packet.
    pub frame_len: usize,
    /// UDP destination port (tenant service port).
    pub dst_port: u16,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            seed: 0,
            total_pps: 1_000,
            frame_len: 512,
            dst_port: 1500,
        }
    }
}

/// One (client subnet, tenant) demand of the matrix.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    /// Originating client-subnet node.
    pub subnet: NodeId,
    /// The platform this demand enters the fleet at (nearest to the
    /// subnet by path latency; re-pointed when that platform dies).
    pub ingress: NodeId,
    /// Destination tenant address.
    pub tenant: Ipv4Addr,
    /// Source address, drawn from the subnet's CIDR.
    pub src: Ipv4Addr,
    /// Source port of the flow.
    pub src_port: u16,
    /// Base rate in milli-packets-per-second (at multiplier 1).
    pub milli_pps: u64,
}

/// A seeded gravity-model demand matrix, paced into packet schedules.
pub struct TrafficMatrix {
    demands: Vec<Demand>,
    /// Per-demand inter-packet gap at multiplier 1.
    interval_ns: Vec<SimTime>,
    /// Per-demand flash-crowd multiplier (1 = baseline).
    multiplier: Vec<u32>,
    /// Per-demand next emission time (pacing state).
    next_at: Vec<SimTime>,
    frame_len: usize,
    dst_port: u16,
}

impl TrafficMatrix {
    /// Builds the matrix: seeded masses per client subnet and per
    /// tenant, demand `(i, j)` proportional to `mass_i * mass_j`, the
    /// whole matrix scaled to `p.total_pps`. Zero-rate pairs (after
    /// integer scaling) are dropped. Deterministic for a given
    /// `(topology, tenants, params)` triple.
    pub fn gravity(topo: &Topology, tenants: &[Ipv4Addr], p: &TrafficParams) -> TrafficMatrix {
        let mut rng = StdRng::seed_from_u64(p.seed);
        let subnets = topo.client_subnets();
        let platforms = topo.platforms();
        let subnet_mass: Vec<u64> = subnets.iter().map(|_| rng.gen_range(1..=8u64)).collect();
        let tenant_mass: Vec<u64> = tenants.iter().map(|_| rng.gen_range(1..=8u64)).collect();
        let total_weight: u64 = subnet_mass
            .iter()
            .map(|m| m * tenant_mass.iter().sum::<u64>())
            .sum();

        let mut demands = Vec::new();
        let mut interval_ns = Vec::new();
        let mut next_at = Vec::new();
        for (i, &(subnet, cidr)) in subnets.iter().enumerate() {
            let sm = subnet_mass[i];
            let paths = topo.paths_from(subnet);
            // Nearest platform by path latency, ties to the lower id.
            let ingress = platforms
                .iter()
                .filter_map(|&pl| paths.get(pl).copied().flatten().map(|a| (a.latency_ns, pl)))
                .min()
                .map(|(_, pl)| pl);
            let Some(ingress) = ingress else { continue };
            for (&tenant, &tm) in tenants.iter().zip(&tenant_mass) {
                let milli_pps = (p.total_pps as u128 * 1000 * (sm * tm) as u128
                    / total_weight.max(1) as u128) as u64;
                let src = cidr.nth_host(rng.gen_range(1..=250));
                let src_port = rng.gen_range(1024..60_000);
                if milli_pps == 0 {
                    continue;
                }
                let gap = (SECOND as u128 * 1000 / milli_pps as u128).min(u64::MAX as u128) as u64;
                // A seeded phase spreads flows within their first gap so
                // the matrix does not fire in lockstep.
                let phase = rng.gen_range(0..gap.max(1));
                demands.push(Demand {
                    subnet,
                    ingress,
                    tenant,
                    src,
                    src_port,
                    milli_pps,
                });
                interval_ns.push(gap);
                next_at.push(phase);
            }
        }
        let n = demands.len();
        TrafficMatrix {
            demands,
            interval_ns,
            multiplier: vec![1; n],
            next_at,
            frame_len: p.frame_len,
            dst_port: p.dst_port,
        }
    }

    /// The matrix's demands.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Sets the flash-crowd multiplier for every demand originating at
    /// `subnet`. Returns the number of demands affected.
    pub fn scale_subnet(&mut self, subnet: NodeId, multiplier: u32) -> usize {
        let mut n = 0;
        for (i, d) in self.demands.iter().enumerate() {
            if d.subnet == subnet {
                self.multiplier[i] = multiplier.max(1);
                n += 1;
            }
        }
        n
    }

    /// Sets the flash-crowd multiplier for every demand originating in
    /// PoP `pop` (by the `"pop{N}-"` naming of `generate_fleet`).
    /// Returns the number of demands affected.
    pub fn scale_pop(&mut self, topo: &Topology, pop: usize, multiplier: u32) -> usize {
        let mut n = 0;
        for (i, d) in self.demands.iter().enumerate() {
            if topo.pop_of(d.subnet) == Some(pop) {
                self.multiplier[i] = multiplier.max(1);
                n += 1;
            }
        }
        n
    }

    /// Re-points every demand whose ingress platform is `dead` to the
    /// nearest platform in `alive` (by path latency from the demand's
    /// subnet, ties to the lower id). Returns the demands re-pointed.
    pub fn reingress(&mut self, topo: &Topology, dead: NodeId, alive: &[NodeId]) -> usize {
        let mut cache: HashMap<NodeId, Option<NodeId>> = HashMap::new();
        let mut n = 0;
        for d in self.demands.iter_mut() {
            if d.ingress != dead {
                continue;
            }
            let best = *cache.entry(d.subnet).or_insert_with(|| {
                let paths = topo.paths_from(d.subnet);
                alive
                    .iter()
                    .filter(|&&pl| pl != dead)
                    .filter_map(|&pl| paths.get(pl).copied().flatten().map(|a| (a.latency_ns, pl)))
                    .min()
                    .map(|(_, pl)| pl)
            });
            if let Some(best) = best {
                d.ingress = best;
                n += 1;
            }
        }
        n
    }

    /// Per-tenant offered load (milli-pps, multipliers applied): the
    /// demand weights [`crate::Fleet::attach_demand`] consumes.
    pub fn demand_by_tenant(&self) -> HashMap<Ipv4Addr, u64> {
        let mut out: HashMap<Ipv4Addr, u64> = HashMap::new();
        for (d, &m) in self.demands.iter().zip(&self.multiplier) {
            *out.entry(d.tenant).or_default() += d.milli_pps * m as u64;
        }
        out
    }

    /// Paces every demand up to (but excluding) `until`, advancing the
    /// pacing state: the next call resumes where this one stopped.
    /// Returns `(time, ingress, packet)` ascending by time, with ties in
    /// demand order — fully deterministic.
    pub fn pace(&mut self, until: SimTime) -> Vec<(SimTime, NodeId, Packet)> {
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        for i in 0..self.demands.len() {
            let gap = (self.interval_ns[i] / self.multiplier[i] as u64).max(1);
            while self.next_at[i] < until {
                out.push((self.next_at[i], i));
                self.next_at[i] += gap;
            }
        }
        out.sort_unstable();
        out.into_iter()
            .map(|(at, i)| {
                let d = &self.demands[i];
                let pkt = PacketBuilder::udp()
                    .src(d.src, d.src_port)
                    .dst(d.tenant, self.dst_port)
                    .pad_to(self.frame_len)
                    .build();
                (at, d.ingress, pkt)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_topology::{generate_fleet, FleetParams};

    fn small_topo() -> Topology {
        generate_fleet(&FleetParams {
            pops: 3,
            platforms_per_pop: 1,
            clients_per_pop: 2,
            seed: 7,
        })
    }

    fn tenants() -> Vec<Ipv4Addr> {
        (0..4).map(|i| Ipv4Addr::new(198, 18, 0, 10 + i)).collect()
    }

    #[test]
    fn gravity_is_deterministic() {
        let topo = small_topo();
        let p = TrafficParams::default();
        let mut a = TrafficMatrix::gravity(&topo, &tenants(), &p);
        let mut b = TrafficMatrix::gravity(&topo, &tenants(), &p);
        let sa = a.pace(100_000_000);
        let sb = b.pace(100_000_000);
        assert!(!sa.is_empty());
        assert_eq!(sa.len(), sb.len());
        for ((ta, na, pa), (tb, nb, pb)) in sa.iter().zip(&sb) {
            assert_eq!((ta, na), (tb, nb));
            assert_eq!(pa.bytes(), pb.bytes());
        }
    }

    #[test]
    fn offered_rate_matches_total_pps() {
        let topo = small_topo();
        let p = TrafficParams {
            total_pps: 2_000,
            ..TrafficParams::default()
        };
        let mut m = TrafficMatrix::gravity(&topo, &tenants(), &p);
        let offered = m.pace(SECOND).len() as i64;
        // Integer scaling truncates; stay within 10 % of the target.
        assert!(
            (offered - 2_000).abs() < 200,
            "offered {offered} per second"
        );
    }

    #[test]
    fn flash_crowd_multiplies_subnet_rate() {
        let topo = small_topo();
        let mut m = TrafficMatrix::gravity(&topo, &tenants(), &TrafficParams::default());
        let subnet = m.demands()[0].subnet;
        let base: usize = {
            let mut warm = TrafficMatrix::gravity(&topo, &tenants(), &TrafficParams::default());
            warm.pace(SECOND).len()
        };
        assert!(m.scale_pop(&topo, topo.pop_of(subnet).unwrap(), 4) > 0);
        let boosted = m.pace(SECOND).len();
        assert!(
            boosted > base + base / 10,
            "flash crowd must raise the offered load: {base} -> {boosted}"
        );
        let demand = m.demand_by_tenant();
        assert!(!demand.is_empty());
    }

    #[test]
    fn pacing_resumes_where_it_stopped() {
        let topo = small_topo();
        let p = TrafficParams::default();
        let mut whole = TrafficMatrix::gravity(&topo, &tenants(), &p);
        let mut halves = TrafficMatrix::gravity(&topo, &tenants(), &p);
        let all = whole.pace(SECOND);
        let mut stitched = halves.pace(SECOND / 2);
        stitched.extend(halves.pace(SECOND));
        assert_eq!(all.len(), stitched.len());
        for ((ta, na, _), (tb, nb, _)) in all.iter().zip(&stitched) {
            assert_eq!((ta, na), (tb, nb));
        }
    }

    #[test]
    fn reingress_moves_demands_off_a_dead_platform() {
        let topo = small_topo();
        let mut m = TrafficMatrix::gravity(&topo, &tenants(), &TrafficParams::default());
        let dead = m.demands()[0].ingress;
        let alive: Vec<NodeId> = topo
            .platforms()
            .into_iter()
            .filter(|&p| p != dead)
            .collect();
        let moved = m.reingress(&topo, dead, &alive);
        assert!(moved > 0);
        assert!(m.demands().iter().all(|d| d.ingress != dead));
    }
}
