//! Field-effect abstract interpretation over a Click configuration.
//!
//! The abstract domain tracks, per egress flow and per header field,
//! whether the field still carries its *ingress* value (and which ingress
//! variable), a known *constant*, a *runtime-chosen* value (with its
//! provenance), or is unknown (`Top`). A flow additionally records
//! whether any inexact constraint was applied (`filtered` — the flow may
//! not exist at all), per-variable exclusion sets from `Neq` tests, and a
//! tunnel-layer stack.
//!
//! Every transfer function mirrors the symbolic models in
//! `innet-symnet::models`; every security predicate mirrors
//! `innet-symnet::security`. Where the abstraction cannot reproduce the
//! model exactly it degrades toward `Top`/`filtered`, and the verdict
//! combiner turns any residual uncertainty into `None` ("fall back to
//! SymNet"). See DESIGN.md §10 for the full soundness argument.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_click::{
    AbsField, ClickConfig, Constraint, FieldWrite, LayerOp, Registry, RtOrigin, SummaryKind,
    ABS_FIELDS,
};
use innet_symnet::{RequesterClass, SecurityContext, Verdict};

use crate::lint::{find_cycle, flow_pair_adjacency, Resolved};

const N: usize = AbsField::COUNT;
/// Worklist budget: configurations needing more abstract states than
/// this fall back to SymNet.
const MAX_STATES: usize = 4096;
/// Tunnel-nesting budget.
const MAX_STACK: usize = 32;

/// Abstract value of one header field on one flow.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    /// Still the ingress value of the given field (variable identity —
    /// copies share it).
    Ingress(AbsField),
    /// Provably this constant.
    Const(u64),
    /// A runtime-chosen variable that has been constrained to a single
    /// value: provably equal to it, but carrying runtime provenance.
    NarrowedRt(u64, RtOrigin),
    /// A runtime-chosen value, unconstrained.
    Runtime(RtOrigin),
    /// Unknown.
    Top,
}

/// Abstract state of one flow at one point in the graph.
#[derive(Debug, Clone)]
struct AbsState {
    vals: [AbsVal; N],
    /// Ever-written flags; like SymNet's write records these are global
    /// and survive tunnel push/pop.
    written: [bool; N],
    /// Values excluded from *ingress variables* by `Neq` tests, keyed by
    /// the variable (so copies are covered). Never cleared: variable
    /// identity persists.
    excluded_ingress: Vec<(AbsField, u64)>,
    /// Values excluded from the current runtime variable of a field;
    /// cleared when the field is rewritten.
    excluded_field: Vec<(AbsField, u64)>,
    /// Whether any inexact constraint was applied: the flow may have
    /// been narrowed arbitrarily or dropped entirely.
    filtered: bool,
    /// Saved (vals, excluded_field) per pushed tunnel layer.
    stack: Vec<SavedLayer>,
}

/// Per-field values and field-keyed exclusions saved on encapsulation.
type SavedLayer = ([AbsVal; N], Vec<(AbsField, u64)>);

/// Outcome of pushing one flow summary onto a state.
enum Applied {
    /// The flow's exact constraints provably fail.
    Dead,
    /// The flow survives.
    Alive,
    /// Analysis budget exceeded; fall back to SymNet.
    Bail,
}

impl AbsState {
    /// The unconstrained ingress packet: every field carries its own
    /// ingress variable except the analysis-only firewall tag, which
    /// starts at zero.
    fn ingress() -> AbsState {
        let mut vals: [AbsVal; N] = ABS_FIELDS.map(AbsVal::Ingress);
        vals[AbsField::FwTag.index()] = AbsVal::Const(0);
        AbsState {
            vals,
            written: [false; N],
            excluded_ingress: Vec::new(),
            excluded_field: Vec::new(),
            filtered: false,
            stack: Vec::new(),
        }
    }

    fn constrain(&mut self, c: Constraint) -> bool {
        match c {
            Constraint::Eq(f, v) => {
                let i = f.index();
                match self.vals[i].clone() {
                    AbsVal::Const(c0) | AbsVal::NarrowedRt(c0, _) => c0 == v,
                    AbsVal::Runtime(o) => {
                        if self.excluded_field.contains(&(f, v)) {
                            return false;
                        }
                        self.vals[i] = AbsVal::NarrowedRt(v, o);
                        self.excluded_field.retain(|&(g, _)| g != f);
                        true
                    }
                    AbsVal::Ingress(h) => {
                        if self.excluded_ingress.contains(&(h, v)) {
                            return false;
                        }
                        // Binding the ingress variable binds every field
                        // that still carries it.
                        for val in &mut self.vals {
                            if *val == AbsVal::Ingress(h) {
                                *val = AbsVal::Const(v);
                            }
                        }
                        true
                    }
                    AbsVal::Top => {
                        self.filtered = true;
                        true
                    }
                }
            }
            Constraint::Neq(f, v) => match self.vals[f.index()].clone() {
                AbsVal::Const(c0) | AbsVal::NarrowedRt(c0, _) => c0 != v,
                AbsVal::Runtime(_) => {
                    if !self.excluded_field.contains(&(f, v)) {
                        self.excluded_field.push((f, v));
                    }
                    true
                }
                AbsVal::Ingress(h) => {
                    if !self.excluded_ingress.contains(&(h, v)) {
                        self.excluded_ingress.push((h, v));
                    }
                    true
                }
                AbsVal::Top => {
                    self.filtered = true;
                    true
                }
            },
            Constraint::Narrow(f) => {
                self.filtered = true;
                let i = f.index();
                if self.written[i]
                    && matches!(self.vals[i], AbsVal::Runtime(_) | AbsVal::NarrowedRt(..))
                {
                    // A pattern may narrow a runtime variable to anything
                    // (including a provable value we cannot compute).
                    self.vals[i] = AbsVal::Top;
                }
                true
            }
            Constraint::Opaque => {
                self.filtered = true;
                for i in 0..N {
                    if self.written[i]
                        && matches!(self.vals[i], AbsVal::Runtime(_) | AbsVal::NarrowedRt(..))
                    {
                        self.vals[i] = AbsVal::Top;
                    }
                }
                true
            }
        }
    }

    fn apply(&mut self, flow: &innet_click::FlowSummary) -> Applied {
        for &c in &flow.constraints {
            if !self.constrain(c) {
                return Applied::Dead;
            }
        }
        match flow.layer {
            LayerOp::None => {}
            LayerOp::Push => {
                if self.stack.len() >= MAX_STACK {
                    return Applied::Bail;
                }
                let saved = self.vals.clone();
                let saved_excl = std::mem::take(&mut self.excluded_field);
                // The fresh outer header is all-zero except the payload,
                // whose identity the encapsulation carries through.
                for (i, val) in self.vals.iter_mut().enumerate() {
                    if i != AbsField::Payload.index() {
                        *val = AbsVal::Const(0);
                    }
                }
                self.stack.push((saved, saved_excl));
            }
            LayerOp::Pop => match self.stack.pop() {
                Some((vals, excl)) => {
                    self.vals = vals;
                    self.excluded_field = excl;
                }
                None => {
                    // Decapsulating a tunnel the analysis did not see
                    // built: the revealed header is unknown until
                    // runtime; decapsulation cannot conjure firewall
                    // authorizations.
                    for (i, val) in self.vals.iter_mut().enumerate() {
                        *val = AbsVal::Runtime(RtOrigin::Decap);
                        self.written[i] = true;
                    }
                    self.vals[AbsField::FwTag.index()] = AbsVal::Const(0);
                    self.excluded_field.clear();
                }
            },
        }
        if !flow.writes.is_empty() {
            let pre = self.vals.clone();
            for &(f, w) in &flow.writes {
                let i = f.index();
                self.vals[i] = match w {
                    FieldWrite::Const(v) => AbsVal::Const(v),
                    FieldWrite::CopyOf(g) => pre[g.index()].clone(),
                    FieldWrite::Runtime(k) => AbsVal::Runtime(k),
                };
                self.written[i] = true;
                self.excluded_field.retain(|&(g, _)| g != f);
            }
        }
        Applied::Alive
    }

    fn val(&self, f: AbsField) -> &AbsVal {
        &self.vals[f.index()]
    }

    fn is_written(&self, f: AbsField) -> bool {
        self.written[f.index()]
    }
}

// ---------------------------------------------------------------------------
// Security predicates (abstract mirrors of innet-symnet::security)
// ---------------------------------------------------------------------------

/// Abstract tri-state: the symbolic `Tri` plus "can't tell".
#[derive(Debug, Clone, PartialEq)]
enum AbsTri {
    Holds,
    Unknown(RtOrigin),
    Violated(String),
    Top,
}

fn anti_spoof(s: &AbsState, assigned: u64) -> AbsTri {
    if !s.is_written(AbsField::IpSrc) {
        return AbsTri::Holds;
    }
    match s.val(AbsField::IpSrc) {
        AbsVal::Const(c) if *c == assigned => AbsTri::Holds,
        AbsVal::NarrowedRt(v, o) => {
            if *v == assigned {
                AbsTri::Holds
            } else {
                AbsTri::Unknown(*o)
            }
        }
        AbsVal::Ingress(AbsField::IpDst) => AbsTri::Holds,
        AbsVal::Runtime(o) => AbsTri::Unknown(*o),
        AbsVal::Const(c) => AbsTri::Violated(format!(
            "egress source {} is neither the assigned address nor invariant",
            Ipv4Addr::from(*c as u32)
        )),
        AbsVal::Ingress(_) => AbsTri::Violated(
            "egress source is neither the assigned address nor invariant".to_string(),
        ),
        AbsVal::Top => AbsTri::Top,
    }
}

fn ownership(s: &AbsState, assigned: u64, registered: &[u64]) -> AbsTri {
    let src_w = s.is_written(AbsField::IpSrc);
    let dst_w = s.is_written(AbsField::IpDst);
    let src = s.val(AbsField::IpSrc);
    let dst = s.val(AbsField::IpDst);
    // (1) Module originates traffic as itself.
    if src_w {
        let self_originated = matches!(src, AbsVal::Const(c) if *c == assigned)
            || matches!(src, AbsVal::NarrowedRt(v, _) if *v == assigned)
            || *src == AbsVal::Ingress(AbsField::IpDst);
        if self_originated {
            return AbsTri::Holds;
        }
    }
    // (2) Response: destination bound to the ingress source.
    if dst_w && *dst == AbsVal::Ingress(AbsField::IpSrc) {
        return AbsTri::Holds;
    }
    // (3) Delivery to a registered tenant address.
    if dst_w {
        let single = match dst {
            AbsVal::Const(c) | AbsVal::NarrowedRt(c, _) => Some(*c),
            _ => None,
        };
        if let Some(c) = single {
            if registered.contains(&c) {
                return AbsTri::Holds;
            }
        }
    }
    // With an unknown value in play the symbolic rules above might still
    // fire — don't guess.
    if (src_w && *src == AbsVal::Top) || (dst_w && *dst == AbsVal::Top) {
        return AbsTri::Top;
    }
    // Unknown-valued rewrites defer the decision to runtime.
    for (w, val) in [(src_w, src), (dst_w, dst)] {
        if w {
            if let AbsVal::Runtime(o) | AbsVal::NarrowedRt(_, o) = val {
                if matches!(o, RtOrigin::Decap | RtOrigin::Opaque) {
                    return AbsTri::Unknown(*o);
                }
            }
        }
    }
    AbsTri::Violated(
        "egress flow transits foreign traffic: not self-originated, not a response, \
         not a delivery to a registered address"
            .to_string(),
    )
}

fn default_off(s: &AbsState, registered: &[u64]) -> AbsTri {
    let dst = s.val(AbsField::IpDst);
    if *dst == AbsVal::Ingress(AbsField::IpSrc) {
        return AbsTri::Holds; // Implicit authorization.
    }
    let single = match dst {
        AbsVal::Const(c) | AbsVal::NarrowedRt(c, _) => Some(*c),
        _ => None,
    };
    if let Some(c) = single {
        return if registered.contains(&c) {
            AbsTri::Holds // Explicit authorization.
        } else {
            AbsTri::Violated(format!(
                "destination {} is not authorized",
                Ipv4Addr::from(c as u32)
            ))
        };
    }
    match dst {
        AbsVal::Runtime(o) => AbsTri::Unknown(*o),
        AbsVal::Ingress(_) => {
            AbsTri::Violated("destination is unconstrained foreign traffic".to_string())
        }
        AbsVal::Top => AbsTri::Top,
        AbsVal::Const(_) | AbsVal::NarrowedRt(..) => unreachable!("handled above"),
    }
}

// ---------------------------------------------------------------------------
// Worklist engine
// ---------------------------------------------------------------------------

struct Inconclusive;

fn resolve_summaries(
    cfg: &ClickConfig,
    registry: &Registry,
) -> Result<Vec<Resolved>, Inconclusive> {
    cfg.elements
        .iter()
        .map(|e| {
            let s = registry
                .summary(&e.class, &e.args)
                .map_err(|_| Inconclusive)?;
            Ok(Resolved {
                ports: Some(s.ports),
                summary: Some(s),
            })
        })
        .collect()
}

/// Runs the worklist over all paths, returning the abstract egress flows.
fn egress_states(cfg: &ClickConfig, registry: &Registry) -> Result<Vec<AbsState>, Inconclusive> {
    cfg.validate().map_err(|_| Inconclusive)?;
    let resolved = resolve_summaries(cfg, registry)?;
    let index: HashMap<&str, usize> = cfg
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();

    // Any cycle (even a legitimate, queue-containing one) makes the
    // path-enumeration below diverge from SymNet's bounded exploration;
    // punt those to the real thing.
    let adj = flow_pair_adjacency(cfg, &resolved, &index, false);
    if find_cycle(&adj).is_some() {
        return Err(Inconclusive);
    }

    let mut wires: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for c in &cfg.connections {
        let f = index[c.from.element.as_str()];
        let t = index[c.to.element.as_str()];
        wires.insert((f, c.from.port), (t, c.to.port));
    }

    let mut entries: Vec<usize> = cfg
        .elements
        .iter()
        .enumerate()
        .filter(|(_, e)| e.class == "FromNetfront" || e.class == "FromDevice")
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() && !cfg.elements.is_empty() {
        entries.push(0);
    }

    let mut egress = Vec::new();
    let mut work: Vec<(usize, usize, AbsState)> = entries
        .into_iter()
        .map(|e| (e, 0, AbsState::ingress()))
        .collect();
    let mut processed = 0usize;
    while let Some((e, in_port, state)) = work.pop() {
        processed += 1;
        if processed > MAX_STATES {
            return Err(Inconclusive);
        }
        let summary = resolved[e].summary.as_ref().expect("resolved above");
        match &summary.kind {
            SummaryKind::Egress => egress.push(state),
            SummaryKind::Sink => {}
            SummaryKind::Flows(flows) => {
                for flow in flows.iter().filter(|f| f.in_port == in_port) {
                    let mut s = state.clone();
                    match s.apply(flow) {
                        Applied::Dead => continue,
                        Applied::Bail => return Err(Inconclusive),
                        Applied::Alive => {}
                    }
                    if let Some(&(t, tin)) = wires.get(&(e, flow.out_port)) {
                        work.push((t, tin, s));
                    }
                }
            }
        }
    }
    Ok(egress)
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// The analyzer's conclusion about one configuration (only produced when
/// it is certain SymNet would conclude the same).
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The verdict SymNet would reach.
    pub verdict: Verdict,
    /// Number of abstract egress flows inspected.
    pub flows_checked: usize,
    /// Definite rule violations (nonempty only on `Reject`).
    pub violations: Vec<String>,
    /// Definite runtime-dependencies (nonempty only when sandboxing).
    pub unknowns: Vec<String>,
}

fn u(a: Ipv4Addr) -> u64 {
    u32::from(a) as u64
}

/// Checks the security rules by abstract interpretation alone.
///
/// Returns `Some` only when every rule is *decided* on every abstract
/// egress flow — in which case the verdict provably agrees with
/// [`innet_symnet::check_module`] — and `None` whenever anything is
/// inconclusive (unknown classes, cycles, budget, or residual `Top`s),
/// signalling the caller to fall back to full symbolic execution.
pub fn abstract_verdict(
    cfg: &ClickConfig,
    ctx: &SecurityContext,
    registry: &Registry,
) -> Option<AnalysisReport> {
    if ctx.class == RequesterClass::Operator {
        // Trusted: static analysis is advisory only.
        return Some(AnalysisReport {
            verdict: Verdict::Safe,
            flows_checked: 0,
            violations: Vec::new(),
            unknowns: Vec::new(),
        });
    }
    let flows = egress_states(cfg, registry).ok()?;
    let assigned = u(ctx.assigned_addr);
    let registered: Vec<u64> = ctx.registered.iter().map(|&a| u(a)).collect();

    let mut violations = Vec::new();
    let mut unknowns = Vec::new();
    let mut uncertain = false;
    for s in &flows {
        let mut tris = vec![
            ("anti-spoofing", anti_spoof(s, assigned)),
            ("ownership", ownership(s, assigned, &registered)),
        ];
        if ctx.class == RequesterClass::ThirdParty {
            tris.push(("default-off", default_off(s, &registered)));
        }
        for (rule, tri) in tris {
            // On a filtered flow only `Holds` is trustworthy: the flow
            // may not exist (no violation to report), or pattern
            // narrowing may have strengthened it into compliance.
            let tri = if s.filtered && tri != AbsTri::Holds {
                AbsTri::Top
            } else {
                tri
            };
            match tri {
                AbsTri::Holds => {}
                AbsTri::Top => uncertain = true,
                AbsTri::Unknown(o) => {
                    let acceptable = ctx.class == RequesterClass::Client && o == RtOrigin::Decap;
                    if !acceptable {
                        unknowns.push(format!("runtime-dependent ({}) flow: {rule}", o.name()));
                    }
                }
                AbsTri::Violated(why) => violations.push(format!("{rule}: {why}")),
            }
        }
    }

    // A single definite violation decides Reject no matter what else is
    // uncertain (SymNet can only find *more* violations).
    if !violations.is_empty() {
        return Some(AnalysisReport {
            verdict: Verdict::Reject,
            flows_checked: flows.len(),
            violations,
            unknowns: Vec::new(),
        });
    }
    if uncertain {
        return None;
    }
    let verdict = if unknowns.is_empty() {
        Verdict::Safe
    } else {
        Verdict::SafeWithSandbox
    };
    Some(AnalysisReport {
        verdict,
        flows_checked: flows.len(),
        violations: Vec::new(),
        unknowns,
    })
}

/// Human-readable field effects of one abstract egress flow (for the
/// `lint` example's summary table).
#[derive(Debug, Clone)]
pub struct FlowEffect {
    /// Whether the flow passed inexact filters (it may not exist).
    pub filtered: bool,
    /// `(field name, abstract value, ever written)` per header field.
    pub fields: Vec<(&'static str, String, bool)>,
}

/// Computes the abstract egress flows of `cfg` for display purposes.
///
/// Returns `None` when the interpretation is inconclusive (same
/// conditions as [`abstract_verdict`]).
pub fn flow_effects(cfg: &ClickConfig, registry: &Registry) -> Option<Vec<FlowEffect>> {
    let flows = egress_states(cfg, registry).ok()?;
    Some(
        flows
            .iter()
            .map(|s| FlowEffect {
                filtered: s.filtered,
                fields: ABS_FIELDS
                    .iter()
                    .map(|&f| (f.name(), render(f, s.val(f)), s.is_written(f)))
                    .collect(),
            })
            .collect(),
    )
}

fn render(f: AbsField, v: &AbsVal) -> String {
    let as_addr = matches!(f, AbsField::IpSrc | AbsField::IpDst);
    let c = |v: &u64| {
        if as_addr {
            Ipv4Addr::from(*v as u32).to_string()
        } else {
            v.to_string()
        }
    };
    match v {
        AbsVal::Ingress(g) => format!("ingress({})", g.name()),
        AbsVal::Const(v) => format!("const({})", c(v)),
        AbsVal::NarrowedRt(v, o) => format!("const({}) via runtime({})", c(v), o.name()),
        AbsVal::Runtime(o) => format!("runtime({})", o.name()),
        AbsVal::Top => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASSIGNED: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
    const OWNER: Ipv4Addr = Ipv4Addr::new(172, 16, 15, 133);

    fn ctx(class: RequesterClass) -> SecurityContext {
        SecurityContext {
            assigned_addr: ASSIGNED,
            registered: vec![OWNER],
            class,
        }
    }

    fn verdict_of(cfg: &str, class: RequesterClass) -> Option<Verdict> {
        let cfg = ClickConfig::parse(cfg).unwrap();
        abstract_verdict(&cfg, &ctx(class), &Registry::standard()).map(|r| r.verdict)
    }

    #[test]
    fn batcher_is_safe_for_everyone() {
        let cfg = r#"
            FromNetfront()
              -> IPFilter(allow udp dst port 1500)
              -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
              -> TimedUnqueue(120, 100)
              -> ToNetfront();
        "#;
        for class in [
            RequesterClass::ThirdParty,
            RequesterClass::Client,
            RequesterClass::Operator,
        ] {
            assert_eq!(verdict_of(cfg, class), Some(Verdict::Safe), "{class:?}");
        }
    }

    #[test]
    fn transit_is_rejected_for_tenants() {
        let cfg = "FromNetfront() -> Counter() -> ToNetfront();";
        assert_eq!(
            verdict_of(cfg, RequesterClass::ThirdParty),
            Some(Verdict::Reject)
        );
        assert_eq!(
            verdict_of(cfg, RequesterClass::Client),
            Some(Verdict::Reject)
        );
        assert_eq!(
            verdict_of(cfg, RequesterClass::Operator),
            Some(Verdict::Safe)
        );
    }

    #[test]
    fn spoofed_source_is_rejected() {
        let cfg = "FromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();";
        assert_eq!(
            verdict_of(cfg, RequesterClass::ThirdParty),
            Some(Verdict::Reject)
        );
    }

    #[test]
    fn responder_is_safe() {
        let cfg = "FromNetfront() -> ICMPPingResponder() -> ToNetfront();";
        assert_eq!(
            verdict_of(cfg, RequesterClass::ThirdParty),
            Some(Verdict::Safe)
        );
    }

    #[test]
    fn decap_is_sandboxed_for_third_party_safe_for_client() {
        let cfg = "FromNetfront() -> UDPTunnelDecap() -> ToNetfront();";
        assert_eq!(
            verdict_of(cfg, RequesterClass::ThirdParty),
            Some(Verdict::SafeWithSandbox)
        );
        assert_eq!(verdict_of(cfg, RequesterClass::Client), Some(Verdict::Safe));
    }

    #[test]
    fn opaque_vm_is_sandboxed() {
        let mut cfg = ClickConfig::new();
        cfg.add_element("in", "FromNetfront", &[]);
        cfg.add_element("vm", "StockX86VM", &[]);
        cfg.add_element("out", "ToNetfront", &[]);
        cfg.connect("in", 0, "vm", 0);
        cfg.connect("vm", 0, "out", 0);
        let r = abstract_verdict(
            &cfg,
            &ctx(RequesterClass::ThirdParty),
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(r.verdict, Verdict::SafeWithSandbox);
        assert!(!r.unknowns.is_empty());
    }

    #[test]
    fn firewall_loop_is_safe_and_decided() {
        // The Figure 1/2 shape: stateful firewall with the paper's
        // server S on the inside.
        let cfg = r#"
            client_in :: FromNetfront();
            fw :: StatefulFirewall(allow udp);
            s :: ServerS();
            out :: ToNetfront();
            client_in -> [0]fw;
            fw[0] -> s -> [1]fw;
            fw[1] -> out;
        "#;
        assert_eq!(
            verdict_of(cfg, RequesterClass::ThirdParty),
            Some(Verdict::Safe)
        );
    }

    #[test]
    fn queue_cycles_fall_back_to_symnet() {
        let mut cfg = ClickConfig::new();
        cfg.add_element("in", "FromNetfront", &[]);
        cfg.add_element("a", "Counter", &[]);
        cfg.add_element("q", "Queue", &[]);
        cfg.connect("in", 0, "a", 0);
        cfg.connect("a", 0, "q", 0);
        cfg.connect("q", 0, "a", 0);
        // add_element/connect build without validation; the cycle makes
        // the abstract interpretation bail.
        assert!(abstract_verdict(
            &cfg,
            &ctx(RequesterClass::ThirdParty),
            &Registry::standard()
        )
        .is_none());
    }

    #[test]
    fn tunnel_roundtrip_restores_invariants() {
        // Encap then decap on the same platform: the inner header is
        // restored exactly, so the flow stays decided (the write flags
        // survive, making anti-spoofing fall through to its origin
        // check — mirroring SymNet's global write records).
        let cfg = "FromNetfront() -> UDPTunnelEncap(192.0.2.10, 4789, 203.0.113.9, 4789) \
                   -> UDPTunnelDecap() -> ToNetfront();";
        let r = verdict_of(cfg, RequesterClass::Client);
        // src/dst written (encap) then restored to ingress variables:
        // anti-spoofing fails closed (Violated) exactly like SymNet.
        assert_eq!(r, Some(Verdict::Reject));
    }
}
