//! Example binaries live under `src/bin`; this library is intentionally empty.
