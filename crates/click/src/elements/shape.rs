//! Traffic shaping: packet-rate policing and byte-rate shaping, both built
//! on a virtual-time token bucket.

use std::any::Any;
use std::collections::VecDeque;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// A token bucket over virtual time with fractional accumulation.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens added per second.
    rate: f64,
    /// Maximum tokens held.
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket refilled at `rate` tokens/second, holding at most
    /// `burst` tokens (starts full).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last_ns = now_ns;
        }
    }

    /// Tries to take `n` tokens at virtual time `now_ns`.
    pub fn try_take(&mut self, n: f64, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Virtual time at which `n` tokens will be available (assuming no
    /// other consumption).
    pub fn available_at(&self, n: f64) -> u64 {
        if self.tokens >= n {
            self.last_ns
        } else {
            let deficit = n - self.tokens;
            self.last_ns + (deficit / self.rate * 1e9).ceil() as u64
        }
    }

    /// Current token count (after refilling to `now_ns`).
    pub fn peek(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }
}

/// `RateLimiter(PPS[, BURST])` — polices to a packet rate; non-conforming
/// packets are dropped. Table 1's "rate limiter" middlebox.
#[derive(Debug)]
pub struct RateLimiter {
    bucket: TokenBucket,
    passed: u64,
    dropped: u64,
}

impl RateLimiter {
    /// Parses `RateLimiter(PPS[, BURST])`.
    pub fn from_args(args: &ConfigArgs) -> Result<RateLimiter, ElementError> {
        args.expect_len_range(1, 2)?;
        let pps: f64 = args.parse_at(0)?;
        let burst: f64 = args.parse_or(1, pps.max(1.0))?;
        // The explicit NaN check matters: `x <= 0` waves NaN through.
        if pps.is_nan() || pps <= 0.0 {
            return Err(ElementError::BadArgs {
                class: "RateLimiter",
                message: "rate must be positive".to_string(),
            });
        }
        if burst.is_nan() || burst <= 0.0 {
            // A non-positive burst caps the bucket at zero tokens: every
            // packet would be dropped forever, silently.
            return Err(ElementError::BadArgs {
                class: "RateLimiter",
                message: "burst must be positive".to_string(),
            });
        }
        Ok(RateLimiter {
            bucket: TokenBucket::new(pps, burst),
            passed: 0,
            dropped: 0,
        })
    }

    /// Packets passed so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for RateLimiter {
    fn class_name(&self) -> &'static str {
        "RateLimiter"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        if self.bucket.try_take(1.0, ctx.now_ns) {
            self.passed += 1;
            out.push(0, pkt);
        } else {
            self.dropped += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `BandwidthShaper(BPS[, QUEUE_CAP])` — shapes to a bit rate: conforming
/// packets pass immediately, the rest queue and are released on ticks as
/// tokens accumulate. The queue tail-drops at `QUEUE_CAP` packets
/// (default 1024).
#[derive(Debug)]
pub struct BandwidthShaper {
    bucket: TokenBucket,
    queue: VecDeque<Packet>,
    cap: usize,
    dropped: u64,
}

impl BandwidthShaper {
    /// Parses `BandwidthShaper(BPS[, QUEUE_CAP])`.
    pub fn from_args(args: &ConfigArgs) -> Result<BandwidthShaper, ElementError> {
        args.expect_len_range(1, 2)?;
        let bps: f64 = args.parse_at(0)?;
        // The explicit NaN check matters: `x <= 0` would wave NaN through
        // into a bucket that never passes a byte.
        if bps.is_nan() || bps <= 0.0 {
            return Err(ElementError::BadArgs {
                class: "BandwidthShaper",
                message: "rate must be positive".to_string(),
            });
        }
        let cap: usize = args.parse_or(1, 1024)?;
        Ok(BandwidthShaper {
            // Byte-based bucket; allow one MTU of burst.
            bucket: TokenBucket::new(bps / 8.0, 1514.0_f64.max(bps / 8.0 / 100.0)),
            queue: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        })
    }

    /// Packets tail-dropped by the shaper queue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self, now_ns: u64, out: &mut dyn Sink) {
        while let Some(front) = self.queue.front() {
            let need = front.len() as f64;
            if self.bucket.try_take(need, now_ns) {
                let pkt = self.queue.pop_front().expect("front exists");
                out.push(0, pkt);
            } else {
                break;
            }
        }
    }
}

impl Element for BandwidthShaper {
    fn class_name(&self) -> &'static str {
        "BandwidthShaper"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        self.drain(ctx.now_ns, out);
        if self.queue.is_empty() && self.bucket.try_take(pkt.len() as f64, ctx.now_ns) {
            out.push(0, pkt);
        } else if self.queue.len() < self.cap {
            self.queue.push_back(pkt);
        } else {
            self.dropped += 1;
        }
    }

    fn tick(&mut self, ctx: &Context, out: &mut dyn Sink) {
        self.drain(ctx.now_ns, out);
    }

    fn next_tick_ns(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|p| self.bucket.available_at(p.len() as f64))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn token_bucket_conserves() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        let mut taken = 0;
        // Over 10 virtual seconds at 10 tokens/s with burst 10, at most
        // 10 (burst) + 100 (refill) tokens can be taken.
        for ms in (0..10_000u64).step_by(7) {
            if tb.try_take(1.0, ms * 1_000_000) {
                taken += 1;
            }
        }
        assert!(taken <= 110, "took {taken}");
        assert!(taken >= 100, "took {taken}");
    }

    #[test]
    fn rate_limiter_polices() {
        let args = ConfigArgs::parse("RateLimiter", "100, 5");
        let mut rl = RateLimiter::from_args(&args).unwrap();
        let mut s = VecSink::new();
        // Send a 10-packet burst at t=0; bucket holds 5 tokens.
        for _ in 0..10 {
            rl.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        }
        assert_eq!(rl.passed(), 5);
        assert_eq!(rl.dropped(), 5);
        // After 50 ms at 100 pps, 5 more tokens accumulated (burst-capped).
        for _ in 0..10 {
            rl.push(
                0,
                PacketBuilder::udp().build(),
                &Context::at(50_000_000),
                &mut s,
            );
        }
        assert_eq!(rl.passed(), 10);
    }

    #[test]
    fn shaper_queues_then_releases() {
        // 8000 bit/s = 1000 bytes/s.
        let args = ConfigArgs::parse("BandwidthShaper", "8000, 10");
        let mut sh = BandwidthShaper::from_args(&args).unwrap();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp().pad_to(1000).build();
        // First packet passes on the initial burst; the second queues.
        sh.push(0, pkt.clone(), &Context::at(0), &mut s);
        sh.push(0, pkt.clone(), &Context::at(0), &mut s);
        assert_eq!(s.pushed.len(), 1);
        assert_eq!(sh.queued(), 1);
        assert!(sh.next_tick_ns().is_some());
        // After one virtual second, 1000 bytes of tokens accumulated.
        sh.tick(&Context::at(1_100_000_000), &mut s);
        assert_eq!(s.pushed.len(), 2);
        assert_eq!(sh.queued(), 0);
    }

    #[test]
    fn shaper_tail_drops() {
        let args = ConfigArgs::parse("BandwidthShaper", "8, 2");
        let mut sh = BandwidthShaper::from_args(&args).unwrap();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp().pad_to(1472).build();
        for _ in 0..10 {
            sh.push(0, pkt.clone(), &Context::at(0), &mut s);
        }
        assert!(sh.dropped() > 0);
        assert_eq!(sh.queued(), 2);
    }

    #[test]
    fn zero_rate_rejected() {
        assert!(RateLimiter::from_args(&ConfigArgs::parse("RateLimiter", "0")).is_err());
        assert!(BandwidthShaper::from_args(&ConfigArgs::parse("BandwidthShaper", "-5")).is_err());
        assert!(RateLimiter::from_args(&ConfigArgs::parse("RateLimiter", "NaN")).is_err());
        assert!(BandwidthShaper::from_args(&ConfigArgs::parse("BandwidthShaper", "NaN")).is_err());
    }

    #[test]
    fn non_positive_burst_rejected() {
        // A dead bucket (burst ≤ 0 caps tokens at zero) must be a config
        // error, not a silent 100%-drop limiter.
        for burst in ["0", "-1", "NaN"] {
            assert!(
                RateLimiter::from_args(&ConfigArgs::parse("RateLimiter", &format!("100, {burst}")))
                    .is_err(),
                "burst {burst}"
            );
        }
        // A valid explicit burst still parses.
        assert!(RateLimiter::from_args(&ConfigArgs::parse("RateLimiter", "100, 5")).is_ok());
    }
}
