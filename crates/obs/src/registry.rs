//! The metric registry: named instruments and snapshot export.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::export::{Snapshot, SnapshotHistogram};
use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge, LabeledCounter};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    labeled: BTreeMap<String, (String, LabeledCounter)>,
}

/// A shared registry of named instruments.
///
/// Cloning a registry clones a handle to the same underlying store, so
/// independently constructed components (a [`crate::Registry`] passed to
/// both a host and its switch controller, say) publish into one
/// namespace and one snapshot. Requesting an existing name returns the
/// existing instrument — get-or-create, never replace — which is what
/// lets per-VM routers aggregate into one set of counters.
///
/// Names follow the Prometheus convention (`snake_case`, `_total`
/// suffix for counters, unit suffix like `_ns` for histograms) and are
/// namespaced per subsystem; see DESIGN.md §9 for the full taxonomy.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The labeled counter family named `name` whose cells are keyed by
    /// the label dimension `label` (e.g. `"reason"`), created empty on
    /// first use. The label dimension of the first registration wins.
    pub fn labeled_counter(&self, name: &str, label: &str) -> LabeledCounter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .labeled
            .entry(name.to_string())
            .or_insert_with(|| (label.to_string(), LabeledCounter::new()))
            .1
            .clone()
    }

    /// A consistent point-in-time snapshot of every registered
    /// instrument, for export via [`Snapshot::to_prometheus`] or
    /// [`Snapshot::to_json`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        SnapshotHistogram {
                            snapshot: v.snapshot(),
                        },
                    )
                })
                .collect(),
            labeled: inner
                .labeled
                .iter()
                .map(|(k, (label, v))| (k.clone(), label.clone(), v.cells()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_instruments() {
        let reg = Registry::new();
        reg.counter("a_total").add(2);
        reg.counter("a_total").inc();
        assert_eq!(reg.counter("a_total").get(), 3);
    }

    #[test]
    fn cloned_registry_shares_namespace() {
        let reg = Registry::new();
        let reg2 = reg.clone();
        reg.counter("x_total").inc();
        reg2.counter("x_total").inc();
        assert_eq!(reg.counter("x_total").get(), 2);
    }

    #[test]
    fn snapshot_sees_everything() {
        let reg = Registry::new();
        reg.counter("c_total").inc();
        reg.gauge("g").set(-4);
        reg.histogram("h_ns").observe(100);
        reg.labeled_counter("d_total", "reason")
            .with("suspended")
            .inc();
        let s = reg.snapshot();
        assert_eq!(s.counters, vec![("c_total".to_string(), 1)]);
        assert_eq!(s.gauges, vec![("g".to_string(), -4)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.labeled[0].0, "d_total");
        assert_eq!(s.labeled[0].1, "reason");
        assert_eq!(s.labeled[0].2, vec![("suspended".to_string(), 1)]);
    }
}
