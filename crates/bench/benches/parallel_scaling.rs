//! Flow-sharded scaling: `ParallelRunner` throughput across worker and
//! batch sweeps, against the single-threaded `NativeRunner` baseline.
//!
//! Two corpora: the stock consolidated firewall (the paper's §5/Figure 8
//! multi-tenant configuration — stateless, so it shards) and the
//! Figure 12 middlebox corpus (where `nat` is stateful and demonstrates
//! the degrade-to-one-worker rule: its `w4` numbers should match `w1`).

use criterion::{criterion_group, criterion_main, Criterion};
use innet::platform::{consolidated_config, middlebox_config, RunnerConfig};
use innet::prelude::*;
use std::hint::black_box;
use std::net::Ipv4Addr;

const TRACE_LEN: usize = 2048;
const FLOWS: usize = 64;

fn clients(n: usize) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(203, 0, (113 + i / 250) as u8, (1 + i % 250) as u8))
        .collect()
}

fn trace(dsts: &[Ipv4Addr]) -> Vec<Packet> {
    (0..TRACE_LEN)
        .map(|i| {
            let f = i % FLOWS;
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                .dst(dsts[f % dsts.len()], 80)
                .pad_to(64)
                .build()
        })
        .collect()
}

/// Workers ∈ {1, 2, 4, 8} × batch ∈ {1, 32, 256} on the stock
/// consolidated firewall.
fn bench_consolidated_sweep(c: &mut Criterion) {
    let addrs = clients(16);
    let cfg = consolidated_config(&addrs);
    let pkts = trace(&addrs);
    for workers in [1usize, 2, 4, 8] {
        for batch in [1usize, 32, 256] {
            let name = format!("parallel_consolidated16_w{workers}_b{batch}");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(batch)
                    .parallel(&cfg)
                    .unwrap();
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
    // The single-threaded engine at the same batch sizes, for the
    // sharding-overhead comparison (w1 vs native isolates dispatcher +
    // ring cost).
    for batch in [1usize, 32, 256] {
        let name = format!("native_consolidated16_b{batch}");
        c.bench_function(&name, |b| {
            let mut runner = RunnerConfig::new().batch(batch).native(&cfg).unwrap();
            b.iter(|| black_box(runner.run(&pkts, 1)));
        });
    }
}

/// The Figure 12 middlebox corpus at 1 and 4 workers. `nat` is stateful:
/// the registry degrades it to one worker, so its `w4` row is the
/// single-worker cost plus dispatch overhead — the visible price of the
/// safety rule.
fn bench_middlebox_corpus(c: &mut Criterion) {
    let dsts = [Ipv4Addr::new(10, 0, 0, 1)];
    let pkts = trace(&dsts);
    for kind in ["firewall", "iprouter", "flowmeter", "nat"] {
        let cfg = middlebox_config(kind).expect("known middlebox kind");
        for workers in [1usize, 4] {
            let name = format!("parallel_{kind}_w{workers}_b32");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(32)
                    .parallel(&cfg)
                    .unwrap();
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
}

criterion_group!(benches, bench_consolidated_sweep, bench_middlebox_corpus);
criterion_main!(benches);
