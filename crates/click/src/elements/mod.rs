//! The element library.
//!
//! Every class listed here has (a) a concrete packet-processing
//! implementation in this module tree and (b) an abstract model in
//! `innet-symnet` used for static verification. Client configurations may
//! only use these classes — an unknown class is rejected at request time
//! (paper §4.1).

mod classify;
mod counter;
mod dpi;
mod enforcer;
mod filter;
mod firewall;
mod header;
mod nat;
mod proxy;
mod queue;
mod respond;
mod rewrite;
mod route;
mod sched;
mod shape;
mod source_sink;
mod tee;
mod tunnel;

pub use classify::{ByteCheck, BytePattern, Classifier, IPClassifier};
pub use counter::{Counter, FlowMeter, FlowStats};
pub use dpi::Dpi;
pub use enforcer::{ChangeEnforcer, DEFAULT_AUTH_TIMEOUT_S};
pub use filter::{FilterAction, IPFilter};
pub use firewall::{StatefulFirewall, DEFAULT_TIMEOUT_S};
pub use header::{
    CheckIPHeader, DecIPTTL, EtherEncap, MarkIPHeader, SetIPDst, SetIPSrc, SetTOS, Strip,
};
pub use nat::IpNat;
pub use proxy::TransparentProxy;
pub use queue::{Queue, TimedUnqueue};
pub use respond::IcmpPingResponder;
pub use rewrite::{FieldSpec, IPRewriter, RewritePattern};
pub use route::StaticIPLookup;
pub use sched::{CheckPaint, Meter, Paint, RandomSwitch, RoundRobinSwitch, PAINT_ANNO};
pub use shape::{BandwidthShaper, RateLimiter, TokenBucket};
pub use source_sink::{Discard, FromNetfront, Idle, ToNetfront};
pub use tee::{IpMulticast, Tee};
pub use tunnel::{IpDecap, IpEncap, UdpTunnelDecap, UdpTunnelEncap};
