//! The router: instantiates a configuration and drives packets through the
//! element graph.

use std::collections::{HashMap, VecDeque};

use innet_packet::Packet;

use crate::{
    config::{ClickConfig, PortRef},
    element::{Context, Element, Sink},
    elements::FromNetfront,
    registry::Registry,
    ElementError,
};

/// Hard bound on element hops a single injected packet (and its clones) may
/// traverse; exceeding it indicates a forwarding loop in the configuration.
const MAX_HOPS: usize = 100_000;

/// Errors produced while instantiating or running a router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// Element instantiation failed.
    Element(ElementError),
    /// The configuration failed validation.
    Config(crate::config::ConfigError),
    /// A connection references a port outside the element's declared range.
    BadPort {
        /// The offending port reference.
        port: PortRef,
        /// Whether it was an input (true) or output (false) port.
        input: bool,
    },
    /// A packet exceeded the hop limit (100,000 element traversals).
    LoopDetected,
    /// `deliver` was called for an interface with no `FromNetfront`.
    NoSuchInterface(u16),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Element(e) => write!(f, "{e}"),
            RouterError::Config(e) => write!(f, "{e}"),
            RouterError::BadPort { port, input } => write!(
                f,
                "{} port [{}]{} out of range",
                if *input { "input" } else { "output" },
                port.port,
                port.element
            ),
            RouterError::LoopDetected => write!(f, "packet exceeded hop limit (loop?)"),
            RouterError::NoSuchInterface(i) => write!(f, "no FromNetfront for interface {i}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<ElementError> for RouterError {
    fn from(e: ElementError) -> Self {
        RouterError::Element(e)
    }
}

impl From<crate::config::ConfigError> for RouterError {
    fn from(e: crate::config::ConfigError) -> Self {
        RouterError::Config(e)
    }
}

/// Counters maintained by the router while processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets delivered from the outside via `deliver`.
    pub delivered: u64,
    /// Packets transmitted to the outside by `ToNetfront` elements.
    pub transmitted: u64,
    /// Packets that left an unconnected output port (dropped, as in
    /// Click — but counted, and reason-labeled when metrics are
    /// attached).
    pub dropped_unconnected: u64,
    /// Total element hops executed.
    pub hops: u64,
}

/// Shared-registry instruments a router publishes into when attached
/// via [`Router::attach_metrics`]. Many routers attached to the same
/// registry (every ClickOS VM on a host, say) share these handles, so
/// the registry aggregates across the fleet.
#[derive(Debug, Clone)]
struct RouterMetrics {
    delivered: innet_obs::Counter,
    transmitted: innet_obs::Counter,
    hops: innet_obs::Counter,
    dropped_unconnected: innet_obs::Counter,
}

impl RouterMetrics {
    fn register(reg: &innet_obs::Registry) -> RouterMetrics {
        RouterMetrics {
            delivered: reg.counter("innet_click_delivered_total"),
            transmitted: reg.counter("innet_click_transmitted_total"),
            hops: reg.counter("innet_click_hops_total"),
            dropped_unconnected: reg
                .labeled_counter("innet_click_drops_total", "reason")
                .with("unconnected_port"),
        }
    }
}

/// An instantiated element graph with push-based execution.
///
/// See the crate-level example for typical use. The router is
/// single-threaded by design (one ClickOS VM pins its Click instance to one
/// vCPU); parallelism in In-Net comes from running many routers.
pub struct Router {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// `(element, out_port) -> (element, in_port)`.
    edges: HashMap<(usize, usize), (usize, usize)>,
    /// Interface id -> index of its `FromNetfront` element.
    rx_ifaces: HashMap<u16, usize>,
    /// Packets emitted by `ToNetfront` elements, awaiting `take_tx`.
    tx: Vec<(u16, Packet)>,
    /// Last virtual time seen.
    now_ns: u64,
    /// Execution counters.
    pub stats: RouterStats,
    /// Shared-registry mirrors of `stats`, when attached.
    metrics: Option<RouterMetrics>,
    /// Reusable worklist buffer: allocated once, reused by every
    /// `run_from` so batch processing does not pay a queue allocation
    /// per packet.
    scratch: VecDeque<(usize, usize, Packet)>,
    /// Reusable per-hop emission buffer (same rationale).
    emitted_buf: Vec<(usize, Packet)>,
}

/// Outcome of a [`Router::push_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Packets that entered the graph and ran to completion.
    pub delivered: u64,
    /// Packets that failed (unknown ingress interface or a detected
    /// forwarding loop); the rest of the batch still runs.
    pub failed: u64,
}

/// Sink used during a run: buffers port pushes for queueing and routes
/// transmissions straight into the router's tx list.
struct RunSink<'a> {
    emitted: &'a mut Vec<(usize, Packet)>,
    tx: &'a mut Vec<(u16, Packet)>,
}

impl Sink for RunSink<'_> {
    fn push(&mut self, port: usize, pkt: Packet) {
        self.emitted.push((port, pkt));
    }

    fn transmit(&mut self, iface: u16, pkt: Packet) {
        self.tx.push((iface, pkt));
    }
}

impl Router {
    /// Instantiates all elements of `cfg` via `registry` and wires them up.
    pub fn from_config(cfg: &ClickConfig, registry: &Registry) -> Result<Router, RouterError> {
        cfg.validate()?;
        let mut elements = Vec::with_capacity(cfg.elements.len());
        let mut names = Vec::with_capacity(cfg.elements.len());
        let mut index = HashMap::new();
        let mut rx_ifaces = HashMap::new();
        for decl in &cfg.elements {
            let el = registry.instantiate(&decl.class, &decl.args)?;
            if let Some(fnf) = el.as_any().downcast_ref::<FromNetfront>() {
                rx_ifaces.insert(fnf.iface(), elements.len());
            }
            index.insert(decl.name.clone(), elements.len());
            names.push(decl.name.clone());
            elements.push(el);
        }

        let mut edges = HashMap::new();
        for c in &cfg.connections {
            let from_idx = index[&c.from.element];
            let to_idx = index[&c.to.element];
            let from_ports = elements[from_idx].ports();
            let to_ports = elements[to_idx].ports();
            if c.from.port >= from_ports.outputs {
                return Err(RouterError::BadPort {
                    port: c.from.clone(),
                    input: false,
                });
            }
            if c.to.port >= to_ports.inputs {
                return Err(RouterError::BadPort {
                    port: c.to.clone(),
                    input: true,
                });
            }
            let prev = edges.insert((from_idx, c.from.port), (to_idx, c.to.port));
            debug_assert!(
                prev.is_none(),
                "duplicate wiring of {}[{}] survived validation",
                c.from.element,
                c.from.port
            );
        }

        // Graph invariants: every wire references a live element and an
        // in-range port on both sides. `validate()` plus the arity checks
        // above guarantee this; internal corruption should fail loudly
        // here rather than misroute packets later.
        debug_assert!(edges.iter().all(|(&(f, fp), &(t, tp))| {
            f < elements.len()
                && t < elements.len()
                && fp < elements[f].ports().outputs
                && tp < elements[t].ports().inputs
        }));

        Ok(Router {
            elements,
            names,
            index,
            edges,
            rx_ifaces,
            tx: Vec::new(),
            now_ns: 0,
            stats: RouterStats::default(),
            metrics: None,
            scratch: VecDeque::new(),
            emitted_buf: Vec::new(),
        })
    }

    /// Publishes this router's counters into `registry` (Prometheus
    /// namespace `innet_click_*`), in addition to the always-on
    /// [`RouterStats`] struct. Routers attached to the same registry
    /// aggregate into the same series; only events after attachment are
    /// counted there.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.metrics = Some(RouterMetrics::register(registry));
    }

    /// Number of elements in the graph.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The element instance names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Immutable access to an element by name, downcast to `T`.
    pub fn element_as<T: 'static>(&self, name: &str) -> Option<&T> {
        let idx = *self.index.get(name)?;
        self.elements[idx].as_any().downcast_ref::<T>()
    }

    /// Mutable access to an element by name, downcast to `T`.
    pub fn element_as_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        let idx = *self.index.get(name)?;
        self.elements[idx].as_any_mut().downcast_mut::<T>()
    }

    /// Delivers an external packet to the `FromNetfront` of `iface` at
    /// virtual time `now_ns`, running the graph to completion.
    ///
    /// Returns an error when the interface does not exist or a loop is
    /// detected; transmitted packets accumulate for [`Router::take_tx`].
    pub fn deliver(&mut self, iface: u16, pkt: Packet, now_ns: u64) -> Result<(), RouterError> {
        let Some(&idx) = self.rx_ifaces.get(&iface) else {
            return Err(RouterError::NoSuchInterface(iface));
        };
        self.stats.delivered += 1;
        if let Some(m) = &self.metrics {
            m.delivered.inc();
        }
        self.run_from(idx, 0, pkt, now_ns)
    }

    /// Injects a packet directly into input `port` of element `name`
    /// (used by tests and by the controller's probe machinery).
    pub fn inject(
        &mut self,
        name: &str,
        port: usize,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<(), RouterError> {
        let Some(&idx) = self.index.get(name) else {
            return Err(RouterError::Config(
                crate::config::ConfigError::UnknownElement(name.to_string()),
            ));
        };
        self.run_from(idx, port, pkt, now_ns)
    }

    fn run_from(
        &mut self,
        idx: usize,
        port: usize,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<(), RouterError> {
        self.now_ns = now_ns;
        let ctx = Context::at(now_ns);
        let mut queue = std::mem::take(&mut self.scratch);
        let mut emitted = std::mem::take(&mut self.emitted_buf);
        queue.clear();
        queue.push_back((idx, port, pkt));
        let mut hops = 0usize;
        let mut result = Ok(());
        while let Some((i, p, pkt)) = queue.pop_front() {
            hops += 1;
            if hops > MAX_HOPS {
                result = Err(RouterError::LoopDetected);
                break;
            }
            self.stats.hops += 1;
            let before_tx = self.tx.len();
            emitted.clear();
            let mut sink = RunSink {
                emitted: &mut emitted,
                tx: &mut self.tx,
            };
            self.elements[i].push(p, pkt, &ctx, &mut sink);
            let transmitted = (self.tx.len() - before_tx) as u64;
            self.stats.transmitted += transmitted;
            if let Some(m) = &self.metrics {
                m.hops.inc();
                m.transmitted.add(transmitted);
            }
            for (out_port, out_pkt) in emitted.drain(..) {
                match self.edges.get(&(i, out_port)) {
                    Some(&(ni, np)) => queue.push_back((ni, np, out_pkt)),
                    None => {
                        self.stats.dropped_unconnected += 1;
                        if let Some(m) = &self.metrics {
                            m.dropped_unconnected.inc();
                        }
                    }
                }
            }
        }
        // Return the buffers to the router for the next packet (cleared
        // of any in-flight work if a loop bailed out mid-run).
        queue.clear();
        emitted.clear();
        self.scratch = queue;
        self.emitted_buf = emitted;
        result
    }

    /// Pushes a whole batch of packets through the graph, each entering
    /// via the interface recorded in its `meta.ingress` annotation.
    ///
    /// Virtual time advances by `step_ns` *before* every packet, exactly
    /// like driving [`Router::deliver`] in a loop (the batch's last
    /// packet runs at `now_ns + step_ns * batch.len()`); per-packet
    /// failures (unknown interface, forwarding loop) are counted in the
    /// result instead of aborting the rest of the batch. The outputs of
    /// the whole batch accumulate for [`Router::take_tx`].
    ///
    /// Batching amortizes per-packet dispatch: one call covers the whole
    /// batch, the internal worklist and emission buffers are reused
    /// across packets, and when every packet in the batch enters through
    /// the same `FromNetfront` the ingress ring is drained in one
    /// batched transfer ([`NetfrontRing::transfer_batch`]) rather than
    /// one element invocation per packet.
    ///
    /// [`NetfrontRing::transfer_batch`]: crate::NetfrontRing::transfer_batch
    pub fn push_batch(&mut self, batch: Vec<Packet>, now_ns: u64, step_ns: u64) -> BatchResult {
        let mut result = BatchResult::default();
        let mut now = now_ns;

        // Fast path: a single-ingress batch skips the per-packet entry
        // dispatch — the ring is drained in one call and each packet
        // starts directly at the netfront's successor element.
        let shared_iface = match batch.as_slice() {
            [] => return result,
            [first, rest @ ..] => {
                let iface = first.meta.ingress;
                rest.iter()
                    .all(|p| p.meta.ingress == iface)
                    .then_some(iface)
            }
        };
        if let Some(iface) = shared_iface {
            if let Some(&entry) = self.rx_ifaces.get(&iface) {
                let successor = self.edges.get(&(entry, 0)).copied();
                let fnf = self.elements[entry]
                    .as_any_mut()
                    .downcast_mut::<FromNetfront>()
                    .expect("rx_ifaces only indexes FromNetfront elements");
                fnf.ring_mut().transfer_batch(&batch);
                let n = batch.len() as u64;
                // The entry hop runs once per packet on the slow path;
                // account it identically here.
                self.stats.delivered += n;
                self.stats.hops += n;
                if let Some(m) = &self.metrics {
                    m.delivered.add(n);
                    m.hops.add(n);
                }
                match successor {
                    Some((ni, np)) => {
                        for mut pkt in batch {
                            now += step_ns;
                            pkt.meta.ingress = iface;
                            match self.run_from(ni, np, pkt, now) {
                                Ok(()) => result.delivered += 1,
                                Err(_) => result.failed += 1,
                            }
                        }
                    }
                    None => {
                        // Unwired netfront: every packet drops exactly as
                        // it would through the per-packet path.
                        self.stats.dropped_unconnected += n;
                        if let Some(m) = &self.metrics {
                            m.dropped_unconnected.add(n);
                        }
                        self.now_ns = now + step_ns * n;
                        result.delivered += n;
                    }
                }
                return result;
            }
        }

        for pkt in batch {
            now += step_ns;
            let iface = pkt.meta.ingress;
            match self.deliver(iface, pkt, now) {
                Ok(()) => result.delivered += 1,
                Err(_) => result.failed += 1,
            }
        }
        result
    }

    /// Advances virtual time: ticks every element, then runs any packets
    /// they released. Returns the packets transmitted during this tick.
    pub fn tick(&mut self, now_ns: u64) -> Vec<(u16, Packet)> {
        self.now_ns = now_ns;
        let ctx = Context::at(now_ns);
        let mut released: Vec<(usize, usize, Packet)> = Vec::new();
        let mut new_tx = 0u64;
        let mut emitted: Vec<(usize, Packet)> = Vec::new();
        for (i, el) in self.elements.iter_mut().enumerate() {
            let before_tx = self.tx.len();
            let mut sink = RunSink {
                emitted: &mut emitted,
                tx: &mut self.tx,
            };
            el.tick(&ctx, &mut sink);
            new_tx += (self.tx.len() - before_tx) as u64;
            for (out_port, pkt) in emitted.drain(..) {
                released.push((i, out_port, pkt));
            }
        }
        self.stats.transmitted += new_tx;
        if let Some(m) = &self.metrics {
            m.transmitted.add(new_tx);
        }
        for (i, out_port, pkt) in released {
            match self.edges.get(&(i, out_port)).copied() {
                Some((ni, np)) => {
                    // A tick-released packet then flows like any other.
                    let _ = self.run_from(ni, np, pkt, now_ns);
                }
                None => {
                    self.stats.dropped_unconnected += 1;
                    if let Some(m) = &self.metrics {
                        m.dropped_unconnected.inc();
                    }
                }
            }
        }
        self.take_tx()
    }

    /// The earliest wake-up any element wants, if any.
    pub fn next_tick_ns(&self) -> Option<u64> {
        self.elements.iter().filter_map(|e| e.next_tick_ns()).min()
    }

    /// Drains and returns packets transmitted since the last call.
    pub fn take_tx(&mut self) -> Vec<(u16, Packet)> {
        std::mem::take(&mut self.tx)
    }

    /// Drains transmitted packets into `out` without allocating a fresh
    /// vector — the batched companion of [`Router::take_tx`], used by
    /// runners that drain once per batch into a long-lived buffer.
    pub fn take_tx_into(&mut self, out: &mut Vec<(u16, Packet)>) {
        out.append(&mut self.tx);
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("elements", &self.names)
            .field("edges", &self.edges.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Counter;
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn build(cfg: &str) -> Router {
        Router::from_config(&ClickConfig::parse(cfg).unwrap(), &Registry::standard()).unwrap()
    }

    #[test]
    fn straight_pipeline_transmits() {
        let mut r = build("FromNetfront() -> cnt :: Counter() -> ToNetfront();");
        r.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        let tx = r.take_tx();
        assert_eq!(tx.len(), 1);
        assert_eq!(r.element_as::<Counter>("cnt").unwrap().packets(), 1);
        assert_eq!(r.stats.delivered, 1);
        assert_eq!(r.stats.transmitted, 1);
    }

    #[test]
    fn unconnected_output_drops() {
        let mut r = build("FromNetfront() -> Counter();");
        r.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        assert!(r.take_tx().is_empty());
        assert_eq!(r.stats.dropped_unconnected, 1);
    }

    #[test]
    fn attached_metrics_mirror_stats_and_aggregate() {
        let reg = innet_obs::Registry::new();
        let mut a = build("FromNetfront() -> Counter();");
        let mut b = build("FromNetfront() -> ToNetfront();");
        a.attach_metrics(&reg);
        b.attach_metrics(&reg);
        a.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        b.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        assert_eq!(reg.counter("innet_click_delivered_total").get(), 2);
        assert_eq!(reg.counter("innet_click_transmitted_total").get(), 1);
        assert_eq!(
            reg.labeled_counter("innet_click_drops_total", "reason")
                .get("unconnected_port"),
            1,
            "the unconnected drop is reason-labeled, not silent"
        );
        // The always-on struct still counts per router.
        assert_eq!(a.stats.dropped_unconnected, 1);
        assert_eq!(b.stats.dropped_unconnected, 0);
    }

    #[test]
    fn missing_interface_errors() {
        let mut r = build("FromNetfront(1) -> ToNetfront();");
        assert_eq!(
            r.deliver(0, PacketBuilder::udp().build(), 0).unwrap_err(),
            RouterError::NoSuchInterface(0)
        );
        r.deliver(1, PacketBuilder::udp().build(), 0).unwrap();
        assert_eq!(r.take_tx().len(), 1);
    }

    #[test]
    fn classifier_branches() {
        let mut r = build(
            r#"
            src :: FromNetfront();
            c :: IPClassifier(udp, tcp);
            u :: Counter(); t :: Counter();
            snkA :: ToNetfront(0); snkB :: ToNetfront(1);
            src -> c;
            c[0] -> u -> snkA;
            c[1] -> t -> snkB;
            "#,
        );
        r.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        r.deliver(0, PacketBuilder::tcp().build(), 0).unwrap();
        r.deliver(0, PacketBuilder::tcp().build(), 0).unwrap();
        assert_eq!(r.element_as::<Counter>("u").unwrap().packets(), 1);
        assert_eq!(r.element_as::<Counter>("t").unwrap().packets(), 2);
        let tx = r.take_tx();
        assert_eq!(tx.iter().filter(|(i, _)| *i == 0).count(), 1);
        assert_eq!(tx.iter().filter(|(i, _)| *i == 1).count(), 2);
    }

    #[test]
    fn loop_detection() {
        // Tee feeding itself creates an amplifying loop.
        let mut r = build("t :: Tee(2); t[0] -> t; t[1] -> [0]d :: Discard;");
        let err = r
            .inject("t", 0, PacketBuilder::udp().build(), 0)
            .unwrap_err();
        assert_eq!(err, RouterError::LoopDetected);
    }

    #[test]
    fn bad_port_rejected_at_build() {
        let cfg = ClickConfig::parse("c :: Counter(); d :: Discard; c[3] -> d;").unwrap();
        let err = Router::from_config(&cfg, &Registry::standard()).unwrap_err();
        assert!(matches!(err, RouterError::BadPort { input: false, .. }));
    }

    #[test]
    fn unknown_class_rejected() {
        let cfg = ClickConfig::parse("x :: FluxCapacitor();").unwrap();
        let err = Router::from_config(&cfg, &Registry::standard()).unwrap_err();
        assert!(matches!(
            err,
            RouterError::Element(ElementError::UnknownClass(_))
        ));
    }

    #[test]
    fn push_batch_matches_per_packet_delivery() {
        // Same packets, one router fed per-packet and one fed in batches:
        // identical outputs, stats, and netfront ring accounting.
        let cfg = r#"
            src :: FromNetfront();
            c :: IPClassifier(udp dst port 80, tcp);
            snkA :: ToNetfront(0); snkB :: ToNetfront(1);
            src -> c;
            c[0] -> snkA;
            c[1] -> snkB;
        "#;
        let mut serial = build(cfg);
        let mut batched = build(cfg);
        let pkts: Vec<Packet> = (0..23)
            .map(|i| {
                if i % 3 == 0 {
                    PacketBuilder::tcp()
                        .dst(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
                        .build()
                } else {
                    PacketBuilder::udp()
                        .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
                        .build()
                }
            })
            .collect();

        let mut now = 0u64;
        for pkt in &pkts {
            now += 1_000;
            serial.deliver(0, pkt.clone(), now).unwrap();
        }
        let r = batched.push_batch(pkts.clone(), 0, 1_000);
        assert_eq!(r.delivered, pkts.len() as u64);
        assert_eq!(r.failed, 0);

        assert_eq!(serial.take_tx(), batched.take_tx());
        assert_eq!(serial.stats, batched.stats);
        // The batched ingress drained its ring identically.
        let a = serial
            .element_as::<FromNetfront>("src")
            .unwrap()
            .rx_packets();
        let b = batched
            .element_as::<FromNetfront>("src")
            .unwrap()
            .rx_packets();
        assert_eq!(a, b);
    }

    #[test]
    fn push_batch_mixed_ingress_and_errors() {
        let cfg = "a :: FromNetfront(0) -> snk :: ToNetfront(); b :: FromNetfront(1) -> snk2 :: ToNetfront(1);";
        let mut r = build(cfg);
        let mut batch: Vec<Packet> = Vec::new();
        for i in 0..6u16 {
            let mut p = PacketBuilder::udp().build();
            p.meta.ingress = i % 2;
            batch.push(p);
        }
        // One packet aimed at a non-existent interface fails without
        // sinking the batch.
        let mut stray = PacketBuilder::udp().build();
        stray.meta.ingress = 9;
        batch.push(stray);
        let res = r.push_batch(batch, 0, 1_000);
        assert_eq!(res.delivered, 6);
        assert_eq!(res.failed, 1);
        assert_eq!(r.take_tx().len(), 6);
    }

    #[test]
    fn push_batch_unwired_netfront_counts_drops() {
        let mut r = build("FromNetfront();");
        let res = r.push_batch(vec![PacketBuilder::udp().build(); 4], 0, 1_000);
        assert_eq!(res.delivered, 4);
        assert_eq!(r.stats.dropped_unconnected, 4);
        assert!(r.take_tx().is_empty());
    }

    #[test]
    fn take_tx_into_appends() {
        let mut r = build("FromNetfront() -> ToNetfront();");
        let mut out = Vec::new();
        r.deliver(0, PacketBuilder::udp().build(), 0).unwrap();
        r.take_tx_into(&mut out);
        r.deliver(0, PacketBuilder::udp().build(), 1).unwrap();
        r.take_tx_into(&mut out);
        assert_eq!(out.len(), 2);
        assert!(r.take_tx().is_empty());
    }

    #[test]
    fn figure4_batcher_end_to_end() {
        let mut r = build(
            r#"
            FromNetfront()
              -> IPFilter(allow udp dst port 1500)
              -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
              -> TimedUnqueue(120, 100)
              -> ToNetfront();
            "#,
        );
        // Conforming packet: batched, not yet released.
        let ok = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 999)
            .dst(Ipv4Addr::new(5, 5, 5, 5), 1500)
            .build();
        // Non-conforming packet: dropped by the filter.
        let bad = PacketBuilder::udp()
            .dst(Ipv4Addr::new(5, 5, 5, 5), 1501)
            .build();
        r.deliver(0, ok, 0).unwrap();
        r.deliver(0, bad, 1).unwrap();
        assert!(r.take_tx().is_empty());
        assert!(r.next_tick_ns().is_some());

        let tx = r.tick(120_000_000_000);
        assert_eq!(tx.len(), 1);
        let out = &tx[0].1;
        assert_eq!(out.ipv4().unwrap().dst(), Ipv4Addr::new(172, 16, 15, 133));
        assert!(out.ipv4().unwrap().verify_checksum());
    }
}
