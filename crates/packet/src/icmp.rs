//! ICMP header view (echo request/reply, as used by the ping experiments).

use crate::{PacketError, Result};
use serde::{Deserialize, Serialize};

/// Length in bytes of the fixed part of an ICMP echo header.
pub const ICMP_HDR_LEN: usize = 8;

/// The ICMP message kinds used in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply,
    /// Echo request (type 8).
    EchoRequest,
    /// Any other type.
    Other(u8),
}

impl IcmpKind {
    /// The on-the-wire type number.
    pub fn number(self) -> u8 {
        match self {
            IcmpKind::EchoReply => 0,
            IcmpKind::EchoRequest => 8,
            IcmpKind::Other(n) => n,
        }
    }
}

impl From<u8> for IcmpKind {
    fn from(n: u8) -> Self {
        match n {
            0 => IcmpKind::EchoReply,
            8 => IcmpKind::EchoRequest,
            other => IcmpKind::Other(other),
        }
    }
}

/// A typed view of an ICMP echo header over a byte buffer that begins at
/// the first byte of the ICMP header.
#[derive(Debug)]
pub struct IcmpView<T> {
    buf: T,
}

impl<T: AsRef<[u8]>> IcmpView<T> {
    /// Validates the buffer length and wraps it.
    pub fn new(buf: T) -> Result<Self> {
        let have = buf.as_ref().len();
        if have < ICMP_HDR_LEN {
            return Err(PacketError::Truncated {
                what: "ICMP header",
                need: ICMP_HDR_LEN,
                have,
            });
        }
        Ok(IcmpView { buf })
    }

    fn b(&self) -> &[u8] {
        self.buf.as_ref()
    }

    /// Message kind (type field).
    pub fn kind(&self) -> IcmpKind {
        IcmpKind::from(self.b()[0])
    }

    /// Code field.
    pub fn code(&self) -> u8 {
        self.b()[1]
    }

    /// Echo identifier.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Echo sequence number.
    pub fn seq(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> IcmpView<T> {
    /// Validates and wraps the buffer for mutation.
    pub fn new_mut(buf: T) -> Result<Self> {
        IcmpView::new(buf)
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buf.as_mut()
    }

    /// Sets the message kind.
    pub fn set_kind(&mut self, k: IcmpKind) {
        self.bm()[0] = k.number();
    }

    /// Sets the code field.
    pub fn set_code(&mut self, c: u8) {
        self.bm()[1] = c;
    }

    /// Sets the echo identifier.
    pub fn set_ident(&mut self, id: u16) {
        self.bm()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the echo sequence number.
    pub fn set_seq(&mut self, s: u16) {
        self.bm()[6..8].copy_from_slice(&s.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; ICMP_HDR_LEN];
        let mut v = IcmpView::new_mut(&mut buf[..]).unwrap();
        v.set_kind(IcmpKind::EchoRequest);
        v.set_ident(77);
        v.set_seq(3);
        assert_eq!(v.kind(), IcmpKind::EchoRequest);
        assert_eq!(v.ident(), 77);
        assert_eq!(v.seq(), 3);
    }

    #[test]
    fn kind_numbers() {
        assert_eq!(IcmpKind::from(0), IcmpKind::EchoReply);
        assert_eq!(IcmpKind::from(8), IcmpKind::EchoRequest);
        assert_eq!(IcmpKind::from(3).number(), 3);
    }

    #[test]
    fn short_rejected() {
        assert!(IcmpView::new(&[0u8; 4][..]).is_err());
    }
}
