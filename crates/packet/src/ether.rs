//! Ethernet II header view.

use crate::{PacketError, Result};
use serde::{Deserialize, Serialize};

/// Length in bytes of an Ethernet II header (no VLAN tag).
pub const ETHER_HDR_LEN: usize = 14;

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-zero MAC address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);
    /// The broadcast MAC address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Builds a locally administered unicast MAC from a 32-bit host id,
    /// convenient for synthetic topologies.
    pub fn from_host_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// An Ethernet type code (big-endian on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP.
    pub const ARP: EtherType = EtherType(0x0806);
    /// IPv6 (recognized but not processed by the In-Net dataplane).
    pub const IPV6: EtherType = EtherType(0x86DD);
}

/// A typed view of an Ethernet II header over a byte buffer.
#[derive(Debug)]
pub struct EtherView<T> {
    buf: T,
}

impl<T: AsRef<[u8]>> EtherView<T> {
    /// Validates the buffer length and wraps it.
    pub fn new(buf: T) -> Result<Self> {
        let have = buf.as_ref().len();
        if have < ETHER_HDR_LEN {
            return Err(PacketError::Truncated {
                what: "Ethernet header",
                need: ETHER_HDR_LEN,
                have,
            });
        }
        Ok(EtherView { buf })
    }

    fn b(&self) -> &[u8] {
        self.buf.as_ref()
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        MacAddr(self.b()[0..6].try_into().expect("validated length"))
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        MacAddr(self.b()[6..12].try_into().expect("validated length"))
    }

    /// Ethernet type field.
    pub fn ethertype(&self) -> EtherType {
        EtherType(u16::from_be_bytes([self.b()[12], self.b()[13]]))
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EtherView<T> {
    /// Validates the buffer length and wraps it for mutation.
    pub fn new_mut(buf: T) -> Result<Self> {
        EtherView::new(buf)
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buf.as_mut()
    }

    /// Sets the destination MAC address.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.bm()[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC address.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.bm()[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the Ethernet type field.
    pub fn set_ethertype(&mut self, et: EtherType) {
        self.bm()[12..14].copy_from_slice(&et.0.to_be_bytes());
    }

    /// Swaps source and destination MACs (used when turning a packet around).
    pub fn swap_addrs(&mut self) {
        let (s, d) = (self.src(), self.dst());
        self.set_src(d);
        self.set_dst(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_too_short() {
        assert!(matches!(
            EtherView::new(&[0u8; 13][..]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; ETHER_HDR_LEN];
        let mut v = EtherView::new_mut(&mut buf[..]).unwrap();
        v.set_src(MacAddr::from_host_id(1));
        v.set_dst(MacAddr::from_host_id(2));
        v.set_ethertype(EtherType::IPV4);
        assert_eq!(v.src(), MacAddr::from_host_id(1));
        assert_eq!(v.dst(), MacAddr::from_host_id(2));
        assert_eq!(v.ethertype(), EtherType::IPV4);
    }

    #[test]
    fn swap_addrs_swaps() {
        let mut buf = [0u8; ETHER_HDR_LEN];
        let mut v = EtherView::new_mut(&mut buf[..]).unwrap();
        v.set_src(MacAddr::from_host_id(1));
        v.set_dst(MacAddr::from_host_id(2));
        v.swap_addrs();
        assert_eq!(v.src(), MacAddr::from_host_id(2));
        assert_eq!(v.dst(), MacAddr::from_host_id(1));
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }
}
