//! §6 headline numbers: VM density on a 128 GB server and the MAWI
//! backbone workload check.

use innet::experiments::sec6_capacity::{mawi_check, vm_density};
use innet_bench::Report;

fn main() {
    let mut r = Report::new("sec6_capacity_mawi", "§6: VM density and the MAWI workload");
    let d = vm_density(128);
    r.line(&format!(
        "128 GB server: {} Linux VMs vs {} ClickOS VMs \
         (paper: ~200 vs ~10,000)",
        d.linux_vms, d.clickos_vms
    ));
    r.blank();
    r.line("synthetic MAWI 15-minute traces (paper: 1,600–4,000 conns, 400–840 clients):");
    r.line(&format!(
        "{:>6} {:>12} {:>16} {:>16} {:>14}",
        "seed", "flows", "peak conns", "peak clients", "fits 1 platform"
    ));
    for seed in 0..5 {
        let (stats, fits) = mawi_check(seed);
        r.line(&format!(
            "{:>6} {:>12} {:>16} {:>16} {:>14}",
            seed,
            stats.total_connections,
            stats.max_active_connections,
            stats.max_active_clients,
            fits
        ));
    }
    r.finish();
}
