//! Native execution: running tenant Click graphs at full speed on host
//! threads and measuring real throughput.
//!
//! The paper's data-plane numbers (Figures 8, 11, 12) are measured, not
//! modelled; this module provides the measured equivalent on our runtime.
//! Absolute rates differ from the authors' 10 Gb/s testbed (our substrate
//! is an in-process ring, not a NIC), but the *shapes* — flat consolidation
//! until the demux scan bites, sandboxing hurting small packets most,
//! per-middlebox differences — emerge from the same mechanisms.

use std::net::Ipv4Addr;
use std::time::Instant;

use innet_click::{ClickConfig, Registry, Router, RouterError};
use innet_packet::{Packet, PacketPool};

use crate::engine::Engine;

/// Result of a timed native run.
#[derive(Debug, Clone, Copy)]
pub struct NativeStats {
    /// Packets pushed in.
    pub packets: u64,
    /// Packets transmitted out.
    pub transmitted: u64,
    /// Wall-clock nanoseconds elapsed.
    pub elapsed_ns: u64,
}

impl NativeStats {
    /// Input rate in packets/second; 0.0 when no time elapsed (a rate
    /// from a zero-length interval would otherwise be `inf`/`NaN`).
    pub fn pps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Throughput in Gbit/s assuming `frame_len`-byte frames.
    pub fn gbps(&self, frame_len: usize) -> f64 {
        self.pps() * frame_len as f64 * 8.0 / 1e9
    }
}

/// Shared-registry instruments for one native runner (see
/// [`RunnerConfig::metrics`](crate::RunnerConfig::metrics)).
#[derive(Debug, Clone)]
struct NativeMetrics {
    packets: innet_obs::Counter,
    transmitted: innet_obs::Counter,
    run_ns: innet_obs::Histogram,
}

/// A single-threaded native runner around one router instance (one
/// ClickOS VM pins its Click thread to one vCPU). Build one with
/// [`NativeRunner::new`] for the default profile, or
/// [`RunnerConfig::native`](crate::RunnerConfig::native) to set batch
/// size and metrics up front.
pub struct NativeRunner {
    engine: Engine,
    metrics: Option<NativeMetrics>,
    batch: usize,
    /// Per-runner buffer pool: round inputs are copies of the caller's
    /// packet set, and in non-collecting runs the transmitted buffers
    /// recycle straight back into the next round's copies.
    pool: PacketPool,
}

impl NativeRunner {
    /// Instantiates the configuration with the default execution
    /// profile (equivalent to `RunnerConfig::new().native(cfg)`).
    pub fn new(cfg: &ClickConfig) -> Result<NativeRunner, RouterError> {
        NativeRunner::with_config(cfg, crate::RunnerConfig::new())
    }

    /// Instantiates the configuration with an explicit profile; used by
    /// [`RunnerConfig::native`](crate::RunnerConfig::native).
    pub(crate) fn with_config(
        cfg: &ClickConfig,
        config: crate::RunnerConfig,
    ) -> Result<NativeRunner, RouterError> {
        let mut engine = Engine::build(cfg, &Registry::standard(), config.compiled)?;
        let metrics = config.metrics.as_ref().map(|registry| {
            engine.attach_metrics(registry);
            NativeMetrics {
                packets: registry.counter("innet_native_packets_total"),
                transmitted: registry.counter("innet_native_transmitted_total"),
                run_ns: registry.histogram("innet_native_run_ns"),
            }
        });
        Ok(NativeRunner {
            engine,
            metrics,
            batch: config.batch,
            pool: PacketPool::new(),
        })
    }

    /// Publishes this runner's counters into `registry` (Prometheus
    /// namespace `innet_native_*`): packets in, packets transmitted, and
    /// a wall-clock run-duration histogram. The inner router's counters
    /// are published too (`innet_click_*`). Only runs after attachment
    /// are counted.
    #[deprecated(
        since = "0.1.0",
        note = "configure metrics up front: RunnerConfig::new().metrics(&registry).native(&cfg)"
    )]
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.engine.attach_metrics(registry);
        self.metrics = Some(NativeMetrics {
            packets: registry.counter("innet_native_packets_total"),
            transmitted: registry.counter("innet_native_transmitted_total"),
            run_ns: registry.histogram("innet_native_run_ns"),
        });
    }

    /// Access to the underlying interpreted router (for `element_as`
    /// counter inspection). `None` in compiled mode: the plan consumed
    /// its element instances during lowering.
    pub fn router(&self) -> Option<&Router> {
        self.engine.router()
    }

    /// Whether this runner executes the compiled plan.
    pub fn is_compiled(&self) -> bool {
        self.engine.is_compiled()
    }

    /// The compiled plan's stage listing, when running compiled (used by
    /// the parallel example's marker and by tests asserting fusion).
    pub fn plan(&self) -> Option<Vec<String>> {
        self.engine.compiled().map(|c| c.describe())
    }

    /// Pushes the packet set through the graph `rounds` times, measuring
    /// wall-clock time. Virtual time advances by `1 µs` per packet so
    /// token buckets refill realistically. Packets move in
    /// [`RunnerConfig::batch`](crate::RunnerConfig::batch)-sized batches
    /// through the router's batched delivery path.
    pub fn run(&mut self, packets: &[Packet], rounds: usize) -> NativeStats {
        self.run_inner(packets, rounds, false).0
    }

    /// Like [`NativeRunner::run`], but also returns every transmitted
    /// `(egress, packet)` pair in transmission order — the reference
    /// output the parallel runner's differential tests compare against.
    pub fn run_collect(
        &mut self,
        packets: &[Packet],
        rounds: usize,
    ) -> (NativeStats, Vec<(u16, Packet)>) {
        self.run_inner(packets, rounds, true)
    }

    fn run_inner(
        &mut self,
        packets: &[Packet],
        rounds: usize,
        collect: bool,
    ) -> (NativeStats, Vec<(u16, Packet)>) {
        let batch = self.batch.max(1);
        let mut now_ns = 0u64;
        let mut transmitted = 0u64;
        let mut out: Vec<(u16, Packet)> = Vec::new();
        let start = Instant::now();
        for _ in 0..rounds {
            for chunk in packets.chunks(batch) {
                let copies: Vec<Packet> = chunk.iter().map(|p| self.pool.copy_of(p)).collect();
                self.engine.push_batch(copies, now_ns, 1_000);
                now_ns += 1_000 * chunk.len() as u64;
                let before = out.len();
                self.engine.take_tx_into(&mut out);
                transmitted += (out.len() - before) as u64;
                if !collect {
                    for (_, pkt) in out.drain(..) {
                        self.pool.recycle(pkt);
                    }
                }
            }
        }
        let stats = NativeStats {
            packets: (packets.len() * rounds) as u64,
            transmitted,
            elapsed_ns: start.elapsed().as_nanos().max(1) as u64,
        };
        if let Some(m) = &self.metrics {
            m.packets.add(stats.packets);
            m.transmitted.add(stats.transmitted);
            m.run_ns.observe(stats.elapsed_ns);
        }
        (stats, out)
    }
}

/// Builds the consolidated multi-tenant configuration of §5/Figure 8:
/// one `IPClassifier` demultiplexer with a `dst host` rule per client,
/// each output feeding that client's firewall, all re-multiplexed onto
/// the outgoing interface.
pub fn consolidated_config(clients: &[Ipv4Addr]) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("src", "FromNetfront", &[]);
    cfg.add_element("snk", "ToNetfront", &[]);
    let rules: Vec<String> = clients.iter().map(|a| format!("dst host {a}")).collect();
    let rule_refs: Vec<&str> = rules.iter().map(|s| s.as_str()).collect();
    cfg.add_element("demux", "IPClassifier", &rule_refs);
    cfg.connect("src", 0, "demux", 0);
    for (i, addr) in clients.iter().enumerate() {
        let udp = format!("allow udp dst host {addr}");
        let tcp = format!("allow tcp dst host {addr}");
        let fw = cfg.add_element(format!("fw{i}"), "IPFilter", &[&udp, &tcp]);
        cfg.connect("demux", i, &fw, 0);
        cfg.connect(&fw, 0, "snk", 0);
    }
    cfg
}

/// The middlebox configurations of the Figure 12 sweep. Returns `None`
/// for an unknown kind instead of panicking, so callers handling
/// externally supplied kind strings can fail gracefully.
pub fn middlebox_config(kind: &str) -> Option<ClickConfig> {
    let text = match kind {
        "nat" => "FromNetfront() -> [0]n :: IPNAT(203.0.113.1); n[0] -> ToNetfront();".to_string(),
        "iprouter" => "FromNetfront() -> CheckIPHeader() -> DecIPTTL() \
             -> r :: StaticIPLookup(0.0.0.0/0 0); r[0] -> ToNetfront();"
            .to_string(),
        "firewall" => {
            "FromNetfront() -> IPFilter(allow udp, allow tcp dst port 80) -> ToNetfront();"
                .to_string()
        }
        "flowmeter" => "FromNetfront() -> FlowMeter() -> ToNetfront();".to_string(),
        _ => return None,
    };
    Some(ClickConfig::parse(&text).expect("middlebox configs are valid"))
}

/// Builds a bidirectional NAT gateway: interface 0 faces the inside
/// network, interface 1 the outside, with `IPNAT(public)` between them.
///
/// Outbound packets (ingress 0) enter the NAT's inside port and leave
/// rewritten on interface 1; inbound packets (ingress 1) enter the
/// outside port and leave translated on interface 0. This is the
/// configuration the parallel runner's stateful differential tests
/// drive with interleaved forward and reverse traffic: both directions
/// of a connection must land on the same replica (the symmetric
/// dispatch hash guarantees it) for the reverse path to find its
/// mapping.
pub fn nat_gateway_config(public: Ipv4Addr) -> ClickConfig {
    ClickConfig::parse(&format!(
        "inside :: FromNetfront(0); outside :: FromNetfront(1); \
         nat :: IPNAT({public}); \
         inside -> [0]nat; outside -> [1]nat; \
         nat[0] -> ToNetfront(1); nat[1] -> ToNetfront(0);"
    ))
    .expect("valid literal config")
}

/// Builds a bidirectional stateful firewall: interface 0 inside,
/// interface 1 outside, allowing outbound UDP and TCP and only
/// *related* inbound traffic. Like [`nat_gateway_config`], this keeps
/// per-connection state only, so it shards under the symmetric hash.
pub fn stateful_firewall_config() -> ClickConfig {
    ClickConfig::parse(
        "inside :: FromNetfront(0); outside :: FromNetfront(1); \
         fw :: StatefulFirewall(allow udp, allow tcp); \
         inside -> [0]fw; outside -> [1]fw; \
         fw[0] -> ToNetfront(1); fw[1] -> ToNetfront(0);",
    )
    .expect("valid literal config")
}

/// Wraps the firewall with a `ChangeEnforcer` on the world→module (RX)
/// path, the direction the paper's Figure 11 measures: every received
/// packet pays the enforcer's implicit-authorization bookkeeping before
/// reaching the firewall.
pub fn sandboxed_firewall(module_addr: Ipv4Addr, whitelist: Ipv4Addr) -> ClickConfig {
    ClickConfig::parse(&format!(
        "FromNetfront() -> [0]enf :: ChangeEnforcer({module_addr}, {whitelist}); \
         enf[0] -> IPFilter(allow udp, allow tcp) -> ToNetfront();"
    ))
    .expect("valid literal config")
}

/// The plain firewall the sandboxed variant is compared against.
pub fn plain_firewall() -> ClickConfig {
    ClickConfig::parse("FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();")
        .expect("valid literal config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::{FlowKey, PacketBuilder};

    fn client_addrs(n: usize) -> Vec<Ipv4Addr> {
        (0..n)
            .map(|i| Ipv4Addr::new(203, 0, (113 + i / 250) as u8, (1 + i % 250) as u8))
            .collect()
    }

    #[test]
    fn consolidated_config_isolates_clients() {
        let clients = client_addrs(10);
        let cfg = consolidated_config(&clients);
        cfg.validate().unwrap();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        // Traffic to client 3 passes; to a stranger drops.
        let ok = PacketBuilder::udp().dst(clients[3], 80).build();
        let bad = PacketBuilder::udp()
            .dst(Ipv4Addr::new(9, 9, 9, 9), 80)
            .build();
        let stats = runner.run(&[ok, bad], 1);
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.transmitted, 1);
    }

    #[test]
    fn throughput_measurable() {
        let cfg = plain_firewall();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        let pkts: Vec<Packet> = (0..64)
            .map(|i| {
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(10, 0, 0, 1), i)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let stats = runner.run(&pkts, 50);
        assert_eq!(stats.transmitted, stats.packets);
        assert!(stats.pps() > 1000.0, "sane rate: {}", stats.pps());
    }

    #[test]
    fn sandbox_costs_throughput() {
        let module = Ipv4Addr::new(203, 0, 113, 10);
        let white = Ipv4Addr::new(198, 51, 100, 1);
        let pkts: Vec<Packet> = (0..64)
            .map(|i| {
                PacketBuilder::udp()
                    .src(
                        Ipv4Addr::new(8, 8, 8, (i % 250) as u8 + 1),
                        40_000 + i as u16,
                    )
                    .dst(module, 1500)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let mut plain = NativeRunner::new(&plain_firewall()).unwrap();
        let mut boxed = NativeRunner::new(&sandboxed_firewall(module, white)).unwrap();
        let p = plain.run(&pkts, 50);
        let b = boxed.run(&pkts, 50);
        // Functional: the sandboxed RX path forwards everything (inbound
        // traffic to the module is always allowed), it just costs more.
        assert_eq!(b.transmitted, b.packets);
        assert_eq!(p.transmitted, p.packets);
        // The cost *comparison* is measured by the Figure 11 bench in
        // release mode; asserting relative wall-clock times in a debug
        // test would be flaky.
    }

    #[test]
    fn zero_elapsed_stats_do_not_divide_by_zero() {
        // Regression: a zero-length interval used to yield pps() = inf
        // and gbps() = inf (or NaN for an empty run), which poisoned
        // downstream averages.
        let stats = NativeStats {
            packets: 100,
            transmitted: 100,
            elapsed_ns: 0,
        };
        assert_eq!(stats.pps(), 0.0);
        assert_eq!(stats.gbps(64), 0.0);
        let empty = NativeStats {
            packets: 0,
            transmitted: 0,
            elapsed_ns: 0,
        };
        assert!(empty.pps() == 0.0 && empty.gbps(64) == 0.0);
    }

    #[test]
    fn run_collect_returns_transmissions_in_order() {
        let cfg = plain_firewall();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        let pkts: Vec<Packet> = (0..5)
            .map(|i| {
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
                    .pad_to(64 + i as usize)
                    .build()
            })
            .collect();
        let (stats, out) = runner.run_collect(&pkts, 1);
        assert_eq!(stats.transmitted, 5);
        assert_eq!(out.len(), 5);
        for (i, (egress, pkt)) in out.iter().enumerate() {
            assert_eq!(*egress, 0);
            assert_eq!(pkt.len(), 64 + i);
        }
    }

    #[test]
    fn batched_run_matches_unbatched_counts() {
        let clients = client_addrs(4);
        let cfg = consolidated_config(&clients);
        let pkts: Vec<Packet> = (0..97)
            .map(|i| {
                PacketBuilder::udp()
                    .dst(clients[i % clients.len()], 80)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let mut unbatched = crate::RunnerConfig::new().batch(1).native(&cfg).unwrap();
        let mut batched = crate::RunnerConfig::new().batch(32).native(&cfg).unwrap();
        let a = unbatched.run(&pkts, 3);
        let b = batched.run(&pkts, 3);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.transmitted, b.transmitted);
    }

    #[test]
    fn nat_gateway_translates_both_directions() {
        let public = Ipv4Addr::new(203, 0, 113, 1);
        let cfg = nat_gateway_config(public);
        cfg.validate().unwrap();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        // Outbound from the inside network (ingress 0)...
        let out = PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 7), 5000)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build();
        let (_, tx) = runner.run_collect(&[out], 1);
        assert_eq!(tx.len(), 1);
        let (egress, rewritten) = &tx[0];
        assert_eq!(*egress, 1, "outbound leaves on the outside interface");
        let ip = rewritten.ipv4().unwrap();
        assert_eq!(ip.src(), public);
        // ...and the reply (ingress 1) translates back to the inside host.
        let mapped = FlowKey::of(rewritten).unwrap().src_port;
        let mut reply = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 53)
            .dst(public, mapped)
            .build();
        reply.meta.ingress = 1;
        let (_, tx) = runner.run_collect(&[reply], 1);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].0, 0, "inbound leaves on the inside interface");
        let ip = tx[0].1.ipv4().unwrap();
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 0, 0, 7));
    }

    #[test]
    fn stateful_firewall_blocks_unrelated_inbound() {
        let cfg = stateful_firewall_config();
        cfg.validate().unwrap();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        // Unsolicited inbound drops; after an outbound packet opens the
        // connection, the reverse direction passes.
        let mut unsolicited = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 53)
            .dst(Ipv4Addr::new(10, 0, 0, 7), 5000)
            .build();
        unsolicited.meta.ingress = 1;
        let stats = runner.run(&[unsolicited.clone()], 1);
        assert_eq!(stats.transmitted, 0);
        let outbound = PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 7), 5000)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build();
        let stats = runner.run(&[outbound], 1);
        assert_eq!(stats.transmitted, 1);
        let stats = runner.run(&[unsolicited], 1);
        assert_eq!(stats.transmitted, 1, "related inbound now passes");
    }

    #[test]
    fn middlebox_configs_run() {
        assert!(middlebox_config("frobnicator").is_none());
        for kind in ["nat", "iprouter", "firewall", "flowmeter"] {
            let cfg = middlebox_config(kind).unwrap();
            let mut runner = NativeRunner::new(&cfg).unwrap();
            let pkts = vec![PacketBuilder::udp().ttl(64).build()];
            let stats = runner.run(&pkts, 10);
            assert_eq!(stats.transmitted, 10, "{kind} forwards traffic");
        }
    }
}
