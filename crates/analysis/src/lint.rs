//! Structural lint rules over a Click configuration.
//!
//! Rule catalog (stable ids; see DESIGN.md §10):
//!
//! | id      | severity | meaning                                        |
//! |---------|----------|------------------------------------------------|
//! | IN-L001 | error    | duplicate element name                         |
//! | IN-L002 | error    | unknown element class                          |
//! | IN-L003 | error    | malformed element arguments                    |
//! | IN-L004 | error    | connection references an out-of-range port     |
//! | IN-L005 | error    | connection references an undeclared element    |
//! | IN-L006 | error    | one output port wired to several inputs        |
//! | IN-L007 | error    | dead output: a port wired to nothing           |
//! | IN-L008 | error    | element unreachable from any ingress           |
//! | IN-L009 | error    | combinational cycle containing no queue        |
//! | IN-L010 | warning  | wire into a source element (push/pull mismatch)|
//! | IN-L011 | warning  | dead classifier/filter rule (fully shadowed)   |
//!
//! Unwired *input* ports are deliberately not linted: elements such as
//! `IPRewriter` legitimately leave their reverse direction unused.

use std::collections::{HashMap, HashSet};

use innet_click::elements::{IPClassifier, IPFilter};
use innet_click::{ClickConfig, ElementSummary, PortCount, Registry, SummaryKind};
use innet_symnet::{pattern, SymPacket};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but deployable.
    Warning,
    /// The configuration is rejected.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `"IN-L004"`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// The element the finding is anchored to, if any.
    pub element: Option<String>,
    /// The port on that element, if the finding is port-specific.
    pub port: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        if let Some(el) = &self.element {
            write!(f, " {el}")?;
            if let Some(p) = self.port {
                write!(f, "[{p}]")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// The result of linting one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// All error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether some finding carries the given rule id.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Per-element facts resolved once and shared by several rules.
pub(crate) struct Resolved {
    /// Field-effect summary, if the class has one and the args parse.
    pub(crate) summary: Option<ElementSummary>,
    /// Port signature, if resolvable at all.
    pub(crate) ports: Option<PortCount>,
}

/// Runs every lint rule over `cfg`.
///
/// Works on arbitrary configurations, including ones
/// [`ClickConfig::validate`] would reject — lint is the friendlier
/// diagnostic layer in front of validation, so builder-constructed
/// configurations get precise findings too.
pub fn lint(cfg: &ClickConfig, registry: &Registry) -> LintReport {
    let mut report = LintReport::default();
    let mut push = |rule: &'static str,
                    severity: Severity,
                    element: Option<&str>,
                    port: Option<usize>,
                    message: String| {
        report.diagnostics.push(Diagnostic {
            rule,
            severity,
            element: element.map(str::to_string),
            port,
            message,
        });
    };

    // IN-L001: duplicate names.
    let mut seen = HashSet::new();
    for e in &cfg.elements {
        if !seen.insert(e.name.as_str()) {
            push(
                "IN-L001",
                Severity::Error,
                Some(&e.name),
                None,
                format!("element name `{}` declared more than once", e.name),
            );
        }
    }

    // IN-L002/IN-L003: class and argument checks; resolve summaries.
    let mut resolved: Vec<Resolved> = Vec::with_capacity(cfg.elements.len());
    for e in &cfg.elements {
        let known = registry.knows(&e.class) || registry.has_summary(&e.class);
        if !known {
            push(
                "IN-L002",
                Severity::Error,
                Some(&e.name),
                None,
                format!("unknown element class `{}`", e.class),
            );
            resolved.push(Resolved {
                summary: None,
                ports: None,
            });
            continue;
        }
        // Prefer the summary (it shares argument validation with the
        // constructor and also covers the Stock* pseudo-classes).
        let outcome = if registry.has_summary(&e.class) {
            registry.summary(&e.class, &e.args).map(|s| {
                let ports = s.ports;
                Resolved {
                    summary: Some(s),
                    ports: Some(ports),
                }
            })
        } else {
            registry.instantiate(&e.class, &e.args).map(|el| Resolved {
                summary: None,
                ports: Some(el.ports()),
            })
        };
        match outcome {
            Ok(r) => resolved.push(r),
            Err(err) => {
                push(
                    "IN-L003",
                    Severity::Error,
                    Some(&e.name),
                    None,
                    format!("bad arguments for `{}`: {err}", e.class),
                );
                resolved.push(Resolved {
                    summary: None,
                    ports: None,
                });
            }
        }
    }

    let index: HashMap<&str, usize> = cfg
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();

    // IN-L004/IN-L005: port arity and dangling references.
    for c in &cfg.connections {
        for (pr, is_input) in [(&c.from, false), (&c.to, true)] {
            let Some(&idx) = index.get(pr.element.as_str()) else {
                push(
                    "IN-L005",
                    Severity::Error,
                    Some(&pr.element),
                    Some(pr.port),
                    format!("connection references undeclared element `{}`", pr.element),
                );
                continue;
            };
            let Some(ports) = resolved[idx].ports else {
                continue; // Already diagnosed via IN-L002/IN-L003.
            };
            let (limit, kind) = if is_input {
                (ports.inputs, "input")
            } else {
                (ports.outputs, "output")
            };
            if pr.port >= limit {
                push(
                    "IN-L004",
                    Severity::Error,
                    Some(&pr.element),
                    Some(pr.port),
                    format!(
                        "`{}` has {limit} {kind} port(s) but port {} is wired",
                        pr.element, pr.port
                    ),
                );
            }
        }
    }

    // IN-L006: output fanout.
    let mut out_uses: HashMap<(&str, usize), usize> = HashMap::new();
    for c in &cfg.connections {
        *out_uses
            .entry((c.from.element.as_str(), c.from.port))
            .or_default() += 1;
    }
    let mut fanouts: Vec<_> = out_uses.iter().filter(|(_, &n)| n > 1).collect();
    fanouts.sort();
    for (&(el, port), &n) in fanouts {
        push(
            "IN-L006",
            Severity::Error,
            Some(el),
            Some(port),
            format!("output `{el}`[{port}] is wired to {n} inputs (push fanout needs a Tee)"),
        );
    }

    // IN-L007: dead outputs. Sink-kind elements (Idle) are exempt — their
    // declared output never emits.
    for (i, e) in cfg.elements.iter().enumerate() {
        let Some(ports) = resolved[i].ports else {
            continue;
        };
        if matches!(
            resolved[i].summary.as_ref().map(|s| &s.kind),
            Some(SummaryKind::Sink)
        ) {
            continue;
        }
        for p in 0..ports.outputs {
            if !out_uses.contains_key(&(e.name.as_str(), p)) {
                push(
                    "IN-L007",
                    Severity::Error,
                    Some(&e.name),
                    Some(p),
                    format!(
                        "output `{}`[{p}] is wired to nothing: packets vanish",
                        e.name
                    ),
                );
            }
        }
    }

    // IN-L008: reachability from the ingress set (mirrors the verifier's
    // entry selection: every FromNetfront/FromDevice, else the first
    // element).
    if !cfg.elements.is_empty() {
        let mut entries: Vec<usize> = cfg
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.class == "FromNetfront" || e.class == "FromDevice")
            .map(|(i, _)| i)
            .collect();
        if entries.is_empty() {
            entries.push(0);
        }
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for c in &cfg.connections {
            if let (Some(&f), Some(&t)) = (
                index.get(c.from.element.as_str()),
                index.get(c.to.element.as_str()),
            ) {
                adj.entry(f).or_default().push(t);
            }
        }
        let mut reached = HashSet::new();
        let mut stack = entries;
        while let Some(i) = stack.pop() {
            if reached.insert(i) {
                if let Some(next) = adj.get(&i) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        for (i, e) in cfg.elements.iter().enumerate() {
            if !reached.contains(&i) {
                push(
                    "IN-L008",
                    Severity::Error,
                    Some(&e.name),
                    None,
                    format!("element `{}` is unreachable from any ingress", e.name),
                );
            }
        }
    }

    // IN-L009: a combinational cycle with no queue-like element anywhere
    // on it. Equivalently: a cycle in the flow-pair graph restricted to
    // non-queue elements.
    let adj = flow_pair_adjacency(cfg, &resolved, &index, true);
    if let Some((e, _)) = find_cycle(&adj) {
        push(
            "IN-L009",
            Severity::Error,
            Some(&cfg.elements[e].name),
            None,
            format!(
                "element `{}` sits on a cycle with no queue element: packets loop forever",
                cfg.elements[e].name
            ),
        );
    }

    // IN-L010: wiring into a source element's input.
    for c in &cfg.connections {
        if let Some(&t) = index.get(c.to.element.as_str()) {
            let class = cfg.elements[t].class.as_str();
            if class == "FromNetfront" || class == "FromDevice" {
                push(
                    "IN-L010",
                    Severity::Warning,
                    Some(&c.to.element),
                    Some(c.to.port),
                    format!(
                        "`{}` is a source; wiring `{}` into it mismatches push/pull",
                        c.to.element, c.from.element
                    ),
                );
            }
        }
    }

    // IN-L011: dead classifier/filter rules. `IPFilter` and
    // `IPClassifier` match first-hit, so a rule whose match set is fully
    // covered by the rules before it can never fire. Decided exactly
    // against the symbolic pattern semantics (RangeSet intersection
    // underneath): walk the rules in order, carrying the branch set of
    // packets *not* matched by any earlier rule; rule `i` is dead when no
    // carried branch can still satisfy it. The warning names the shortest
    // shadowing prefix. If refutation fragments the branch set past a
    // small cap, the element is skipped (conservative: no warning).
    const SHADOW_BRANCH_CAP: usize = 64;
    for e in &cfg.elements {
        // A single rule cannot be shadowed; skip before paying for
        // element instantiation or any symbolic work (lint runs on every
        // admission, and one-rule filters are the common case).
        if e.args.len() < 2 || !matches!(e.class.as_str(), "IPFilter" | "IPClassifier") {
            continue;
        }
        let rules: Vec<_> = match e.class.as_str() {
            "IPFilter" => {
                let Ok(el) = registry.instantiate(&e.class, &e.args) else {
                    continue; // Diagnosed via IN-L003.
                };
                let Some(f) = el.as_any().downcast_ref::<IPFilter>() else {
                    continue;
                };
                f.rules().iter().map(|(_, x)| x.clone()).collect()
            }
            "IPClassifier" => {
                let Ok(el) = registry.instantiate(&e.class, &e.args) else {
                    continue;
                };
                let Some(c) = el.as_any().downcast_ref::<IPClassifier>() else {
                    continue;
                };
                c.rules().to_vec()
            }
            _ => continue,
        };
        let mut remaining = vec![SymPacket::unconstrained()];
        for (ri, rule) in rules.iter().enumerate() {
            if remaining.iter().any(|p| pattern::satisfiable(p, rule)) {
                // Still matchable: remove its match set before looking at
                // the rules after it.
                let next: Vec<SymPacket> = remaining
                    .iter()
                    .flat_map(|p| pattern::refute(p, rule))
                    .collect();
                if next.len() > SHADOW_BRANCH_CAP {
                    break;
                }
                remaining = next;
                continue;
            }
            // Dead. Find the shortest prefix that already covers it by
            // replaying refutation from scratch.
            let mut probe = vec![SymPacket::unconstrained()];
            let mut shadow = ri.saturating_sub(1);
            for (rj, prev) in rules[..ri].iter().enumerate() {
                probe = probe
                    .iter()
                    .flat_map(|p| pattern::refute(p, prev))
                    .collect();
                if !probe.iter().any(|p| pattern::satisfiable(p, rule)) {
                    shadow = rj;
                    break;
                }
            }
            let text = e.args.get(ri).cloned().unwrap_or_else(|| format!("#{ri}"));
            push(
                "IN-L011",
                Severity::Warning,
                Some(&e.name),
                None,
                format!(
                    "`{}` rule {ri} (`{text}`) can never match: \
                     fully shadowed by rules 0..={shadow}",
                    e.class
                ),
            );
            // A dead rule matches nothing, so `remaining` is unchanged.
        }
    }

    report
}

/// Adjacency of the flow-pair graph: node `(element, in_port)` has an
/// edge to `(target, target_in_port)` when some flow of the element
/// forwards from `in_port` to an output wired to the target.
///
/// With `skip_queue_like`, queue-like elements are removed entirely (used
/// by the queueless-cycle rule: a cycle in the remaining graph is a cycle
/// containing no queue).
pub(crate) fn flow_pair_adjacency(
    cfg: &ClickConfig,
    resolved: &[Resolved],
    index: &HashMap<&str, usize>,
    skip_queue_like: bool,
) -> HashMap<(usize, usize), Vec<(usize, usize)>> {
    let mut wires: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for c in &cfg.connections {
        if let (Some(&f), Some(&t)) = (
            index.get(c.from.element.as_str()),
            index.get(c.to.element.as_str()),
        ) {
            // On fanout (invalid, diagnosed separately) the last wire
            // wins; cycle detection stays conservative either way.
            wires.insert((f, c.from.port), (t, c.to.port));
        }
    }
    let mut adj: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (i, r) in resolved.iter().enumerate() {
        let pairs: Vec<(usize, usize)> = match &r.summary {
            Some(s) => {
                if skip_queue_like && s.queue_like {
                    continue;
                }
                match &s.kind {
                    SummaryKind::Flows(flows) => {
                        flows.iter().map(|f| (f.in_port, f.out_port)).collect()
                    }
                    SummaryKind::Egress | SummaryKind::Sink => Vec::new(),
                }
            }
            None => match r.ports {
                // No summary: conservatively assume every input can reach
                // every output.
                Some(p) => (0..p.inputs)
                    .flat_map(|ip| (0..p.outputs).map(move |op| (ip, op)))
                    .collect(),
                None => Vec::new(),
            },
        };
        for (ip, op) in pairs {
            if let Some(&(t, tin)) = wires.get(&(i, op)) {
                if skip_queue_like {
                    if let Some(s) = &resolved[t].summary {
                        if s.queue_like {
                            continue;
                        }
                    }
                }
                adj.entry((i, ip)).or_default().push((t, tin));
            }
        }
    }
    adj
}

/// Finds any node on a directed cycle, or `None` if the graph is acyclic.
pub(crate) fn find_cycle(
    adj: &HashMap<(usize, usize), Vec<(usize, usize)>>,
) -> Option<(usize, usize)> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<(usize, usize), Color> = HashMap::new();
    let mut roots: Vec<_> = adj.keys().copied().collect();
    roots.sort();
    for root in roots {
        if *color.get(&root).unwrap_or(&Color::White) != Color::White {
            continue;
        }
        // Iterative DFS with an explicit edge-cursor stack.
        let mut stack: Vec<((usize, usize), usize)> = vec![(root, 0)];
        color.insert(root, Color::Gray);
        while let Some(&(node, next)) = stack.last() {
            let succs = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let s = succs[next];
                match *color.get(&s).unwrap_or(&Color::White) {
                    Color::White => {
                        color.insert(s, Color::Gray);
                        stack.push((s, 0));
                    }
                    Color::Gray => return Some(s),
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    None
}
