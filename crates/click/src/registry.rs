//! The element registry: class name → constructor.
//!
//! The registry is the boundary that makes static analysis possible: a
//! configuration is only instantiable if every class it names is registered,
//! and every registered class has an abstract model in `innet-symnet`.

use std::collections::BTreeMap;

use crate::{
    args::ConfigArgs,
    element::{Element, ElementError},
    elements::{self as el},
};

use crate::summary::{ElementSummary, Shardability, SummaryCtor};

type Ctor = fn(&ConfigArgs) -> Result<Box<dyn Element>, ElementError>;

/// A table of known element classes.
pub struct Registry {
    ctors: BTreeMap<&'static str, Ctor>,
    summaries: BTreeMap<&'static str, SummaryCtor>,
}

macro_rules! ctor {
    ($ty:ty, from_args) => {
        |args: &ConfigArgs| -> Result<Box<dyn Element>, ElementError> {
            Ok(Box::new(<$ty>::from_args(args)?))
        }
    };
    ($ty:ty, no_args) => {
        |args: &ConfigArgs| -> Result<Box<dyn Element>, ElementError> {
            args.expect_len(0)?;
            Ok(Box::new(<$ty>::default()))
        }
    };
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry {
            ctors: BTreeMap::new(),
            summaries: BTreeMap::new(),
        }
    }

    /// The standard In-Net element library.
    pub fn standard() -> Registry {
        let mut r = Registry::empty();

        // Sources, sinks.
        r.register("FromNetfront", ctor!(el::FromNetfront, from_args));
        r.register("ToNetfront", ctor!(el::ToNetfront, from_args));
        // Device aliases (Click configurations often use these names).
        r.register("FromDevice", ctor!(el::FromNetfront, from_args));
        r.register("ToDevice", ctor!(el::ToNetfront, from_args));
        r.register("Discard", ctor!(el::Discard, no_args));
        r.register("Idle", ctor!(el::Idle, no_args));

        // Classification and filtering.
        r.register("Classifier", ctor!(el::Classifier, from_args));
        r.register("IPClassifier", ctor!(el::IPClassifier, from_args));
        r.register("IPFilter", ctor!(el::IPFilter, from_args));

        // Header manipulation.
        r.register("CheckIPHeader", ctor!(el::CheckIPHeader, no_args));
        r.register("MarkIPHeader", ctor!(el::MarkIPHeader, from_args));
        r.register("DecIPTTL", ctor!(el::DecIPTTL, no_args));
        r.register("SetIPSrc", ctor!(el::SetIPSrc, from_args));
        r.register("SetIPDst", ctor!(el::SetIPDst, from_args));
        r.register("SetTOS", ctor!(el::SetTOS, from_args));
        r.register("Strip", ctor!(el::Strip, from_args));
        r.register("EtherEncap", ctor!(el::EtherEncap, from_args));

        // Measurement.
        r.register("Counter", ctor!(el::Counter, no_args));
        r.register("FlowMeter", ctor!(el::FlowMeter, no_args));

        // Shaping and queueing.
        r.register("RateLimiter", ctor!(el::RateLimiter, from_args));
        r.register("BandwidthShaper", ctor!(el::BandwidthShaper, from_args));
        r.register("Queue", ctor!(el::Queue, from_args));
        r.register("TimedUnqueue", ctor!(el::TimedUnqueue, from_args));

        // Stateful middleboxes.
        r.register("StatefulFirewall", ctor!(el::StatefulFirewall, from_args));
        r.register("IPNAT", ctor!(el::IpNat, from_args));
        r.register("IPRewriter", ctor!(el::IPRewriter, from_args));
        r.register("TransparentProxy", ctor!(el::TransparentProxy, from_args));

        // Tunnels.
        r.register("UDPTunnelEncap", ctor!(el::UdpTunnelEncap, from_args));
        r.register("UDPTunnelDecap", ctor!(el::UdpTunnelDecap, no_args));
        r.register("IPEncap", ctor!(el::IpEncap, from_args));
        r.register("IPDecap", ctor!(el::IpDecap, no_args));

        // Scheduling and annotations.
        r.register("RoundRobinSwitch", ctor!(el::RoundRobinSwitch, from_args));
        r.register("RandomSwitch", ctor!(el::RandomSwitch, from_args));
        r.register("Meter", ctor!(el::Meter, from_args));
        r.register("Paint", ctor!(el::Paint, from_args));
        r.register("CheckPaint", ctor!(el::CheckPaint, from_args));

        // Duplication, inspection, responders.
        r.register("Tee", ctor!(el::Tee, from_args));
        r.register("IPMulticast", ctor!(el::IpMulticast, from_args));
        r.register("DPI", ctor!(el::Dpi, from_args));
        r.register("ICMPPingResponder", ctor!(el::IcmpPingResponder, no_args));
        r.register("StaticIPLookup", ctor!(el::StaticIPLookup, from_args));

        // Sandboxing.
        r.register("ChangeEnforcer", ctor!(el::ChangeEnforcer, from_args));

        // Field-effect summaries for the static analyzer (covers every
        // class above plus the controller's Stock* pseudo-classes).
        crate::summary::register_standard(&mut r);

        r
    }

    /// Registers (or replaces) a class constructor.
    pub fn register(&mut self, class: &'static str, ctor: Ctor) {
        self.ctors.insert(class, ctor);
    }

    /// Registers (or replaces) a class field-effect summary.
    pub fn register_summary(&mut self, class: &'static str, ctor: SummaryCtor) {
        self.summaries.insert(class, ctor);
    }

    /// Whether a class has a field-effect summary (this includes the
    /// `Stock*` pseudo-classes, which have no Click constructor).
    pub fn has_summary(&self, class: &str) -> bool {
        self.summaries.contains_key(class)
    }

    /// Builds the field-effect summary of a configured element,
    /// validating its arguments the same way instantiation does.
    pub fn summary(&self, class: &str, args: &[String]) -> Result<ElementSummary, ElementError> {
        let Some(ctor) = self.summaries.get(class) else {
            return Err(ElementError::UnknownClass(class.to_string()));
        };
        ctor(args)
    }

    /// Whether a class is known.
    pub fn knows(&self, class: &str) -> bool {
        self.ctors.contains_key(class)
    }

    /// The configuration-level [`Shardability`] verdict: the lattice
    /// join (`max`) of every element's verdict.
    ///
    /// Elements whose summary cannot be built (unknown class, bad
    /// arguments) count as [`Shardability::Global`]: an element we
    /// cannot model is an element we must not replicate. Parallel
    /// runners use this verdict three ways — `Stateless` configs shard
    /// under the directed flow hash, `FlowPartitionable` configs shard
    /// under the symmetric (connection-pinning) hash, and `Global`
    /// configs degrade to a single worker rather than silently
    /// misbehave.
    pub fn config_shardability(&self, cfg: &crate::config::ClickConfig) -> Shardability {
        cfg.elements
            .iter()
            .map(|decl| {
                self.summary(&decl.class, &decl.args)
                    .map(|s| s.shardability)
                    .unwrap_or(Shardability::Global)
            })
            .max()
            .unwrap_or(Shardability::Stateless)
    }

    /// Whether a configuration can be replicated across flow-sharded
    /// workers without changing its forwarding behavior (its
    /// [`Registry::config_shardability`] verdict is not `Global`).
    pub fn config_shardable(&self, cfg: &crate::config::ClickConfig) -> bool {
        self.config_shardability(cfg) != Shardability::Global
    }

    /// All registered class names, sorted.
    pub fn classes(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.ctors.keys().copied()
    }

    /// Instantiates an element.
    pub fn instantiate(
        &self,
        class: &str,
        args: &[String],
    ) -> Result<Box<dyn Element>, ElementError> {
        let Some((name, ctor)) = self.ctors.get_key_value(class) else {
            return Err(ElementError::UnknownClass(class.to_string()));
        };
        ctor(&ConfigArgs::new(name, args))
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("classes", &self.ctors.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_core_classes() {
        let r = Registry::standard();
        for class in [
            "FromNetfront",
            "ToNetfront",
            "IPFilter",
            "IPClassifier",
            "IPRewriter",
            "TimedUnqueue",
            "StatefulFirewall",
            "IPNAT",
            "ChangeEnforcer",
            "DPI",
            "StaticIPLookup",
        ] {
            assert!(r.knows(class), "{class} missing");
        }
        assert!(!r.knows("FluxCapacitor"));
    }

    #[test]
    fn instantiate_unknown_fails() {
        let r = Registry::standard();
        assert!(matches!(
            r.instantiate("Nope", &[]),
            Err(ElementError::UnknownClass(_))
        ));
    }

    #[test]
    fn instantiate_all_defaults() {
        // Every no-arg class instantiates without arguments.
        let r = Registry::standard();
        for class in [
            "Discard",
            "Idle",
            "CheckIPHeader",
            "DecIPTTL",
            "Counter",
            "FlowMeter",
            "UDPTunnelDecap",
            "IPDecap",
            "ICMPPingResponder",
        ] {
            assert!(r.instantiate(class, &[]).is_ok(), "{class}");
        }
    }

    #[test]
    fn no_arg_classes_reject_args() {
        let r = Registry::standard();
        assert!(r.instantiate("Discard", &["x".to_string()]).is_err());
    }

    #[test]
    fn config_shardable_verdicts() {
        use crate::config::ClickConfig;
        let r = Registry::standard();
        let stateless = ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp) -> Counter() -> ToNetfront();",
        )
        .unwrap();
        assert_eq!(r.config_shardability(&stateless), Shardability::Stateless);
        assert!(r.config_shardable(&stateless));

        // Per-connection state shards under symmetric dispatch; the
        // verdict is the join, so one NAT upgrades a stateless pipeline.
        let nat = ClickConfig::parse("FromNetfront() -> IPNAT(5.5.5.5) -> ToNetfront();").unwrap();
        assert_eq!(r.config_shardability(&nat), Shardability::FlowPartitionable);
        assert!(r.config_shardable(&nat));

        // A queue decouples timing from arrival across all flows: not
        // shardable at all.
        let queued = ClickConfig::parse("FromNetfront() -> Queue(16) -> ToNetfront();").unwrap();
        assert_eq!(r.config_shardability(&queued), Shardability::Global);
        assert!(!r.config_shardable(&queued));

        // A Global element poisons an otherwise flow-partitionable
        // config.
        let mixed =
            ClickConfig::parse("FromNetfront() -> IPNAT(5.5.5.5) -> Queue(16) -> ToNetfront();")
                .unwrap();
        assert_eq!(r.config_shardability(&mixed), Shardability::Global);
    }

    #[test]
    fn class_count_is_substantial() {
        // The paper's claim rests on a broad library of known elements.
        assert!(Registry::standard().classes().count() >= 35);
    }
}
