//! Stock processing modules (paper §4.1).
//!
//! Stock modules are expressed as tiny Click configurations around
//! `Stock*` pseudo-elements with hand-written abstract models in
//! `innet-symnet`. The address argument is the module's assigned address,
//! so the configurations can only be produced once the controller has
//! allocated one.

use innet_click::ClickConfig;
use std::net::Ipv4Addr;

use crate::request::StockModule;

/// Builds the Click-level configuration of a stock module, parameterized
/// by the address the controller assigned to it. Built with the
/// programmatic builder, so it is infallible — no parse step, no panic.
pub fn stock_config(kind: StockModule, assigned: Ipv4Addr) -> ClickConfig {
    let addr = assigned.to_string();
    let (name, class, args): (&str, &str, Vec<&str>) = match kind {
        StockModule::ReverseHttpProxy => ("srv", "StockReverseProxy", vec![addr.as_str()]),
        StockModule::ExplicitProxy => ("srv", "StockExplicitProxy", vec![addr.as_str()]),
        StockModule::GeoDns => ("srv", "StockDNSServer", vec![addr.as_str()]),
        StockModule::X86Vm => ("vm", "StockX86VM", Vec::new()),
    };
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element(name, class, &args);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, name, 0);
    cfg.connect(name, 0, "out", 0);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_symnet::{check_module, RequesterClass, SecurityContext, Verdict};

    fn check(kind: StockModule, class: RequesterClass) -> Verdict {
        let assigned = Ipv4Addr::new(203, 0, 113, 10);
        let cfg = stock_config(kind, assigned);
        check_module(
            &cfg,
            &SecurityContext {
                assigned_addr: assigned,
                registered: vec![Ipv4Addr::new(198, 51, 100, 1)],
                class,
            },
            &innet_click::Registry::standard(),
        )
        .unwrap()
        .verdict
    }

    #[test]
    fn reverse_proxy_safe_everywhere() {
        assert_eq!(
            check(StockModule::ReverseHttpProxy, RequesterClass::ThirdParty),
            Verdict::Safe
        );
        assert_eq!(
            check(StockModule::ReverseHttpProxy, RequesterClass::Client),
            Verdict::Safe
        );
    }

    #[test]
    fn dns_safe_everywhere() {
        assert_eq!(
            check(StockModule::GeoDns, RequesterClass::ThirdParty),
            Verdict::Safe
        );
    }

    #[test]
    fn explicit_proxy_by_class() {
        // An explicit proxy originates connections to request-chosen
        // destinations: fine for a client (§2.1 "such customers can also
        // deploy explicit proxies"), sandbox-worthy for a third party.
        assert_eq!(
            check(StockModule::ExplicitProxy, RequesterClass::Client),
            Verdict::Safe
        );
        assert_eq!(
            check(StockModule::ExplicitProxy, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
    }

    #[test]
    fn x86_always_sandboxed_for_tenants() {
        assert_eq!(
            check(StockModule::X86Vm, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
        assert_eq!(
            check(StockModule::X86Vm, RequesterClass::Client),
            Verdict::SafeWithSandbox
        );
    }
}
