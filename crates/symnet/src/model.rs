//! The symbolic graph and execution engine.
//!
//! A [`SymGraph`] mirrors the structure of a concrete `innet_click::Router`:
//! nodes carry abstract models instead of packet-processing code, and the
//! engine pushes *symbolic* packets through the edges, splitting them at
//! every branch. The models obey the restrictions the paper imposes for
//! tractability (§4.3): no loops, no dynamic allocation, and middlebox flow
//! state pushed into the flow itself.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::packet::SymPacket;

/// Result of one model step: where each symbolic branch goes next.
#[derive(Debug)]
pub enum SymOut {
    /// Continue on a numbered output port.
    Port(usize, SymPacket),
    /// Leave the graph through a numbered egress interface.
    Egress(u16, SymPacket),
}

/// An abstract model of one processing node.
pub trait SymElement: Send + Sync {
    /// Model name (class name for Click-derived models).
    fn model_name(&self) -> &'static str;

    /// Executes the model on one symbolic packet, producing zero or more
    /// branch continuations. Implementations must not loop internally.
    fn exec(&self, in_port: usize, pkt: SymPacket) -> Vec<SymOut>;

    /// Whether this model is *chain-safe*: stateless in the symbolic
    /// sense, single-input (reads only port 0), emits only on port 0 or
    /// egress, never manipulates header layers, and is substitution-exact
    /// — its behaviour on any constrain-only restriction of the
    /// unconstrained packet equals the restriction of its behaviour on
    /// the unconstrained packet. Chain-safe models may be summarized by
    /// [`crate::summary::summarize_element`] and replayed from a memoized
    /// [`crate::summary::SymSummary`] instead of being re-executed.
    /// Defaults to `false`; only models audited for the above contract
    /// opt in.
    fn chain_safe(&self) -> bool {
        false
    }
}

/// Errors produced while building or executing a symbolic graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymError {
    /// No abstract model exists for an element class; the configuration
    /// cannot be verified and must be rejected (or sandboxed as an opaque
    /// module).
    NoModel(String),
    /// The underlying configuration failed to parse or validate.
    Config(String),
    /// A referenced node does not exist.
    UnknownNode(String),
}

impl std::fmt::Display for SymError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymError::NoModel(c) => write!(f, "no abstract model for class '{c}'"),
            SymError::Config(m) => write!(f, "configuration error: {m}"),
            SymError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
        }
    }
}

impl std::error::Error for SymError {}

/// What the engine records while running.
#[derive(Debug, Clone)]
pub enum Observe {
    /// Record only flows that leave through an egress interface.
    EgressOnly,
    /// Record egress flows plus arrivals at the given node indices.
    Nodes(HashSet<usize>),
    /// Record arrivals everywhere (small graphs only — quadratic in path
    /// length).
    All,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Global bound on model executions (branch hops); exceeding it sets
    /// `truncated` on the result instead of running forever.
    pub max_hops: usize,
    /// Per-branch bound on visits to the same node: a symbolic flow that
    /// re-enters a node more than this many times is circulating (e.g. a
    /// responder whose answers re-enter the platform) and is cut off.
    /// Legitimate request/response paths visit a node at most a handful
    /// of times; SymNet's tractability rests on loop-free exploration.
    pub max_node_visits: usize,
    /// Observation policy.
    pub observe: Observe,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_hops: 100_000,
            max_node_visits: 6,
            observe: Observe::EgressOnly,
        }
    }
}

/// The outcome of a symbolic run.
#[derive(Debug, Default)]
pub struct ExecResult {
    /// Flows that left the graph, with the egress interface.
    pub egress: Vec<(u16, SymPacket)>,
    /// Flow snapshots observed arriving at watched nodes.
    pub observations: Vec<(usize, SymPacket)>,
    /// Total model executions performed.
    pub hops: u64,
    /// True when `max_hops` stopped the run early.
    pub truncated: bool,
    /// Times the global `max_hops` bound stopped the run (0 or 1).
    pub hop_cap_hits: u64,
    /// Branches cut by the per-node `max_node_visits` bound.
    pub visit_cap_hits: u64,
}

/// A graph of symbolic models.
pub struct SymGraph {
    nodes: Vec<Arc<dyn SymElement>>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// `(node, out_port) -> (node, in_port)`.
    edges: HashMap<(usize, usize), (usize, usize)>,
}

impl SymGraph {
    /// An empty graph.
    pub fn new() -> SymGraph {
        SymGraph {
            nodes: Vec::new(),
            names: Vec::new(),
            index: HashMap::new(),
            edges: HashMap::new(),
        }
    }

    /// Adds a node, returning its index. Duplicate names are rejected.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn SymElement>,
    ) -> Result<usize, SymError> {
        self.add_shared(name, Arc::from(model))
    }

    /// Adds a node holding a shared model instance (see
    /// [`crate::ModelCache`]), returning its index. Duplicate names are
    /// rejected.
    pub fn add_shared(
        &mut self,
        name: impl Into<String>,
        model: Arc<dyn SymElement>,
    ) -> Result<usize, SymError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(SymError::Config(format!("duplicate node '{name}'")));
        }
        let idx = self.nodes.len();
        self.index.insert(name.clone(), idx);
        self.names.push(name);
        self.nodes.push(model);
        Ok(idx)
    }

    /// Connects `[from_port]from -> [to_port]to` by node index.
    pub fn connect(&mut self, from: usize, from_port: usize, to: usize, to_port: usize) {
        self.edges.insert((from, from_port), (to, to_port));
    }

    /// Connects nodes by name.
    pub fn connect_names(
        &mut self,
        from: &str,
        from_port: usize,
        to: &str,
        to_port: usize,
    ) -> Result<(), SymError> {
        let f = self.node_index(from)?;
        let t = self.node_index(to)?;
        self.connect(f, from_port, t, to_port);
        Ok(())
    }

    /// Index of a named node.
    pub fn node_index(&self, name: &str) -> Result<usize, SymError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| SymError::UnknownNode(name.to_string()))
    }

    /// Name of a node index.
    pub fn node_name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The model attached to a node index.
    pub fn model(&self, idx: usize) -> &dyn SymElement {
        self.nodes[idx].as_ref()
    }

    /// The edge leaving `(node, out_port)`, as `(to, to_port)`.
    pub fn edge_target(&self, node: usize, out_port: usize) -> Option<(usize, usize)> {
        self.edges.get(&(node, out_port)).copied()
    }

    /// Every edge leaving `node`, as `(from_port, to, to_port)`.
    pub fn out_edges(&self, node: usize) -> Vec<(usize, usize, usize)> {
        let mut v: Vec<(usize, usize, usize)> = self
            .edges
            .iter()
            .filter(|((from, _), _)| *from == node)
            .map(|(&(_, fp), &(to, tp))| (fp, to, tp))
            .collect();
        v.sort_unstable();
        v
    }

    /// Every edge entering `node`, as `(from, from_port, to_port)`.
    pub fn in_edges(&self, node: usize) -> Vec<(usize, usize, usize)> {
        let mut v: Vec<(usize, usize, usize)> = self
            .edges
            .iter()
            .filter(|(_, (to, _))| *to == node)
            .map(|(&(from, fp), &(_, tp))| (from, fp, tp))
            .collect();
        v.sort_unstable();
        v
    }

    /// Runs the engine: injects `pkt` into `entry`'s input `in_port` and
    /// pushes every branch until it is dropped, leaves via egress, or the
    /// hop bound is exhausted.
    pub fn run(
        &self,
        entry: usize,
        in_port: usize,
        pkt: SymPacket,
        opts: &ExecOptions,
    ) -> ExecResult {
        let mut result = ExecResult::default();
        let mut queue: VecDeque<(usize, usize, SymPacket)> = VecDeque::new();
        queue.push_back((entry, in_port, pkt));
        while let Some((node, port, mut p)) = queue.pop_front() {
            if result.hops as usize >= opts.max_hops {
                result.truncated = true;
                result.hop_cap_hits += 1;
                break;
            }
            // Cut circulating branches: more than `max_node_visits`
            // recent arrivals at the same node means a forwarding loop.
            // (Bounded lookback keeps per-hop cost constant; loops with
            // longer periods than the window are still terminated by
            // `max_hops`.)
            if p.visits_recent(node, 512) >= opts.max_node_visits {
                result.truncated = true;
                result.visit_cap_hits += 1;
                continue;
            }
            result.hops += 1;
            p.record_arrival(node, port);
            let watch = match &opts.observe {
                Observe::EgressOnly => false,
                Observe::Nodes(set) => set.contains(&node),
                Observe::All => true,
            };
            if watch {
                result.observations.push((node, p.clone()));
            }
            for out in self.nodes[node].exec(port, p) {
                match out {
                    SymOut::Port(out_port, branch) => {
                        if !branch.feasible() {
                            continue;
                        }
                        if let Some(&(n, np)) = self.edges.get(&(node, out_port)) {
                            queue.push_back((n, np, branch));
                        }
                        // Unconnected outputs drop, as in the runtime.
                    }
                    SymOut::Egress(iface, branch) => {
                        if branch.feasible() {
                            result.egress.push((iface, branch));
                        }
                    }
                }
            }
        }
        result
    }

    /// Convenience: run by entry node name.
    pub fn run_named(
        &self,
        entry: &str,
        in_port: usize,
        pkt: SymPacket,
        opts: &ExecOptions,
    ) -> Result<ExecResult, SymError> {
        Ok(self.run(self.node_index(entry)?, in_port, pkt, opts))
    }
}

impl Default for SymGraph {
    fn default() -> Self {
        SymGraph::new()
    }
}

impl std::fmt::Debug for SymGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymGraph")
            .field("nodes", &self.names)
            .field("edges", &self.edges.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use crate::value::SymValue;

    /// A model that writes a constant destination then forwards.
    struct SetDst(u64);
    impl SymElement for SetDst {
        fn model_name(&self) -> &'static str {
            "SetDst"
        }
        fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
            pkt.write(Field::IpDst, SymValue::Const(self.0));
            vec![SymOut::Port(0, pkt)]
        }
    }

    /// A terminal egress model.
    struct Out(u16);
    impl SymElement for Out {
        fn model_name(&self) -> &'static str {
            "Out"
        }
        fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
            vec![SymOut::Egress(self.0, pkt)]
        }
    }

    #[test]
    fn linear_chain_executes() {
        let mut g = SymGraph::new();
        let a = g.add_node("a", Box::new(SetDst(7))).unwrap();
        let b = g.add_node("b", Box::new(Out(0))).unwrap();
        g.connect(a, 0, b, 0);
        let res = g.run(a, 0, SymPacket::unconstrained(), &ExecOptions::default());
        assert_eq!(res.egress.len(), 1);
        assert!(res.egress[0].1.provably_eq(Field::IpDst, 7));
        assert_eq!(res.hops, 2);
        assert!(!res.truncated);
    }

    #[test]
    fn hop_bound_terminates_loops() {
        struct Loop;
        impl SymElement for Loop {
            fn model_name(&self) -> &'static str {
                "Loop"
            }
            fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
                vec![SymOut::Port(0, pkt)]
            }
        }
        let mut g = SymGraph::new();
        let a = g.add_node("loop", Box::new(Loop)).unwrap();
        g.connect(a, 0, a, 0);
        let res = g.run(
            a,
            0,
            SymPacket::unconstrained(),
            &ExecOptions {
                max_hops: 100,
                max_node_visits: 6,
                observe: Observe::EgressOnly,
            },
        );
        assert!(res.truncated, "the visit cap cuts the cycle");
        assert!(res.hops <= 6);
    }

    #[test]
    fn observation_captures_arrival_state() {
        let mut g = SymGraph::new();
        let a = g.add_node("a", Box::new(SetDst(7))).unwrap();
        let b = g.add_node("b", Box::new(SetDst(9))).unwrap();
        g.connect(a, 0, b, 0);
        let mut watch = HashSet::new();
        watch.insert(b);
        let res = g.run(
            a,
            0,
            SymPacket::unconstrained(),
            &ExecOptions {
                max_hops: 100,
                max_node_visits: 6,
                observe: Observe::Nodes(watch),
            },
        );
        assert_eq!(res.observations.len(), 1);
        let (node, pkt) = &res.observations[0];
        assert_eq!(*node, b);
        // Observed at arrival: dst already 7 (written by a), not yet 9.
        assert!(pkt.provably_eq(Field::IpDst, 7));
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = SymGraph::new();
        g.add_node("x", Box::new(Out(0))).unwrap();
        assert!(g.add_node("x", Box::new(Out(0))).is_err());
    }
}
