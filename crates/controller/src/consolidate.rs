//! Consolidation planning (§5): which verified modules may share a VM.
//!
//! "It is better to run multiple users' configurations in the same
//! virtual machine, as long as we can guarantee isolation. … Standard
//! Click elements do not share memory, and they only communicate via
//! packets. This implies that running static analysis with SYMNET on
//! individual configurations is enough to decide whether it is safe to
//! merge them. … Our prototype takes the simpler option of not
//! consolidating clients running stateful processing."

use std::collections::HashMap;

use innet_click::ClickConfig;
use innet_topology::{NodeId, NodeKind, Topology};

use crate::netmodel::InstalledModule;

/// Element classes that keep per-flow state: one tenant could blow up the
/// shared VM's memory through them, so their owners get dedicated VMs.
const STATEFUL_CLASSES: [&str; 5] = [
    "StatefulFirewall",
    "IPNAT",
    "IPRewriter",
    "TransparentProxy",
    "ChangeEnforcer",
];

/// Whether a configuration keeps per-flow state.
pub fn is_stateful(cfg: &ClickConfig) -> bool {
    cfg.elements
        .iter()
        .any(|e| STATEFUL_CLASSES.contains(&e.class.as_str()))
}

/// A platform's VM packing plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsolidationPlan {
    /// Module names sharing the consolidated VM.
    pub shared: Vec<String>,
    /// Module names that get a dedicated VM each (stateful processing,
    /// including everything behind a sandbox).
    pub dedicated: Vec<String>,
}

/// Splits a platform's modules into one shared VM plus dedicated VMs.
pub fn plan(modules: &[InstalledModule]) -> ConsolidationPlan {
    let mut shared = Vec::new();
    let mut dedicated = Vec::new();
    for m in modules {
        if m.sandboxed || is_stateful(&m.config) {
            dedicated.push(m.name.clone());
        } else {
            shared.push(m.name.clone());
        }
    }
    ConsolidationPlan { shared, dedicated }
}

/// Builds the consolidated VM configuration for the shared modules: an
/// `IPClassifier` demultiplexer keyed on module addresses, each output
/// feeding that module's (namespaced) graph, all exits re-multiplexed
/// onto the outgoing interface. No connections are added between tenant
/// graphs, so isolation holds by construction.
pub fn consolidated_vm_config(modules: &[&InstalledModule]) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("vm_in", "FromNetfront", &[]);
    cfg.add_element("vm_out", "ToNetfront", &[]);
    let rules: Vec<String> = modules
        .iter()
        .map(|m| format!("dst host {}", m.addr))
        .collect();
    let rule_refs: Vec<&str> = rules.iter().map(|s| s.as_str()).collect();
    cfg.add_element("demux", "IPClassifier", &rule_refs);
    cfg.connect("vm_in", 0, "demux", 0);

    for (i, m) in modules.iter().enumerate() {
        cfg.merge_namespaced(&m.name, &m.config);
        // The tenant's own netfront boundary elements disappear inside the
        // shared VM: the demux replaces the sources (they would otherwise
        // collide on the VM's interface numbers) and the shared egress
        // replaces the sinks.
        let source_names: Vec<String> = m
            .config
            .elements
            .iter()
            .filter(|e| e.class == "FromNetfront" || e.class == "FromDevice")
            .map(|e| format!("{}/{}", m.name, e.name))
            .collect();
        let sink_names: Vec<String> = m
            .config
            .elements
            .iter()
            .filter(|e| e.class == "ToNetfront" || e.class == "ToDevice")
            .map(|e| format!("{}/{}", m.name, e.name))
            .collect();
        let mut demux_wired = false;
        for c in &mut cfg.connections {
            if source_names.contains(&c.from.element) {
                // The demux output replaces the tenant source (a
                // consolidated stateless module has one entry path).
                assert!(
                    !demux_wired,
                    "consolidated modules must have a single ingress path"
                );
                c.from.element = "demux".to_string();
                c.from.port = i;
                demux_wired = true;
            }
            if sink_names.contains(&c.to.element) {
                c.to.element = "vm_out".to_string();
                c.to.port = 0;
            }
        }
        // Drop the orphaned boundary elements.
        cfg.elements
            .retain(|e| !source_names.contains(&e.name) && !sink_names.contains(&e.name));
    }
    cfg
}

/// A fleet-wide VM packing plan across every platform of a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConsolidationPlan {
    /// The platform chosen to host the single fleet-wide shared VM —
    /// the one already hosting the most stateless tenants (ties broken
    /// by larger residual slot capacity, then smaller node id). `None`
    /// when no module is consolidable.
    pub home: Option<NodeId>,
    /// Module names sharing the consolidated VM on `home`.
    pub shared: Vec<String>,
    /// `(platform, module)` pairs that keep a dedicated VM where they
    /// are (stateful processing and everything behind a sandbox).
    pub dedicated: Vec<(NodeId, String)>,
    /// Relocations the plan implies: `(module, from, to)` for every
    /// shared tenant not already on `home` — the work list a fleet
    /// migration driver executes before merging the VMs.
    pub moves: Vec<(String, NodeId, NodeId)>,
}

/// Extends [`plan`] across hosts: stateless tenants from *all* platforms
/// consolidate into one shared VM, placed on the platform that already
/// hosts the most of them (so the plan moves the fewest VMs), while
/// stateful and sandboxed modules stay dedicated where they run. The
/// same isolation argument applies fleet-wide — verified configurations
/// only interact via packets, and the shared VM's demultiplexer keys on
/// addresses that remain unique across platforms.
pub fn plan_fleet(modules: &[InstalledModule], topo: &Topology) -> FleetConsolidationPlan {
    let mut shared = Vec::new();
    let mut dedicated = Vec::new();
    let mut stateless: Vec<(&InstalledModule, NodeId)> = Vec::new();
    let mut stateless_per: HashMap<NodeId, usize> = HashMap::new();
    let mut installed_per: HashMap<NodeId, usize> = HashMap::new();
    for m in modules {
        *installed_per.entry(m.platform).or_insert(0) += 1;
        if m.sandboxed || is_stateful(&m.config) {
            dedicated.push((m.platform, m.name.clone()));
        } else {
            shared.push(m.name.clone());
            stateless.push((m, m.platform));
            *stateless_per.entry(m.platform).or_insert(0) += 1;
        }
    }
    let home = stateless_per
        .iter()
        .max_by_key(|(&p, &count)| {
            let residual = match topo.node(p).kind {
                NodeKind::Platform(ref spec) => spec
                    .capacity
                    .saturating_sub(installed_per.get(&p).copied().unwrap_or(0)),
                _ => 0,
            };
            (count, residual, std::cmp::Reverse(p))
        })
        .map(|(&p, _)| p);
    let moves = match home {
        Some(home) => stateless
            .iter()
            .filter(|&&(_, p)| p != home)
            .map(|&(m, p)| (m.name.clone(), p, home))
            .collect(),
        None => Vec::new(),
    };
    FleetConsolidationPlan {
        home,
        shared,
        dedicated,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_click::{Registry, Router};
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn module(name: &str, addr: Ipv4Addr, config: &str, sandboxed: bool) -> InstalledModule {
        InstalledModule {
            id: 0,
            name: name.to_string(),
            platform: 0,
            addr,
            config: ClickConfig::parse(config).unwrap(),
            sandboxed,
            owner: "o".to_string(),
        }
    }

    #[test]
    fn stateful_detection() {
        assert!(!is_stateful(
            &ClickConfig::parse("FromNetfront() -> IPFilter(allow udp) -> ToNetfront();").unwrap()
        ));
        assert!(is_stateful(
            &ClickConfig::parse(
                "FromNetfront() -> [0]f :: StatefulFirewall(allow udp); f[0] -> ToNetfront();"
            )
            .unwrap()
        ));
    }

    #[test]
    fn plan_separates_stateful_and_sandboxed() {
        let mods = vec![
            module(
                "a",
                Ipv4Addr::new(203, 0, 113, 1),
                "FromNetfront() -> IPFilter(allow udp) -> ToNetfront();",
                false,
            ),
            module(
                "b",
                Ipv4Addr::new(203, 0, 113, 2),
                "FromNetfront() -> Counter() -> ToNetfront();",
                false,
            ),
            module(
                "c",
                Ipv4Addr::new(203, 0, 113, 3),
                "FromNetfront() -> [0]n :: IPNAT(203.0.113.3); n[0] -> ToNetfront();",
                false,
            ),
            module(
                "d",
                Ipv4Addr::new(203, 0, 113, 4),
                "FromNetfront() -> Counter() -> ToNetfront();",
                true, // Sandboxed: dedicated.
            ),
        ];
        let p = plan(&mods);
        assert_eq!(p.shared, vec!["a", "b"]);
        assert_eq!(p.dedicated, vec!["c", "d"]);
    }

    #[test]
    fn plan_fleet_homes_shared_vm_on_the_busiest_platform() {
        let topo = Topology::figure3();
        let platforms = topo.platforms();
        let (p1, p2) = (platforms[0], platforms[1]);
        let stateless = "FromNetfront() -> Counter() -> ToNetfront();";
        let stateful = "FromNetfront() -> [0]n :: IPNAT(203.0.113.9); n[0] -> ToNetfront();";
        let mut mods = vec![
            module("a", Ipv4Addr::new(192, 0, 2, 10), stateless, false),
            module("b", Ipv4Addr::new(192, 0, 2, 11), stateless, false),
            module("c", Ipv4Addr::new(198, 51, 100, 10), stateless, false),
            module("d", Ipv4Addr::new(198, 51, 100, 11), stateful, false),
        ];
        mods[0].platform = p1;
        mods[1].platform = p1;
        mods[2].platform = p2;
        mods[3].platform = p2;
        let plan = plan_fleet(&mods, &topo);
        // p1 hosts two stateless tenants to p2's one: the shared VM lands
        // on p1 and only "c" has to move. The NAT stays dedicated on p2.
        assert_eq!(plan.home, Some(p1));
        assert_eq!(plan.shared, vec!["a", "b", "c"]);
        assert_eq!(plan.dedicated, vec![(p2, "d".to_string())]);
        assert_eq!(plan.moves, vec![("c".to_string(), p2, p1)]);
    }

    #[test]
    fn plan_fleet_with_no_consolidable_modules_has_no_home() {
        let topo = Topology::figure3();
        let m = module(
            "n",
            Ipv4Addr::new(192, 0, 2, 10),
            "FromNetfront() -> [0]n :: IPNAT(192.0.2.10); n[0] -> ToNetfront();",
            false,
        );
        let plan = plan_fleet(&[m], &topo);
        assert_eq!(plan.home, None);
        assert!(plan.shared.is_empty());
        assert!(plan.moves.is_empty());
        assert_eq!(plan.dedicated.len(), 1);
    }

    #[test]
    fn consolidated_vm_runs_and_isolates() {
        let a = module(
            "alice",
            Ipv4Addr::new(203, 0, 113, 1),
            "FromNetfront() -> IPFilter(allow udp dst port 1500) -> ToNetfront();",
            false,
        );
        let b = module(
            "bob",
            Ipv4Addr::new(203, 0, 113, 2),
            "FromNetfront() -> IPFilter(allow tcp dst port 80) -> ToNetfront();",
            false,
        );
        let cfg = consolidated_vm_config(&[&a, &b]);
        cfg.validate().unwrap();
        let mut r = Router::from_config(&cfg, &Registry::standard()).unwrap();

        // Alice's UDP passes; Bob's filter never sees it.
        let alice_udp = PacketBuilder::udp()
            .dst(Ipv4Addr::new(203, 0, 113, 1), 1500)
            .build();
        r.deliver(0, alice_udp, 0).unwrap();
        assert_eq!(r.take_tx().len(), 1);

        // Bob's HTTP passes too.
        let bob_http = PacketBuilder::tcp()
            .dst(Ipv4Addr::new(203, 0, 113, 2), 80)
            .build();
        r.deliver(0, bob_http, 1).unwrap();
        assert_eq!(r.take_tx().len(), 1);

        // Traffic to Alice's address but violating her filter is dropped —
        // and is never misdelivered to Bob.
        let alice_tcp = PacketBuilder::tcp()
            .dst(Ipv4Addr::new(203, 0, 113, 1), 80)
            .build();
        r.deliver(0, alice_tcp, 2).unwrap();
        assert!(r.take_tx().is_empty());
        use innet_click::elements::IPFilter;
        let bob_filter_traffic = {
            let f = r
                .element_as::<IPFilter>("bob/IPFilter@2")
                .or_else(|| r.element_as::<IPFilter>("bob/IPFilter@1"));
            f.map(|f| f.passed() + f.dropped())
        };
        if let Some(n) = bob_filter_traffic {
            assert_eq!(n, 1, "Bob's filter saw only Bob's packet");
        }
    }
}
