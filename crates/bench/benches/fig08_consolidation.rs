//! Figure 8: cumulative throughput with many client configurations
//! consolidated into a single ClickOS VM. Measured natively.

use innet::experiments::fig08_consolidation::consolidation_sweep;
use innet_bench::{quick_mode, Report};

fn main() {
    let counts: Vec<usize> = if quick_mode() {
        vec![24, 96, 252]
    } else {
        vec![24, 48, 72, 96, 120, 144, 168, 192, 216, 240, 252]
    };
    let rounds = if quick_mode() { 20 } else { 200 };
    let frame = 1472;
    let series = consolidation_sweep(&counts, frame, rounds);

    let mut r = Report::new(
        "fig08_consolidation",
        "Figure 8: cumulative throughput vs configs per VM (measured natively)",
    );
    r.line(&format!(
        "{:>8} {:>12} {:>12} {:>12}",
        "configs", "Mpps", "Gbit/s", "vs 24"
    ));
    let base = series.first().map(|p| p.pps).unwrap_or(1.0);
    for p in &series {
        r.line(&format!(
            "{:>8} {:>12.3} {:>12.2} {:>11.0}%",
            p.configs,
            p.pps / 1e6,
            p.gbps,
            p.pps / base * 100.0
        ));
    }
    r.blank();
    r.line(
        "paper shape: ~flat to ~150 configs, then a gentle droop as the \
         linear demux scan catches the per-packet I/O floor",
    );
    r.finish();
}
