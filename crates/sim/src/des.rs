//! A minimal discrete-event core: a time-ordered queue of typed events
//! with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// One nanosecond-scale second.
pub const SECOND: SimTime = 1_000_000_000;

/// One millisecond in [`SimTime`] units.
pub const MILLI: SimTime = 1_000_000;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared-registry instruments for one event queue (see
/// [`EventQueue::attach_metrics`]).
#[derive(Debug, Clone)]
struct QueueMetrics {
    scheduled: innet_obs::Counter,
    popped: innet_obs::Counter,
    depth: innet_obs::Gauge,
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in scheduling order, so runs
/// are reproducible regardless of event payloads.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    metrics: Option<QueueMetrics>,
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            metrics: None,
        }
    }

    /// Publishes this queue's counters into `registry` (Prometheus
    /// namespace `innet_sim_*`): events scheduled, events popped, and a
    /// pending-depth gauge, so DES drivers are observable like the rest
    /// of the stack. Only events after attachment are counted.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        let m = QueueMetrics {
            scheduled: registry.counter("innet_sim_events_scheduled_total"),
            popped: registry.counter("innet_sim_events_popped_total"),
            depth: registry.gauge("innet_sim_queue_depth"),
        };
        m.depth.set(self.heap.len() as i64);
        self.metrics = Some(m);
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling into the past is clamped to `now` (the event fires
    /// immediately but still in FIFO order).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        if let Some(m) = &self.metrics {
            m.scheduled.inc();
            m.depth.set(self.heap.len() as i64);
        }
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.at;
        if let Some(m) = &self.metrics {
            m.popped.inc();
            m.depth.set(self.heap.len() as i64);
        }
        Some((e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_at_same_instant() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_and_clamps() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        assert_eq!(q.now(), 100);
        // Scheduling into the past clamps to now.
        q.schedule(50, "y");
        assert_eq!(q.pop(), Some((100, "y")));
    }

    #[test]
    fn attached_metrics_track_queue_activity() {
        let reg = innet_obs::Registry::new();
        let mut q = EventQueue::new();
        q.schedule(10, "pre-attach"); // not counted
        q.attach_metrics(&reg);
        assert_eq!(reg.gauge("innet_sim_queue_depth").get(), 1);
        q.schedule(20, "a");
        q.schedule(30, "b");
        assert_eq!(reg.counter("innet_sim_events_scheduled_total").get(), 2);
        assert_eq!(reg.gauge("innet_sim_queue_depth").get(), 3);
        while q.pop().is_some() {}
        assert_eq!(reg.counter("innet_sim_events_popped_total").get(), 3);
        assert_eq!(reg.gauge("innet_sim_queue_depth").get(), 0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        q.schedule_in(25, "y");
        assert_eq!(q.pop(), Some((125, "y")));
    }
}
