//! §6 headline capacity numbers: VM density on a 128 GB server, and the
//! MAWI backbone workload check.

use innet_platform::{max_vms, VmTimingKind};
use innet_sim::workload::{analyze, generate_trace, TraceParams, TraceStats};

/// The §6 density comparison on a 128 GB, 64-core server.
#[derive(Debug, Clone, Copy)]
pub struct CapacityReport {
    /// Maximum stripped-down Linux VMs.
    pub linux_vms: u64,
    /// Maximum ClickOS VMs.
    pub clickos_vms: u64,
}

/// Computes the density comparison.
pub fn vm_density(host_mem_gb: u64) -> CapacityReport {
    CapacityReport {
        linux_vms: max_vms(host_mem_gb * 1024, VmTimingKind::Linux),
        clickos_vms: max_vms(host_mem_gb * 1024, VmTimingKind::ClickOs),
    }
}

/// Generates a MAWI-style trace and reports whether one In-Net platform
/// covers its active clients (the paper: "a single IN-NET platform …
/// could run personalized firewalls for all active sources on the MAWI
/// backbone").
pub fn mawi_check(seed: u64) -> (TraceStats, bool) {
    let stats = analyze(&generate_trace(&TraceParams::default(), seed));
    // One platform handles 1,000 concurrent tenants (Figure 9) — more
    // with consolidation.
    let fits = stats.max_active_clients <= 1000;
    (stats, fits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_section6() {
        let r = vm_density(128);
        // Paper: ~200 Linux VMs vs ~10,000 ClickOS VMs.
        assert!((190..=260).contains(&r.linux_vms), "{r:?}");
        assert!((9_000..=11_000).contains(&r.clickos_vms), "{r:?}");
        assert!(r.clickos_vms / r.linux_vms >= 40, "two orders of magnitude");
    }

    #[test]
    fn mawi_fits_one_platform() {
        for seed in 0..3 {
            let (stats, fits) = mawi_check(seed);
            assert!(fits, "{stats:?}");
        }
    }
}
