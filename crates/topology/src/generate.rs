//! Random operator-network growth for the controller-scalability
//! experiment (paper Figure 10: "we randomly add more routers and
//! platforms to the topology shown in figure 3").

use innet_click::ClickConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::graph::{NodeKind, PlatformSpec, Topology};

/// Parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct GenerateParams {
    /// Number of middlebox nodes to add (the x-axis of Figure 10).
    pub middleboxes: usize,
    /// Add one platform per this many middleboxes.
    pub platform_every: usize,
    /// RNG seed (growth is deterministic given the seed).
    pub seed: u64,
}

impl Default for GenerateParams {
    fn default() -> Self {
        GenerateParams {
            middleboxes: 15,
            platform_every: 4,
            seed: 42,
        }
    }
}

fn random_middlebox(rng: &mut StdRng, idx: usize) -> ClickConfig {
    // A rotating mix of the operator middlebox shapes the paper deploys.
    let text = match rng.gen_range(0..4) {
        0 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            fw :: StatefulFirewall(allow tcp, allow udp);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> [0]fw; fw[0] -> out;
            rin -> [1]fw; fw[1] -> rout;
            "#
        }
        1 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            m :: FlowMeter();
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> m -> out; rin -> rout;
            "#
        }
        2 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            r :: RateLimiter(100000);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> r -> out; rin -> rout;
            "#
        }
        _ => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            c :: IPClassifier(tcp src port 80 or tcp dst port 80, -);
            opt :: SetTOS(46);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> c; c[0] -> opt -> out; c[1] -> out;
            rin -> rout;
            "#
        }
    };
    let _ = idx;
    ClickConfig::parse(text).expect("valid literal config")
}

/// Grows the Figure 3 topology with `params.middleboxes` extra
/// router+middlebox pairs (and platforms sprinkled in), chained off the
/// border router — the setup used to measure controller request latency
/// versus network size.
pub fn generate(params: &GenerateParams) -> Topology {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut t = Topology::figure3();
    let border = t.index_of("border").expect("figure3 has a border router");
    // Steer a dedicated aggregate into the chain so that verification
    // walks every added middlebox: the border's port 5 leads into the
    // generated region (10.0.0.0/8).
    if let NodeKind::Router(routes) = &mut t.nodes[border].kind {
        let default = routes.pop().expect("figure3 border has a default route");
        routes.push(("10.0.0.0/8".parse().expect("valid literal"), 5));
        routes.push(default);
    }
    let mut attach = border;
    let mut attach_port = 5usize;

    for i in 0..params.middleboxes {
        let mbox = t
            .add(
                format!("mbox{i}"),
                NodeKind::Middlebox(random_middlebox(&mut rng, i)),
            )
            .expect("generated names are unique");
        let pool: innet_packet::Cidr = format!("10.{}.{}.0/24", 1 + (i / 250), i % 250)
            .parse()
            .expect("generated pool is valid");
        // Chain router: port 0 back toward the core, port 1 a local
        // platform (when present), port 2 deeper into the chain.
        let mut routes = vec![(pool, 1)];
        routes.push(("10.0.0.0/8".parse().expect("valid literal"), 2));
        routes.push((innet_packet::Cidr::ANY, 0));
        let router = t
            .add(format!("router{i}"), NodeKind::Router(routes))
            .expect("generated names are unique");
        t.link_bidir(attach, attach_port, mbox, 0);
        t.link_bidir(mbox, 1, router, 0);

        if params.platform_every > 0 && i % params.platform_every == 0 {
            let p = t
                .add(
                    format!("gplatform{i}"),
                    NodeKind::Platform(PlatformSpec {
                        addr_pool: pool,
                        external: rng.gen_bool(0.5),
                        ..PlatformSpec::default()
                    }),
                )
                .expect("generated names are unique");
            t.link_bidir(router, 1, p, 0);
        }
        attach = router;
        attach_port = 2;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        for n in [1usize, 7, 31] {
            let t = generate(&GenerateParams {
                middleboxes: n,
                ..GenerateParams::default()
            });
            // Figure 3 contributes 3 middleboxes of its own.
            assert_eq!(t.middlebox_count(), n + 3);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let p = GenerateParams {
            middleboxes: 10,
            ..GenerateParams::default()
        };
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a, b);
        let c = generate(&GenerateParams { seed: 1, ..p });
        // Different seed, same structure size.
        assert_eq!(a.middlebox_count(), c.middlebox_count());
    }

    #[test]
    fn chain_is_connected() {
        let t = generate(&GenerateParams {
            middleboxes: 5,
            ..GenerateParams::default()
        });
        // Every generated middlebox has links on both sides.
        for i in 0..5 {
            let m = t.index_of(&format!("mbox{i}")).unwrap();
            assert!(t.out_link(m, 0).is_some());
            assert!(t.out_link(m, 1).is_some());
        }
    }
}
