//! Property-based tests for the packet layer.

use std::net::Ipv4Addr;

use innet_packet::{internet_checksum, Cidr, FlowKey, IpProto, Packet, PacketBuilder, TcpFlags};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    /// Any packet the builder emits decodes back to the fields it was
    /// built from, and carries a valid IP checksum.
    #[test]
    fn builder_decode_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        is_tcp in any::<bool>(),
    ) {
        let b = if is_tcp { PacketBuilder::tcp().flags(TcpFlags::SYN) } else { PacketBuilder::udp() };
        let pkt = b.src(src, sport).dst(dst, dport).ttl(ttl).payload(&payload).build();

        let ip = pkt.ipv4().unwrap();
        prop_assert_eq!(ip.src(), src);
        prop_assert_eq!(ip.dst(), dst);
        prop_assert_eq!(ip.ttl(), ttl);
        prop_assert!(ip.verify_checksum());

        let key = FlowKey::of(&pkt).unwrap();
        prop_assert_eq!(key.src_port, sport);
        prop_assert_eq!(key.dst_port, dport);
        prop_assert_eq!(key.proto, if is_tcp { IpProto::Tcp } else { IpProto::Udp });
        prop_assert_eq!(pkt.payload().unwrap(), &payload[..]);
    }

    /// The checksum update is a fixed point: updating twice equals once,
    /// and verification holds after any field mutation + update.
    #[test]
    fn checksum_update_fixed_point(
        src in arb_addr(),
        dst in arb_addr(),
        new_dst in arb_addr(),
    ) {
        let mut pkt = PacketBuilder::udp().src(src, 1).dst(dst, 2).build();
        {
            let mut ip = pkt.ipv4_mut().unwrap();
            ip.set_dst(new_dst);
            ip.update_checksum();
        }
        prop_assert!(pkt.ipv4().unwrap().verify_checksum());
        let before = pkt.bytes().to_vec();
        pkt.ipv4_mut().unwrap().update_checksum();
        prop_assert_eq!(pkt.bytes(), &before[..]);
    }

    /// Canonical flow tuples are direction-insensitive for all inputs.
    #[test]
    fn canonical_flow_symmetry(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let pkt = PacketBuilder::tcp().src(src, sport).dst(dst, dport).build();
        let k = FlowKey::of(&pkt).unwrap();
        prop_assert_eq!(k.canonical(), k.reversed().canonical());
    }

    /// CIDR parse/display round-trips and containment is consistent with
    /// the numeric range.
    #[test]
    fn cidr_roundtrip_and_range(addr in arb_addr(), len in 0u8..=32, probe in arb_addr()) {
        let c = Cidr::new(addr, len).unwrap();
        let reparsed: Cidr = c.to_string().parse().unwrap();
        prop_assert_eq!(c, reparsed);
        let inside = (c.first_u32()..=c.last_u32()).contains(&u32::from(probe));
        prop_assert_eq!(c.contains(probe), inside);
    }

    /// Raw-buffer packets never panic on header access, whatever the bytes.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let pkt = Packet::from_bytes(data);
        let _ = pkt.ether().map(|e| e.ethertype());
        let _ = pkt.ipv4().map(|ip| (ip.src(), ip.dst(), ip.proto(), ip.verify_checksum()));
        let _ = pkt.udp().map(|u| u.dst_port());
        let _ = pkt.tcp().map(|t| t.flags());
        let _ = pkt.icmp().map(|i| i.kind());
        let _ = pkt.payload();
        let _ = FlowKey::of(&pkt);
    }

    /// RFC 1071 invariant: appending the computed checksum to (even-length)
    /// data makes the whole buffer sum to zero.
    #[test]
    fn checksum_self_consistent(half in proptest::collection::vec(any::<u16>(), 1..32)) {
        let mut data: Vec<u8> = half.iter().flat_map(|w| w.to_be_bytes()).collect();
        let c = internet_checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
    }
}
