//! Figure 7: suspend/resume latency of one VM as a function of how many
//! VMs already exist on the host.

use innet_click::ClickConfig;
use innet_platform::Host;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SuspendPoint {
    /// VMs already running when the operation starts.
    pub existing_vms: usize,
    /// Suspend latency in milliseconds.
    pub suspend_ms: f64,
    /// Resume latency in milliseconds.
    pub resume_ms: f64,
}

/// Sweeps suspend/resume latency over background VM counts.
pub fn suspend_resume_sweep(points: &[usize]) -> Vec<SuspendPoint> {
    let cfg = ClickConfig::parse("FromNetfront() -> Counter() -> ToNetfront();")
        .expect("valid literal config");
    points
        .iter()
        .map(|&n| {
            // A host big enough for the largest sweep point.
            let mut host = Host::new(64 * 1024);
            let mut now = 0u64;
            let mut target = None;
            for i in 0..=n {
                let vm = host.boot_clickos(&cfg, now).expect("capacity");
                if i == 0 {
                    target = Some(vm);
                }
                now += 200_000_000;
            }
            host.advance(now + 1_000_000_000);
            now += 2_000_000_000;
            let target = target.expect("at least one VM");

            let s_done = host.suspend(target, now).expect("running");
            let suspend_ms = (s_done - now) as f64 / 1e6;
            host.advance(s_done);
            let r_done = host.resume(target, s_done).expect("suspended");
            let resume_ms = (r_done - s_done) as f64 / 1e6;

            SuspendPoint {
                existing_vms: n,
                suspend_ms,
                resume_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_band_and_growth() {
        let pts = suspend_resume_sweep(&[0, 50, 100, 200]);
        for p in &pts {
            // Figure 7: both operations within roughly 30–100 ms.
            assert!((20.0..=110.0).contains(&p.suspend_ms), "{p:?}");
            assert!((20.0..=110.0).contains(&p.resume_ms), "{p:?}");
            assert!(p.resume_ms > p.suspend_ms, "{p:?}");
        }
        // Latency grows with the number of existing VMs.
        assert!(pts[3].suspend_ms > pts[0].suspend_ms);
        assert!(pts[3].resume_ms > pts[0].resume_ms);
        // "possible to suspend and resume in 100ms in total" (small n).
        assert!(pts[0].suspend_ms + pts[0].resume_ms <= 110.0);
    }
}
