//! End-to-end integration tests following the paper's own narrative:
//! the Figure 1/2 static-checking walk-through, the Figure 4 request,
//! the §4.5 unifying example, and Table 1.

use innet::prelude::*;
use innet::symnet::{
    build_sym_graph, ExecOptions, Field, Observe, RequesterClass as RC, SymPacket, Verdict,
};
use innet::{controller::table1_matrix, policy::NodeRef};

/// §3, Figures 1 and 2: the client's payload traverses the stateful
/// firewall and the flipping server unchanged, and arrives only as UDP.
#[test]
fn figure2_symbolic_trace() {
    let cfg = ClickConfig::parse(
        r#"
        client :: FromNetfront();
        fw :: StatefulFirewall(allow udp);
        s :: ServerS();
        back :: ToNetfront();
        client -> [0]fw; fw[0] -> s -> [1]fw; fw[1] -> back;
        "#,
    )
    .unwrap();
    let g = build_sym_graph(&cfg, &Registry::standard()).unwrap();
    let res = g
        .run_named(
            "client",
            0,
            SymPacket::unconstrained(),
            &ExecOptions::default(),
        )
        .unwrap();

    // Exactly one flow class comes back, and it reproduces every row of
    // the Figure 2 trace's final line: src/dst flipped, proto pinned to
    // UDP, data untouched.
    assert_eq!(res.egress.len(), 1);
    let flow = &res.egress[0].1;
    assert!(flow.provably_eq(Field::Proto, 17), "restricted to UDP");
    assert!(
        flow.provably_same(flow.get(Field::IpDst), flow.ingress.get(Field::IpSrc)),
        "destination bound to the original client"
    );
    assert!(
        flow.provably_same(flow.get(Field::IpSrc), flow.ingress.get(Field::IpDst)),
        "source bound to the original server"
    );
    assert!(
        !flow.ever_written(Field::Payload),
        "the data will not change en-route (Figure 2's conclusion)"
    );
}

/// §3 "Checking Operator Policy Compliance": running server S inside the
/// operator's network is equivalent to running it in the Internet — and
/// the security rules accept it (its responses are implicitly
/// authorized).
#[test]
fn server_s_is_safe_to_host() {
    let cfg = ClickConfig::parse("FromNetfront() -> ServerS() -> ToNetfront();").unwrap();
    for class in [RC::ThirdParty, RC::Client, RC::Operator] {
        let report = innet::symnet::check_module(
            &cfg,
            &innet::symnet::SecurityContext {
                assigned_addr: "203.0.113.10".parse().unwrap(),
                registered: vec![],
                class,
            },
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(report.verdict, Verdict::Safe, "{class:?}");
    }
}

/// §4.5: the unifying example end to end — deploy, verify, route, kill.
#[test]
fn unifying_example() {
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "mobile-7",
        RC::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    let req = ClientRequest::parse(
        r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
        "#,
    )
    .unwrap();

    // (1) "only Platform 3 applies, since Platforms 1 and 2 are not
    // reachable from the outside."
    let resp = ctl.deploy("mobile-7", req).unwrap();
    assert_eq!(resp.platform, "platform3");
    // (2) The client learns the module's external address.
    assert!(resp.public_addr.octets()[0] == 203);
    // (3) Forwarding rules exist for exactly this module.
    assert_eq!(ctl.flow_rules().len(), 1);
    assert_eq!(ctl.flow_rules()[0].dst, resp.public_addr);
    // Kill tears everything down.
    ctl.kill(resp.module_id).unwrap();
    assert!(ctl.flow_rules().is_empty());
    assert!(ctl.modules().is_empty());
}

/// Table 1, all 36 cells.
#[test]
fn table1_matrix_matches_paper() {
    use Verdict::{Reject as X, Safe as V, SafeWithSandbox as S};
    let expected = [
        ("IP Router", [X, X, V]),
        ("DPI", [X, X, V]),
        ("NAT", [X, X, V]),
        ("Transparent Proxy", [X, X, V]),
        ("Flow meter", [V, V, V]),
        ("Rate limiter", [V, V, V]),
        ("Firewall", [V, V, V]),
        ("Tunnel", [S, V, V]),
        ("Multicast", [V, V, V]),
        ("DNS server (stock)", [V, V, V]),
        ("Reverse proxy (stock)", [V, V, V]),
        ("x86 VM", [S, S, V]),
    ];
    let matrix = table1_matrix();
    for (row, (name, verdicts)) in matrix.iter().zip(expected.iter()) {
        assert_eq!(row.name, *name);
        assert_eq!(row.verdicts, *verdicts, "{name}");
    }
}

/// §3 "Checking Operator Policy Compliance": symbolic execution of the
/// *original* setup (server in the Internet) and the *platform* setup
/// (server hosted behind the platform demultiplexer) yields the same
/// symbolic packet — "implying the two configurations are equivalent.
/// Hence, it is safe for the operator to run the content-provider's
/// server inside its own network, without sandboxing."
#[test]
fn platform_setup_equivalent_to_internet_setup() {
    let registry = Registry::standard();
    // Original: client -> firewall -> server somewhere in the Internet.
    let original = ClickConfig::parse(
        r#"
        client :: FromNetfront();
        fw :: StatefulFirewall(allow udp);
        s :: ServerS();
        back :: ToNetfront();
        client -> [0]fw; fw[0] -> s -> [1]fw; fw[1] -> back;
        "#,
    )
    .unwrap();
    // Platform: the same server behind the platform's vswitch demux (an
    // extra classifier hop on the path).
    let platform = ClickConfig::parse(
        r#"
        client :: FromNetfront();
        fw :: StatefulFirewall(allow udp);
        vswitch :: IPClassifier(-);
        s :: ServerS();
        back :: ToNetfront();
        client -> [0]fw; fw[0] -> vswitch; vswitch[0] -> s -> [1]fw;
        fw[1] -> back;
        "#,
    )
    .unwrap();

    let run = |cfg: &ClickConfig| {
        let g = build_sym_graph(cfg, &registry).unwrap();
        let mut res = g
            .run_named(
                "client",
                0,
                SymPacket::unconstrained(),
                &ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(res.egress.len(), 1);
        res.egress.pop().unwrap().1
    };
    let a = run(&original);
    let b = run(&platform);

    // "Exactly the same symbolic packet": identical possible-value sets
    // for every field, and identical binding relations to the ingress.
    use innet::symnet::ALL_FIELDS;
    for f in ALL_FIELDS {
        assert_eq!(a.possible(f), b.possible(f), "{f}");
        assert_eq!(a.ever_written(f), b.ever_written(f), "{f} write history");
    }
    for (pkt, name) in [(&a, "original"), (&b, "platform")] {
        assert!(
            pkt.provably_same(pkt.get(Field::IpDst), pkt.ingress.get(Field::IpSrc)),
            "{name}: response bound to the client"
        );
        assert!(
            pkt.provably_same(pkt.get(Field::Payload), pkt.ingress.get(Field::Payload)),
            "{name}: payload invariant"
        );
    }
}

/// The requirements API rejects nodes the network does not have, instead
/// of silently succeeding.
#[test]
fn unknown_waypoints_error() {
    let ctl = {
        let mut c = Controller::new(Topology::figure3());
        c.register_client("x", RC::Client, vec![]);
        c
    };
    let model = ctl.network_model().unwrap();
    let req = Requirement::parse("reach from internet -> Narnia").unwrap();
    assert!(innet::controller::check_requirement(&model, &req).is_err());
    // But known operator middleboxes resolve.
    let req2 = Requirement::parse("reach from client -> HTTPOptimizer").unwrap();
    let _ = innet::controller::check_requirement(&model, &req2).unwrap();
    assert!(matches!(req2.hops[0].node, NodeRef::Named(_)));
}

/// Symbolic egress observation and the concrete runtime agree on the
/// Figure 4 module: the symbolic flow class admits the concrete packet
/// the runtime forwards, and excludes the one it drops.
#[test]
fn symbolic_concrete_agreement_on_figure4() {
    let cfg_text = r#"
        src :: FromNetfront();
        f :: IPFilter(allow udp dst port 1500);
        rw :: IPRewriter(pattern - - 172.16.15.133 - 0 0);
        dst :: ToNetfront();
        src -> f -> rw -> dst;
    "#;
    let cfg = ClickConfig::parse(cfg_text).unwrap();

    // Symbolic: one egress class with dst rewritten and port 1500.
    let g = build_sym_graph(&cfg, &Registry::standard()).unwrap();
    let res = g
        .run_named(
            "src",
            0,
            SymPacket::unconstrained(),
            &ExecOptions {
                max_hops: 1000,
                max_node_visits: 6,
                observe: Observe::EgressOnly,
            },
        )
        .unwrap();
    assert_eq!(res.egress.len(), 1);

    // Concrete: the runtime forwards the in-class packet, drops the rest.
    let mut router = Router::from_config(&cfg, &Registry::standard()).unwrap();
    let good = PacketBuilder::udp()
        .src("8.8.8.8".parse().unwrap(), 999)
        .dst("203.0.113.10".parse().unwrap(), 1500)
        .build();
    let bad = PacketBuilder::tcp()
        .dst("203.0.113.10".parse().unwrap(), 1500)
        .build();
    router.deliver(0, good, 0).unwrap();
    router.deliver(0, bad, 1).unwrap();
    let tx = router.take_tx();
    assert_eq!(tx.len(), 1);
    assert_eq!(
        tx[0].1.ipv4().unwrap().dst(),
        "172.16.15.133".parse::<std::net::Ipv4Addr>().unwrap()
    );
}
