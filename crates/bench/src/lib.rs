//! Shared reporting helpers for the figure benches.
//!
//! Every bench prints its series to stdout in the paper's row format and
//! mirrors it to `target/innet-reports/<name>.txt`, so a full
//! `cargo bench` leaves a directory of reproduced tables behind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

/// A tiny line-oriented report that tees to stdout and a file.
pub struct Report {
    name: &'static str,
    body: String,
}

impl Report {
    /// Starts a report for a figure/table name like `"fig05"`.
    pub fn new(name: &'static str, title: &str) -> Report {
        let mut r = Report {
            name,
            body: String::new(),
        };
        r.line(&format!("# {title}"));
        r
    }

    /// Appends (and prints) one line.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        let _ = writeln!(self.body, "{s}");
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Writes the report file under `target/innet-reports/`.
    pub fn finish(self) {
        let dir = match std::env::var("CARGO_TARGET_DIR") {
            Ok(t) => PathBuf::from(t),
            // Anchor at the workspace target dir regardless of bench CWD.
            Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
        }
        .join("innet-reports");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.txt", self.name));
            if std::fs::write(&path, self.body).is_ok() {
                eprintln!("[report written to {}]", path.display());
            }
        }
    }
}

/// True when the harness was invoked by `cargo bench` in quick mode
/// (`--quick` or the `INNET_BENCH_QUICK` env var): benches shrink their
/// parameter sweeps so CI stays fast.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("INNET_BENCH_QUICK").is_ok()
}
