//! Figure 7: suspend/resume latency of one VM versus the number of
//! existing VMs on the host.

use innet::experiments::fig07_suspend::suspend_resume_sweep;
use innet_bench::Report;

fn main() {
    let points: Vec<usize> = (0..=200).step_by(25).collect();
    let series = suspend_resume_sweep(&points);
    let mut r = Report::new(
        "fig07_suspend_resume",
        "Figure 7: suspend/resume latency (ms) vs existing VMs",
    );
    r.line(&format!(
        "{:>8} {:>12} {:>12}",
        "VMs", "suspend (ms)", "resume (ms)"
    ));
    for p in &series {
        r.line(&format!(
            "{:>8} {:>12.1} {:>12.1}",
            p.existing_vms, p.suspend_ms, p.resume_ms
        ));
    }
    r.blank();
    r.line("paper: both in a 30–100 ms band, growing with the VM count");
    r.finish();
}
