//! Integration tests for the fleet scenario engine.
//!
//! Five contracts:
//!
//! 1. **Bandwidth is priced, not just latency.** Property: for every
//!    fabric link, the bytes accepted onto it always fit its
//!    `bandwidth_bps` over the link's busy window, the busy window never
//!    extends past the last offer plus the bounded queue, and every
//!    offered packet is accounted as either accepted or tail-dropped.
//! 2. **The driver adds scheduling, not semantics.** A zero-event
//!    scenario run is byte- and order-identical to the hand-rolled
//!    inject/advance loop the `FleetDriver` replaces.
//! 3. **Regional failover completes at fleet scale.** Killing a PoP on
//!    the full 1,001-node generated fleet re-homes *every* affected
//!    tenant, each with a recorded per-tenant downtime.
//! 4. **Consolidation executes.** An `ExecuteConsolidation` event backed
//!    by the controller's `plan_fleet` performs the moves on the data
//!    plane via live migration — locations actually change.
//! 5. **Demand breaks placement ties.** With equal VM counts per
//!    platform, an attached traffic-demand map still triggers a
//!    rebalance off the hot platform; without demand the count-based
//!    fallback correctly sees balance and does nothing.

use std::net::Ipv4Addr;

use innet::controller::InstalledModule;
use innet::platform::{RehomeRecord, ScenarioHooks as _};
use innet::prelude::*;
use innet::sim::des::SECOND;
use innet::topology::{generate_fleet, FleetParams, NodeId};
use proptest::prelude::*;

const SEC: u64 = 1_000_000_000;
const TENANT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

fn filter_entry(addr: Ipv4Addr, stateful: bool) -> ClientEntry {
    ClientEntry {
        addr,
        config: ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
        )
        .unwrap(),
        stateful,
    }
}

fn udp_to(addr: Ipv4Addr, seq: u16, len: usize) -> Packet {
    PacketBuilder::udp()
        .src(Ipv4Addr::new(8, 8, 8, 8), seq)
        .dst(addr, 1500)
        .pad_to(len)
        .build()
}

fn two_pop_fleet() -> Fleet {
    Fleet::new(&generate_fleet(&FleetParams {
        pops: 2,
        platforms_per_pop: 1,
        clients_per_pop: 1,
        seed: 3,
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn link_bandwidth_is_never_exceeded(
        frames in 8usize..96,
        frame_len in 64usize..1400,
        gap_ns in 0u64..200_000u64,
        cap_ns in 0u64..2_000_000u64,
    ) {
        let mut fleet = two_pop_fleet();
        let platforms = fleet.platforms();
        let (ingress, home) = (platforms[0], platforms[1]);
        fleet.register(home, filter_entry(TENANT, false)).unwrap();
        fleet.set_fabric_queue_ns(cap_ns);

        // Every packet enters at the remote platform, so each one is
        // offered to the ingress -> home fabric link.
        let last_offer = gap_ns * (frames as u64 - 1);
        let mut driver = FleetDriver::new(fleet).until(last_offer + 10 * SEC);
        for i in 0..frames {
            driver = driver.inject_at(
                gap_ns * i as u64,
                ingress,
                udp_to(TENANT, i as u16 + 1, frame_len),
            );
        }
        let run = driver.run();

        let reports = run.fleet.link_report();
        let accepted: u64 = reports.iter().map(|r| r.usage.packets).sum();
        let dropped: u64 = reports.iter().map(|r| r.usage.drops).sum();
        // Offered == accepted + dropped: nothing vanishes unaccounted.
        prop_assert_eq!(accepted + dropped, frames as u64);
        prop_assert_eq!(run.stats.fabric_forwards, accepted);
        prop_assert_eq!(run.stats.link_drops, dropped);

        for r in &reports {
            // Accepted bytes must serialize within the link's busy
            // window: bytes * 8 <= bandwidth * busy_window. One
            // nanosecond of rounding slack per accepted packet (the
            // per-packet serialization delay truncates).
            let lhs = r.usage.bytes as u128 * 8 * SECOND as u128;
            let rhs = r.bandwidth_bps as u128
                * (r.busy_until_ns as u128 + r.usage.packets as u128);
            prop_assert!(
                lhs <= rhs,
                "link {}->{} carried {} bytes in a {} ns busy window at {} bps",
                r.from, r.to, r.usage.bytes, r.busy_until_ns, r.bandwidth_bps
            );
            // The busy window is bounded by the queue cap: an accepted
            // packet never waits longer than cap_ns, so the queue can
            // never run away past the last offer.
            let ser_max = (frame_len as u128 * 8 * SECOND as u128)
                .div_ceil(r.bandwidth_bps as u128) as u64;
            prop_assert!(
                r.busy_until_ns <= last_offer + cap_ns + ser_max + 2,
                "link {}->{} busy until {} ns, last offer {} ns, cap {} ns",
                r.from, r.to, r.busy_until_ns, last_offer, cap_ns
            );
            // Dropped bytes mirror dropped packets exactly.
            prop_assert_eq!(r.usage.dropped_bytes, r.usage.drops * frame_len as u64);
        }
    }
}

#[test]
fn saturated_link_tail_drops_and_accounts() {
    let mut fleet = two_pop_fleet();
    let platforms = fleet.platforms();
    let (ingress, home) = (platforms[0], platforms[1]);
    fleet.register(home, filter_entry(TENANT, false)).unwrap();
    // Zero queue budget: any packet offered while the link serializes an
    // earlier one is refused at the queue, not silently absorbed.
    fleet.set_fabric_queue_ns(0);
    let mut driver = FleetDriver::new(fleet).until(5 * SEC);
    for i in 0..32u16 {
        driver = driver.inject_at(0, ingress, udp_to(TENANT, i + 1, 1400));
    }
    let run = driver.run();
    assert!(run.stats.link_drops > 0, "burst at zero cap must drop");
    let reports = run.fleet.link_report();
    assert_eq!(
        reports
            .iter()
            .map(|r| r.usage.packets + r.usage.drops)
            .sum::<u64>(),
        32
    );
    assert!(reports.iter().any(|r| r.usage.dropped_bytes > 0));
}

#[test]
#[allow(deprecated)]
fn zero_event_scenario_is_identical_to_plain_injection() {
    // Mixed home-delivery and fabric-ingress schedule, driven once
    // through a FleetDriver carrying an (empty) scenario and once
    // through the hand-rolled loop. Byte- and order-identical.
    let build = || {
        let mut f = two_pop_fleet();
        let ps = f.platforms();
        f.register(ps[0], filter_entry(TENANT, true)).unwrap();
        (f, ps)
    };
    let (manual_fleet, ps) = build();
    let (driven_fleet, _) = build();
    let remote = ps[1];
    let schedule: Vec<(u64, Option<NodeId>, Packet)> = (0..10u64)
        .map(|i| {
            let ingress = if i % 3 == 2 { Some(remote) } else { None };
            (i * 120_000_000, ingress, udp_to(TENANT, i as u16 + 1, 64))
        })
        .collect();

    let mut manual = manual_fleet;
    let mut manual_out = Vec::new();
    for (at, ingress, pkt) in &schedule {
        match ingress {
            None => manual_out.extend(manual.inject(pkt.clone(), *at)),
            Some(node) => manual_out.extend(manual.inject_at(*node, pkt.clone(), *at).unwrap()),
        }
        manual_out.extend(manual.advance(*at));
    }
    manual_out.extend(manual.advance(4 * SEC));

    let mut driver = FleetDriver::new(driven_fleet)
        .until(4 * SEC)
        .events(Scenario::new("noop"));
    for (at, ingress, pkt) in schedule {
        driver = match ingress {
            None => driver.inject(at, pkt),
            Some(node) => driver.inject_at(at, node, pkt),
        };
    }
    let run = driver.run();

    assert!(!manual_out.is_empty(), "the schedule produces output");
    assert_eq!(run.out, manual_out, "byte- and order-identical");
    assert_eq!(run.stats, manual.stats(), "stats-identical");
    assert!(run.rehomes.is_empty() && run.consolidation_moves.is_empty());
}

#[test]
fn kill_pop_on_the_thousand_node_fleet_rehomes_every_affected_tenant() {
    let topo = generate_fleet(&FleetParams::default());
    assert_eq!(topo.nodes.len(), 1_001, "the paper-scale fleet");
    let mut fleet = Fleet::new(&topo);
    let platforms = fleet.platforms();
    let doomed: Vec<NodeId> = platforms
        .iter()
        .copied()
        .filter(|&p| topo.pop_of(p) == Some(0))
        .collect();
    let safe: Vec<NodeId> = platforms
        .iter()
        .copied()
        .filter(|&p| topo.pop_of(p) != Some(0))
        .collect();
    // Half the tenants homed inside the doomed PoP, half elsewhere.
    let mut affected = Vec::new();
    for i in 0..40usize {
        let addr = Ipv4Addr::new(198, 18, 0, i as u8 + 1);
        let home = if i % 2 == 0 {
            affected.push(addr);
            doomed[i % doomed.len()]
        } else {
            safe[i % safe.len()]
        };
        fleet.register(home, filter_entry(addr, true)).unwrap();
    }

    let run = FleetDriver::new(fleet)
        .until(3 * SEC)
        .events(Scenario::new("kill-pop0").at(SEC, ScenarioEvent::KillPop { pop: 0 }))
        .run();

    assert_eq!(
        run.rehomes.len(),
        affected.len(),
        "one failover record per affected tenant"
    );
    for rec in &run.rehomes {
        let RehomeRecord {
            addr,
            to,
            downtime_ns,
            ..
        } = *rec;
        let to = to.expect("an alive platform had room");
        assert!(run.fleet.is_alive(to));
        assert!(topo.pop_of(to) != Some(0), "landed outside the dead PoP");
        assert_eq!(run.fleet.location(addr), Some(to));
        assert!(downtime_ns >= 50_000_000, "detection delay is the floor");
        assert!(affected.contains(&addr));
    }
    assert_eq!(run.stats.rehomes, affected.len() as u64);
    // Unaffected tenants stayed put.
    for i in (1..40usize).step_by(2) {
        let addr = Ipv4Addr::new(198, 18, 0, i as u8 + 1);
        assert_eq!(run.fleet.location(addr), Some(safe[i % safe.len()]));
    }
}

#[test]
fn consolidation_event_executes_plan_fleet_moves_on_the_data_plane() {
    let topo = generate_fleet(&FleetParams {
        pops: 3,
        platforms_per_pop: 1,
        clients_per_pop: 1,
        seed: 5,
    });
    let mut fleet = Fleet::new(&topo);
    let mut ctl = Controller::new(topo.clone());
    let platforms = fleet.platforms();
    let config = ClickConfig::parse("FromNetfront() -> Counter() -> ToNetfront();").unwrap();
    let mut modules = Vec::new();
    // 2 stateless tenants on platform 0, one on each of the others.
    let spec = [(0usize, 2u8), (1, 1), (2, 1)];
    let mut addrs = Vec::new();
    for &(p, n) in &spec {
        for j in 0..n {
            let addr = Ipv4Addr::new(198, 18, p as u8, j + 1);
            fleet
                .register(
                    platforms[p],
                    ClientEntry {
                        addr,
                        config: config.clone(),
                        stateful: false,
                    },
                )
                .unwrap();
            modules.push(InstalledModule {
                id: (p * 8 + j as usize) as u64,
                name: format!("m{p}-{j}"),
                platform: platforms[p],
                addr,
                config: config.clone(),
                sandboxed: false,
                owner: "o".into(),
            });
            addrs.push(addr);
        }
    }
    ctl.adopt_modules(modules);
    let planned = ControllerHooks::new(&ctl).plan_consolidation(&fleet);
    assert_eq!(planned.len(), 2, "the two off-home tenants move");

    let run = FleetDriver::new(fleet)
        .until(90 * SEC)
        .hooks(ControllerHooks::new(&ctl))
        .events(Scenario::new("consolidate").at(SEC, ScenarioEvent::ExecuteConsolidation))
        .run();

    assert_eq!(
        run.consolidation_moves.len(),
        2,
        "moves executed, not planned"
    );
    let homes: std::collections::BTreeSet<NodeId> = addrs
        .iter()
        .map(|&a| run.fleet.location(a).unwrap())
        .collect();
    assert_eq!(homes.len(), 1, "all stateless tenants share one platform");
    assert_eq!(homes.iter().next(), Some(&platforms[0]), "fewest moves win");
}

#[test]
fn demand_breaks_rebalance_ties_that_vm_counts_cannot_see() {
    // Equal VM counts on both platforms; all the demand on platform 0.
    let seed = |demand: bool| {
        let mut fleet = two_pop_fleet();
        let ps = fleet.platforms();
        let addrs: [Ipv4Addr; 4] = std::array::from_fn(|i| Ipv4Addr::new(198, 18, 9, i as u8 + 1));
        for (i, &addr) in addrs.iter().enumerate() {
            fleet
                .register(ps[i % 2], filter_entry(addr, false))
                .unwrap();
        }
        if demand {
            // Tenants on ps[0] (indices 0 and 2) carry all the load.
            fleet.attach_demand(
                [
                    (addrs[0], 4_000u64),
                    (addrs[2], 3_000u64),
                    (addrs[1], 100u64),
                    (addrs[3], 100u64),
                ]
                .into_iter()
                .collect(),
            );
        }
        fleet
    };

    let hot = FleetDriver::new(seed(true))
        .until(90 * SEC)
        .rebalance_every(SEC, 2)
        .run();
    assert!(
        !hot.rebalance_moves.is_empty(),
        "demand-aware rebalance moves load off the hot platform"
    );
    let ps = hot.fleet.platforms();
    for &(_, from, to) in &hot.rebalance_moves {
        assert_eq!(from, ps[0], "moves leave the hot platform");
        assert_eq!(to, ps[1]);
    }

    let balanced = FleetDriver::new(seed(false))
        .until(90 * SEC)
        .rebalance_every(SEC, 2)
        .run();
    assert!(
        balanced.rebalance_moves.is_empty(),
        "count-based fallback sees equal VM counts and stays put"
    );
}

#[test]
fn cdn_tier_event_serves_from_the_nearest_alive_copy() {
    let topo = generate_fleet(&FleetParams {
        pops: 3,
        platforms_per_pop: 1,
        clients_per_pop: 1,
        seed: 5,
    });
    let fleet = {
        let mut f = Fleet::new(&topo);
        let ps = f.platforms();
        f.register(ps[0], filter_entry(TENANT, false)).unwrap();
        f
    };
    let ps = fleet.platforms();
    let run = FleetDriver::new(fleet)
        .until(4 * SEC)
        .events(Scenario::new("cdn").at(
            0,
            ScenarioEvent::CdnTier {
                origin: TENANT,
                edges: vec![ps[1], ps[2]],
            },
        ))
        .inject_at(SEC, ps[1], udp_to(TENANT, 1, 64))
        .inject_at(2 * SEC, ps[2], udp_to(TENANT, 2, 64))
        .run();
    assert_eq!(run.cdn_edges, 2);
    assert_eq!(
        run.stats.fabric_forwards, 0,
        "edge ingress is served by the local replica"
    );
    assert!(run.fleet.host(ps[1]).unwrap().live_vms() > 0);
    assert!(run.fleet.host(ps[2]).unwrap().live_vms() > 0);

    // The origin platform dying must not take the replicas with it: a
    // later edge packet is still served locally. Runs chain by handing
    // the fleet from one driver to the next.
    let pop0 = topo.pop_of(ps[0]).unwrap();
    let run2 = FleetDriver::new(run.fleet)
        .until(8 * SEC)
        .events(Scenario::new("kill-origin").at(5 * SEC, ScenarioEvent::KillPop { pop: pop0 }))
        .inject_at(6 * SEC, ps[1], udp_to(TENANT, 3, 64))
        .run();
    assert_eq!(run2.stats.fabric_forwards, 0, "replica survives the origin");
}
