//! A persistent (structurally shared) list.
//!
//! Symbolic branches clone packets at every split; with ordinary vectors
//! the per-clone cost grows with the path already travelled, making
//! long-chain verification quadratic. A persistent list shares the common
//! prefix between branches, so cloning a packet is O(1) regardless of how
//! far it has come — the property behind the (near-)linear controller
//! scaling of Figure 10. (`Arc`-based so symbolic packets stay `Send`
//! for the sharded controller.)

use std::sync::Arc;

struct Node<T> {
    item: T,
    prev: Option<Arc<Node<T>>>,
    len: usize,
}

/// An immutable singly-linked list with O(1) push and O(1) clone.
pub struct PList<T> {
    head: Option<Arc<Node<T>>>,
}

impl<T> Clone for PList<T> {
    fn clone(&self) -> Self {
        PList {
            head: self.head.clone(),
        }
    }
}

impl<T> Default for PList<T> {
    fn default() -> Self {
        PList::new()
    }
}

impl<T> PList<T> {
    /// The empty list.
    pub fn new() -> PList<T> {
        PList { head: None }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.head.as_ref().map(|n| n.len).unwrap_or(0)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Appends an item (the original list is untouched; `self` becomes
    /// the extended list).
    pub fn push(&mut self, item: T) {
        let len = self.len() + 1;
        self.head = Some(Arc::new(Node {
            item,
            prev: self.head.take(),
            len,
        }));
    }

    /// Iterates newest-to-oldest.
    pub fn iter_rev(&self) -> IterRev<'_, T> {
        IterRev {
            cur: self.head.as_deref(),
        }
    }

    /// The most recently pushed item.
    pub fn last(&self) -> Option<&T> {
        self.head.as_ref().map(|n| &n.item)
    }
}

impl<T: Clone> PList<T> {
    /// Materializes the list oldest-first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut v: Vec<T> = self.iter_rev().cloned().collect();
        v.reverse();
        v
    }
}

impl<T> Drop for PList<T> {
    fn drop(&mut self) {
        // Iterative drop: naive Arc-chain destruction recurses once per
        // node and overflows the stack on long paths. Unwrap uniquely
        // owned nodes in a loop; stop at the first shared node (another
        // branch still owns the rest and will drop it the same way).
        let mut cur = self.head.take();
        while let Some(rc) = cur {
            match Arc::try_unwrap(rc) {
                Ok(mut node) => cur = node.prev.take(),
                Err(_) => break,
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter_rev()).finish()
    }
}

/// Newest-to-oldest iterator over a [`PList`].
pub struct IterRev<'a, T> {
    cur: Option<&'a Node<T>>,
}

impl<'a, T> Iterator for IterRev<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let n = self.cur?;
        self.cur = n.prev.as_deref();
        Some(&n.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_iter() {
        let mut l = PList::new();
        assert!(l.is_empty());
        for i in 0..5 {
            l.push(i);
        }
        assert_eq!(l.len(), 5);
        assert_eq!(l.to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            l.iter_rev().copied().collect::<Vec<_>>(),
            vec![4, 3, 2, 1, 0]
        );
        assert_eq!(l.last(), Some(&4));
    }

    #[test]
    fn clone_shares_prefix() {
        let mut a = PList::new();
        a.push(1);
        a.push(2);
        let mut b = a.clone();
        b.push(3);
        a.push(99);
        assert_eq!(a.to_vec(), vec![1, 2, 99]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn deep_lists_drop_without_stack_overflow_risk_bound() {
        // Not recursive drop-safe for arbitrary depth in general, but the
        // engine bounds path lengths well below stack limits; sanity-check
        // a deep case.
        let mut l = PList::new();
        for i in 0..100_000 {
            l.push(i);
        }
        assert_eq!(l.len(), 100_000);
        drop(l);
    }
}
