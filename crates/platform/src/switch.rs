//! The back-end switch controller: on-the-fly VM instantiation (§5).
//!
//! "We modify ClickOS' back-end software switch to include a switch
//! controller … The controller monitors incoming traffic and identifies
//! new flows, where a new flow consists of a TCP SYN or UDP packet going
//! to an In-Net client. When one such flow is detected, a new VM is
//! instantiated for it, and, once ready, the flow's traffic is re-routed
//! through it."

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_click::ClickConfig;
use innet_packet::{IpProto, Packet};

use crate::vm::{Delivery, DropReason, Host, HostError, VmId, VmState};

/// Per-client registration: which configuration to instantiate when the
/// client's traffic appears.
#[derive(Debug, Clone)]
pub struct ClientEntry {
    /// The address assigned to the client's processing module.
    pub addr: Ipv4Addr,
    /// The configuration to boot.
    pub config: ClickConfig,
    /// Whether the processing is stateful: stateful VMs are suspended
    /// when idle instead of destroyed (§5 "Suspend and resume").
    pub stateful: bool,
}

/// Counters the switch controller maintains.
///
/// The drop accounting is exhaustive:
/// `packets == delivered + buffered + dropped` always holds, and every
/// drop also lands in a reason-labeled cell of
/// `innet_switch_drops_total` when a registry is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets seen.
    pub packets: u64,
    /// VMs booted on the fly.
    pub boots: u64,
    /// VMs resumed from suspension (including resumes scheduled by a
    /// suspend-window arrival).
    pub resumes: u64,
    /// Packets delivered synchronously to a running VM.
    pub delivered: u64,
    /// Packets buffered while a VM was starting, resuming, or finishing
    /// a suspend.
    pub buffered: u64,
    /// Packets dropped, for any reason.
    pub dropped: u64,
    /// Packets for unknown destinations or reclaimed mid-flow VMs
    /// (subset of `dropped`, kept for compatibility).
    pub unknown: u64,
}

/// Shared-registry instruments for one switch controller (see
/// [`SwitchController::attach_metrics`]).
#[derive(Debug, Clone)]
struct SwitchMetrics {
    packets: innet_obs::Counter,
    delivered: innet_obs::Counter,
    buffered: innet_obs::Counter,
    boots: innet_obs::Counter,
    resumes: innet_obs::Counter,
    drops: innet_obs::LabeledCounter,
}

impl SwitchMetrics {
    fn register(reg: &innet_obs::Registry) -> SwitchMetrics {
        SwitchMetrics {
            packets: reg.counter("innet_switch_packets_total"),
            delivered: reg.counter("innet_switch_delivered_total"),
            buffered: reg.counter("innet_switch_buffered_total"),
            boots: reg.counter("innet_switch_boots_total"),
            resumes: reg.counter("innet_switch_resumes_total"),
            drops: reg.labeled_counter("innet_switch_drops_total", "reason"),
        }
    }
}

/// Per-tenant usage record, the basis of billing (§2.1:
/// "accountability ensures that users are charged for the resources they
/// use, discouraging resource exhaustion attacks against platforms").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Packets delivered to the tenant's module.
    pub packets: u64,
    /// Bytes delivered to the tenant's module.
    pub bytes: u64,
    /// VM boots performed on the tenant's behalf.
    pub boots: u64,
    /// VM resumes performed on the tenant's behalf.
    pub resumes: u64,
}

/// The switch controller in front of one host.
pub struct SwitchController {
    clients: HashMap<Ipv4Addr, ClientEntry>,
    /// Destination address -> VM currently serving it.
    bindings: HashMap<Ipv4Addr, VmId>,
    /// Virtual time a VM last saw traffic (for idle reclamation).
    last_active: HashMap<VmId, u64>,
    /// Per-tenant usage accounting.
    usage: HashMap<Ipv4Addr, Usage>,
    /// Statistics.
    stats: SwitchStats,
    /// Shared-registry instruments, if attached.
    metrics: Option<SwitchMetrics>,
}

impl SwitchController {
    /// Creates an empty controller.
    pub fn new() -> SwitchController {
        SwitchController {
            clients: HashMap::new(),
            bindings: HashMap::new(),
            last_active: HashMap::new(),
            usage: HashMap::new(),
            stats: SwitchStats::default(),
            metrics: None,
        }
    }

    /// Publishes this controller's counters into `registry` (Prometheus
    /// namespace `innet_switch_*`): packets seen/delivered/buffered, VM
    /// boots and resumes, and `innet_switch_drops_total` labeled by
    /// [`DropReason`]. Only activity after attachment is counted.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.metrics = Some(SwitchMetrics::register(registry));
    }

    /// A snapshot of the controller's counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Registers a client configuration for on-the-fly instantiation.
    pub fn register(&mut self, entry: ClientEntry) {
        self.clients.insert(entry.addr, entry);
    }

    /// Records a drop in the stats and (if attached) the reason-labeled
    /// drop counter.
    fn record_drop(&mut self, reason: DropReason) {
        self.stats.dropped += 1;
        if matches!(reason, DropReason::UnknownDst | DropReason::MidFlowNoVm) {
            self.stats.unknown += 1;
        }
        if let Some(m) = &self.metrics {
            m.drops.with(reason.as_str()).inc();
        }
    }

    /// Whether `pkt` opens a new flow per the paper's definition: a bare
    /// TCP SYN, or any UDP/ICMP packet.
    pub fn is_flow_start(pkt: &Packet) -> bool {
        match pkt.ip_proto() {
            Ok(IpProto::Tcp) => pkt
                .tcp()
                .map(|t| t.flags().is_initial_syn())
                .unwrap_or(false),
            Ok(IpProto::Udp) | Ok(IpProto::Icmp) => true,
            _ => false,
        }
    }

    /// Handles one incoming packet at virtual time `now_ns`: routes it to
    /// the serving VM, booting or resuming one if needed. Returns packets
    /// the VM transmitted synchronously.
    ///
    /// Tenants are billed only for packets that are actually delivered
    /// or buffered — a dropped packet never charges `usage.packets` or
    /// `usage.bytes`.
    pub fn on_packet(
        &mut self,
        host: &mut Host,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<Vec<(u16, Packet)>, HostError> {
        self.stats.packets += 1;
        if let Some(m) = &self.metrics {
            m.packets.inc();
        }
        let Ok(ip) = pkt.ipv4() else {
            self.record_drop(DropReason::UnknownDst);
            return Ok(Vec::new());
        };
        let dst = ip.dst();
        let Some(entry) = self.clients.get(&dst).cloned() else {
            self.record_drop(DropReason::UnknownDst);
            return Ok(Vec::new());
        };

        let vm = match self.bindings.get(&dst).copied() {
            Some(vm) => {
                match host.vm(vm)?.state {
                    // Resume if it was suspended.
                    VmState::Suspended => {
                        host.resume(vm, now_ns)?;
                        self.stats.resumes += 1;
                        if let Some(m) = &self.metrics {
                            m.resumes.inc();
                        }
                        self.usage.entry(dst).or_default().resumes += 1;
                    }
                    // A first arrival in the suspend window schedules an
                    // auto-resume when the suspend completes (the host
                    // buffers the packet); bill and count that resume
                    // once, here, where the tenant is known.
                    VmState::Suspending { .. } if host.vm(vm)?.pending.is_empty() => {
                        self.stats.resumes += 1;
                        if let Some(m) = &self.metrics {
                            m.resumes.inc();
                        }
                        self.usage.entry(dst).or_default().resumes += 1;
                    }
                    _ => {}
                }
                vm
            }
            None => {
                if !SwitchController::is_flow_start(&pkt) {
                    // Mid-flow packet with no VM: drop (the flow's VM was
                    // reclaimed; stateless flows re-trigger on UDP).
                    self.record_drop(DropReason::MidFlowNoVm);
                    return Ok(Vec::new());
                }
                let vm = host.boot_clickos(&entry.config, now_ns)?;
                self.stats.boots += 1;
                if let Some(m) = &self.metrics {
                    m.boots.inc();
                }
                self.usage.entry(dst).or_default().boots += 1;
                self.bindings.insert(dst, vm);
                vm
            }
        };

        self.last_active.insert(vm, now_ns);
        let bytes = pkt.len() as u64;
        let (outcome, out) = host.deliver_tracked(vm, 0, pkt, now_ns)?;
        match outcome {
            Delivery::Delivered => {
                self.stats.delivered += 1;
                if let Some(m) = &self.metrics {
                    m.delivered.inc();
                }
            }
            Delivery::Buffered => {
                self.stats.buffered += 1;
                if let Some(m) = &self.metrics {
                    m.buffered.inc();
                }
            }
            Delivery::Dropped(reason) => {
                self.record_drop(reason);
                return Ok(out);
            }
        }
        let usage = self.usage.entry(dst).or_default();
        usage.packets += 1;
        usage.bytes += bytes;
        Ok(out)
    }

    /// Reclaims VMs idle for longer than `idle_ns`: stateless VMs are
    /// destroyed, stateful ones suspended.
    ///
    /// Reclamation also prunes the controller's per-VM bookkeeping
    /// (`bindings` and `last_active`), so long-running deployments with
    /// flow churn hold state proportional to the *live* flow set, not to
    /// every flow ever seen.
    pub fn reclaim_idle(&mut self, host: &mut Host, now_ns: u64, idle_ns: u64) {
        let mut unbind = Vec::new();
        for (&addr, &vm) in &self.bindings {
            let Ok(state) = host.vm(vm).map(|v| v.state) else {
                // The VM was destroyed out from under us: the binding is
                // stale either way, so prune it.
                unbind.push((addr, vm));
                continue;
            };
            let idle = now_ns.saturating_sub(self.last_active.get(&vm).copied().unwrap_or(0));
            if idle < idle_ns || !matches!(state, VmState::Running) {
                continue;
            }
            let stateful = self.clients.get(&addr).map(|e| e.stateful).unwrap_or(false);
            if stateful {
                // Suspended VMs keep their binding (and `last_active`
                // entry) so returning traffic resumes the same VM.
                let _ = host.suspend(vm, now_ns);
            } else {
                let _ = host.destroy(vm);
                unbind.push((addr, vm));
            }
        }
        for (addr, vm) in unbind {
            self.bindings.remove(&addr);
            self.last_active.remove(&vm);
        }
    }

    /// The VM currently bound to a client address.
    pub fn binding(&self, addr: Ipv4Addr) -> Option<VmId> {
        self.bindings.get(&addr).copied()
    }

    /// The registration for a client address, if any.
    pub fn client(&self, addr: Ipv4Addr) -> Option<&ClientEntry> {
        self.clients.get(&addr)
    }

    /// Removes a client registration and all its per-VM bookkeeping
    /// (binding and idle-tracking), returning the entry. The source end
    /// of a live migration: the VM itself is extracted from the host
    /// separately.
    pub fn unregister(&mut self, addr: Ipv4Addr) -> Option<ClientEntry> {
        if let Some(vm) = self.bindings.remove(&addr) {
            self.last_active.remove(&vm);
        }
        self.clients.remove(&addr)
    }

    /// Registers a client *with an already-bound VM* — the destination
    /// end of a live migration. Unlike [`SwitchController::register`],
    /// the binding is installed immediately (no flow-start required), so
    /// mid-flow packets keep flowing to the migrated VM instead of being
    /// dropped as [`DropReason::MidFlowNoVm`].
    pub fn adopt(&mut self, entry: ClientEntry, vm: VmId, now_ns: u64) {
        let addr = entry.addr;
        self.clients.insert(addr, entry);
        self.bindings.insert(addr, vm);
        self.last_active.insert(vm, now_ns);
    }

    /// Number of destination→VM bindings currently tracked. Bounded by
    /// the live flow set: [`SwitchController::reclaim_idle`] prunes
    /// bindings whose VM was destroyed.
    pub fn tracked_bindings(&self) -> usize {
        self.bindings.len()
    }

    /// Number of VMs with idle-reclamation bookkeeping (`last_active`).
    /// Pruned together with the binding when a VM is destroyed, so churn
    /// does not grow it without bound.
    pub fn tracked_vms(&self) -> usize {
        self.last_active.len()
    }

    /// The billing record for a tenant address.
    pub fn usage(&self, addr: Ipv4Addr) -> Usage {
        self.usage.get(&addr).copied().unwrap_or_default()
    }
}

impl Default for SwitchController {
    fn default() -> Self {
        SwitchController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::{PacketBuilder, TcpFlags};

    const CLIENT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    fn setup(stateful: bool) -> (Host, SwitchController) {
        let mut sw = SwitchController::new();
        sw.register(ClientEntry {
            addr: CLIENT,
            config: ClickConfig::parse(
                "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
            )
            .unwrap(),
            stateful,
        });
        (Host::new(16 * 1024), sw)
    }

    fn udp_to_client() -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 99)
            .dst(CLIENT, 1500)
            .build()
    }

    #[test]
    fn first_packet_boots_vm_and_buffers() {
        let (mut host, mut sw) = setup(false);
        let out = sw.on_packet(&mut host, udp_to_client(), 0).unwrap();
        assert!(out.is_empty(), "buffered during boot");
        assert_eq!(sw.stats().boots, 1);
        assert_eq!(sw.stats().buffered, 1);
        // Boot completes; the buffered packet emerges.
        let flushed = host.advance(100_000_000);
        assert_eq!(flushed.len(), 1);
        // Second packet flows synchronously.
        let out = sw
            .on_packet(&mut host, udp_to_client(), 110_000_000)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(sw.stats().boots, 1, "no second boot");
    }

    #[test]
    fn unknown_destination_dropped() {
        let (mut host, mut sw) = setup(false);
        let stranger = PacketBuilder::udp()
            .dst(Ipv4Addr::new(9, 9, 9, 9), 1)
            .build();
        let out = sw.on_packet(&mut host, stranger, 0).unwrap();
        assert!(out.is_empty());
        assert_eq!(sw.stats().unknown, 1);
        assert_eq!(host.live_vms(), 0);
    }

    #[test]
    fn tcp_only_syn_starts_flows() {
        let (mut host, mut sw) = setup(false);
        let ack = PacketBuilder::tcp()
            .dst(CLIENT, 80)
            .flags(TcpFlags::ACK)
            .build();
        sw.on_packet(&mut host, ack, 0).unwrap();
        assert_eq!(host.live_vms(), 0, "mid-flow packet boots nothing");
        let syn = PacketBuilder::tcp()
            .dst(CLIENT, 80)
            .flags(TcpFlags::SYN)
            .build();
        sw.on_packet(&mut host, syn, 0).unwrap();
        assert_eq!(host.live_vms(), 1);
    }

    #[test]
    fn stateless_idle_vm_destroyed() {
        let (mut host, mut sw) = setup(false);
        sw.on_packet(&mut host, udp_to_client(), 0).unwrap();
        host.advance(100_000_000);
        sw.reclaim_idle(&mut host, 10_000_000_000, 1_000_000_000);
        assert_eq!(host.live_vms(), 0);
        assert!(sw.binding(CLIENT).is_none());
        // New traffic boots a fresh VM.
        sw.on_packet(&mut host, udp_to_client(), 11_000_000_000)
            .unwrap();
        assert_eq!(sw.stats().boots, 2);
    }

    #[test]
    fn usage_accounting_per_tenant() {
        let (mut host, mut sw) = setup(true);
        // Another tenant, to prove accounting is separate.
        let other = Ipv4Addr::new(203, 0, 113, 99);
        sw.register(ClientEntry {
            addr: other,
            config: ClickConfig::parse("FromNetfront() -> IPFilter(allow udp) -> ToNetfront();")
                .unwrap(),
            stateful: false,
        });

        for i in 0..5u64 {
            sw.on_packet(&mut host, udp_to_client(), i * 1_000_000_000)
                .unwrap();
        }
        let stranger = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 1)
            .dst(other, 2)
            .pad_to(200)
            .build();
        sw.on_packet(&mut host, stranger, 0).unwrap();

        let u = sw.usage(CLIENT);
        assert_eq!(u.packets, 5);
        assert_eq!(u.boots, 1);
        assert_eq!(u.resumes, 0);
        assert!(u.bytes > 0);

        let v = sw.usage(other);
        assert_eq!(v.packets, 1);
        assert_eq!(v.bytes, 200);
        assert_eq!(sw.usage(Ipv4Addr::new(9, 9, 9, 9)), Usage::default());
    }

    #[test]
    fn stateful_idle_vm_suspended_then_resumed() {
        let (mut host, mut sw) = setup(true);
        sw.on_packet(&mut host, udp_to_client(), 0).unwrap();
        host.advance(100_000_000);
        sw.reclaim_idle(&mut host, 10_000_000_000, 1_000_000_000);
        let vm = sw.binding(CLIENT).expect("binding kept for stateful");
        host.advance(10_100_000_000);
        assert!(matches!(host.vm(vm).unwrap().state, VmState::Suspended));

        // Traffic resumes the same VM rather than booting a new one.
        sw.on_packet(&mut host, udp_to_client(), 20_000_000_000)
            .unwrap();
        assert_eq!(sw.stats().resumes, 1);
        assert_eq!(sw.stats().boots, 1);
    }
}
