//! The In-Net security rules (paper §2.1, §4.4), checked over symbolic
//! egress flows.
//!
//! The controller injects an *unconstrained* symbolic packet into every
//! ingress of a processing module and inspects every flow that can leave.
//! Three predicates are evaluated per egress flow, each to a tri-state
//! result:
//!
//! * **anti-spoofing** — the source address is the module's assigned
//!   address, or provably unmodified since ingress;
//! * **ownership** — the module emits only (1) traffic it originates as
//!   itself, (2) responses to the traffic's own sender (implicit
//!   authorization), or (3) deliveries to the tenant's registered
//!   addresses; anything else is transit of other parties' traffic, which
//!   tenants may not perform;
//! * **default-off** (third parties only) — the destination is
//!   white-listed or implicitly authorized.
//!
//! A predicate that depends on values only known at runtime — fields
//! revealed by decapsulation or produced by opaque code — evaluates to
//! *unknown*; per the paper, such modules "can generate both allowed and
//! disallowed traffic, and compliance cannot be checked at install time",
//! so they run behind the `ChangeEnforcer` sandbox instead of being
//! rejected.
//!
//! For the operator's *clients* (its own subscribers), default-off is
//! waived — clients may originate traffic to any destination, like their
//! own hosts — and unknown values of [`Origin::Decap`] are acceptable: the
//! inner traffic of a client's tunnel is attributable to the client and
//! covered by ordinary ingress filtering. Opaque unknowns still require
//! the sandbox. The operator's own modules are trusted; static analysis is
//! advisory (correctness, not security).
//!
//! These rules reproduce the paper's Table 1 verdict matrix exactly; the
//! integration suite asserts all 36 cells.

use std::net::Ipv4Addr;
use std::sync::Arc;

use innet_click::{ClickConfig, Registry};
use serde::{Deserialize, Serialize};

use crate::{
    field::Field,
    model::{ExecOptions, Observe, SymError},
    models::{build_sym_graph_cached, ModelCache},
    packet::SymPacket,
    summary::{entry_chain, summarize_chain, BranchOutcome, SymSummary},
    value::Origin,
};

/// Who is asking for the processing to be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequesterClass {
    /// An untrusted third party (e.g. a content provider).
    ThirdParty,
    /// A subscriber of the operator (residential/mobile customer).
    Client,
    /// The operator itself.
    Operator,
}

/// The controller's decision for a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Statically proven safe: run without runtime enforcement.
    Safe,
    /// Compliance depends on runtime values: run behind a
    /// `ChangeEnforcer` sandbox (the paper's "(s)" entries).
    SafeWithSandbox,
    /// Provably violates the rules: refuse to run.
    Reject,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Safe => write!(f, "safe"),
            Verdict::SafeWithSandbox => write!(f, "safe (sandboxed)"),
            Verdict::Reject => write!(f, "reject"),
        }
    }
}

/// Tri-state outcome of one predicate on one flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tri {
    /// Provably satisfied.
    Holds,
    /// Depends on values only known at runtime.
    Unknown(Origin),
    /// Provably violated.
    Violated(String),
}

/// Module-deployment context the controller supplies for checking.
#[derive(Debug, Clone)]
pub struct SecurityContext {
    /// Address the controller (would) assign to the module.
    pub assigned_addr: Ipv4Addr,
    /// The tenant's registered addresses (explicit authorization list).
    pub registered: Vec<Ipv4Addr>,
    /// Who is requesting.
    pub class: RequesterClass,
}

/// Result of checking one module configuration.
#[derive(Debug, Clone)]
pub struct SecurityReport {
    /// The combined verdict over all egress flows.
    pub verdict: Verdict,
    /// Number of egress flow classes inspected.
    pub flows_checked: usize,
    /// Human-readable violations found (empty unless `Reject`).
    pub violations: Vec<String>,
    /// Human-readable unknowns found (empty unless sandboxing).
    pub unknowns: Vec<String>,
    /// The symbolic egress flow classes themselves, for follow-on policy
    /// passes (e.g. the §7 UDP-reflection ban).
    pub egress_flows: Vec<SymPacket>,
}

/// A memoization backend for chain summaries, implemented by the
/// controller's epoch-invalidated `SummaryCache`. `chain` is the ordered
/// list of configuration element indices the summary covers (node indices
/// in the [`crate::SymGraph`] built from `cfg`, which follow declaration
/// order).
pub trait SummarySource {
    /// A previously stored summary for this chain slice, if any.
    fn lookup(&self, cfg: &ClickConfig, chain: &[usize]) -> Option<Arc<SymSummary>>;
    /// Stores a freshly computed summary for this chain slice.
    fn store(&self, cfg: &ClickConfig, chain: &[usize], summary: Arc<SymSummary>);
    /// A shared [`ModelCache`] the checker may build graphs from. The
    /// default (`None`) rebuilds every element model per check — the
    /// whole-graph oracle stays that way so differential comparisons
    /// measure the memoized pipeline against an unaided baseline.
    fn models(&self) -> Option<&ModelCache> {
        None
    }
}

/// Execution-cost and memoization counters from one module check.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Symbolic runs stopped by the global hop bound.
    pub hop_cap_bailouts: u64,
    /// Symbolic branches cut by the per-node visit bound.
    pub visit_cap_bailouts: u64,
    /// Chain elements covered by summary replay instead of per-element
    /// execution.
    pub summary_chain_nodes: u64,
    /// Summaries served from the [`SummarySource`].
    pub summary_cache_hits: u64,
    /// Summaries that had to be computed (and were stored back).
    pub summary_cache_misses: u64,
}

impl CheckStats {
    /// Merges another check's counters into this one.
    pub fn absorb(&mut self, other: CheckStats) {
        self.hop_cap_bailouts += other.hop_cap_bailouts;
        self.visit_cap_bailouts += other.visit_cap_bailouts;
        self.summary_chain_nodes += other.summary_chain_nodes;
        self.summary_cache_hits += other.summary_cache_hits;
        self.summary_cache_misses += other.summary_cache_misses;
    }
}

fn u(a: Ipv4Addr) -> u64 {
    u32::from(a) as u64
}

/// Anti-spoofing on one egress flow.
fn anti_spoof(flow: &SymPacket, ctx: &SecurityContext) -> Tri {
    if !flow.ever_written(Field::IpSrc) {
        // "…or the same address as when it entered the platform."
        return Tri::Holds;
    }
    let src = flow.get(Field::IpSrc);
    if flow.provably_eq(Field::IpSrc, u(ctx.assigned_addr)) {
        return Tri::Holds;
    }
    // A source rewritten to the ingress *destination* is the module's own
    // address in deployment (only module-addressed traffic reaches it).
    if flow.provably_same(src, flow.ingress.get(Field::IpDst)) {
        return Tri::Holds;
    }
    match flow.origin_of(src) {
        Some(o @ (Origin::Decap | Origin::Opaque | Origin::Computed)) => Tri::Unknown(o),
        _ => Tri::Violated(format!(
            "egress source {} is neither the assigned address {} nor invariant",
            flow.render_fields(),
            ctx.assigned_addr
        )),
    }
}

/// The ownership/no-transit rule on one egress flow.
fn ownership(flow: &SymPacket, ctx: &SecurityContext) -> Tri {
    let src = flow.get(Field::IpSrc);
    let dst = flow.get(Field::IpDst);
    // (1) Module originates traffic as itself.
    if flow.ever_written(Field::IpSrc)
        && (flow.provably_eq(Field::IpSrc, u(ctx.assigned_addr))
            || flow.provably_same(src, flow.ingress.get(Field::IpDst)))
    {
        return Tri::Holds;
    }
    // (2) Response: destination bound to the ingress source.
    if flow.ever_written(Field::IpDst) && flow.provably_same(dst, flow.ingress.get(Field::IpSrc)) {
        return Tri::Holds;
    }
    // (3) Delivery to a registered tenant address.
    if flow.ever_written(Field::IpDst) {
        if let Some(c) = flow.possible(Field::IpDst).as_single() {
            if ctx.registered.iter().any(|&a| u(a) == c) {
                return Tri::Holds;
            }
        }
    }
    // Unknown-valued rewrites defer the decision to runtime.
    for f in [Field::IpSrc, Field::IpDst] {
        if flow.ever_written(f) {
            if let Some(o @ (Origin::Decap | Origin::Opaque)) = flow.origin_of(flow.get(f)) {
                return Tri::Unknown(o);
            }
        }
    }
    Tri::Violated(
        "egress flow transits foreign traffic: not self-originated, not a response, \
         not a delivery to a registered address"
            .to_string(),
    )
}

/// Default-off destination authorization (third parties).
fn default_off(flow: &SymPacket, ctx: &SecurityContext) -> Tri {
    let dst = flow.get(Field::IpDst);
    if flow.provably_same(dst, flow.ingress.get(Field::IpSrc)) {
        return Tri::Holds; // Implicit authorization.
    }
    if let Some(c) = flow.possible(Field::IpDst).as_single() {
        if ctx.registered.iter().any(|&a| u(a) == c) {
            return Tri::Holds; // Explicit authorization.
        }
        return Tri::Violated(format!(
            "destination {} is not authorized",
            Ipv4Addr::from(c as u32)
        ));
    }
    match flow.origin_of(dst) {
        Some(o @ (Origin::Decap | Origin::Opaque | Origin::Computed)) => Tri::Unknown(o),
        _ => Tri::Violated("destination is unconstrained foreign traffic".to_string()),
    }
}

/// Checks a processing-module configuration against the security rules.
///
/// Builds the abstract model graph, injects an unconstrained symbolic
/// packet at every `FromNetfront` ingress, and combines per-flow
/// predicate results into a [`Verdict`].
pub fn check_module(
    cfg: &ClickConfig,
    ctx: &SecurityContext,
    registry: &Registry,
) -> Result<SecurityReport, SymError> {
    Ok(check_inner(cfg, ctx, registry, None, false)?.0)
}

/// [`check_module`] plus its [`CheckStats`] (bailout counters), still on
/// the whole-graph path — the controller's differential-oracle mode.
pub fn check_module_with_stats(
    cfg: &ClickConfig,
    ctx: &SecurityContext,
    registry: &Registry,
) -> Result<(SecurityReport, CheckStats), SymError> {
    check_inner(cfg, ctx, registry, None, false)
}

/// Compositional variant of [`check_module`]: walks a memoized (or
/// freshly composed) [`SymSummary`] over the maximal chain-safe entry
/// chain and falls back to per-element execution at the chain boundary —
/// stateful elements, multi-port fan-out/fan-in, or unsummarizable
/// models. Verdicts are identical to [`check_module`] (the differential
/// suite holds the two together); only the work done differs. `source`
/// supplies cross-request memoization; `None` still composes summaries
/// but recomputes them per call.
pub fn check_module_summarized(
    cfg: &ClickConfig,
    ctx: &SecurityContext,
    registry: &Registry,
    source: Option<&dyn SummarySource>,
) -> Result<(SecurityReport, CheckStats), SymError> {
    check_inner(cfg, ctx, registry, source, true)
}

fn check_inner(
    cfg: &ClickConfig,
    ctx: &SecurityContext,
    registry: &Registry,
    source: Option<&dyn SummarySource>,
    use_summaries: bool,
) -> Result<(SecurityReport, CheckStats), SymError> {
    let mut stats = CheckStats::default();
    if ctx.class == RequesterClass::Operator {
        // Trusted: static analysis is advisory only.
        return Ok((
            SecurityReport {
                verdict: Verdict::Safe,
                flows_checked: 0,
                violations: Vec::new(),
                unknowns: Vec::new(),
                egress_flows: Vec::new(),
            },
            stats,
        ));
    }

    // With a model memo available (compositional mode), the whole wired
    // graph is shared across requests; the oracle rebuilds from scratch.
    let graph: std::sync::Arc<crate::SymGraph> = match source.and_then(|s| s.models()) {
        Some(cache) => cache.graph(cfg, registry)?,
        None => std::sync::Arc::new(build_sym_graph_cached(cfg, registry, None)?),
    };
    let mut report = SecurityReport {
        verdict: Verdict::Safe,
        flows_checked: 0,
        violations: Vec::new(),
        unknowns: Vec::new(),
        egress_flows: Vec::new(),
    };
    let opts = ExecOptions {
        max_hops: 50_000,
        max_node_visits: 6,
        observe: Observe::EgressOnly,
    };

    let entries: Vec<String> = cfg
        .elements
        .iter()
        .filter(|e| e.class == "FromNetfront" || e.class == "FromDevice")
        .map(|e| e.name.clone())
        .collect();
    // A module with no netfront ingress (e.g. a pure stock model) is
    // checked by injecting at its first node.
    let entries = if entries.is_empty() {
        cfg.elements
            .first()
            .map(|e| vec![e.name.clone()])
            .unwrap_or_default()
    } else {
        entries
    };

    for entry in entries {
        let entry_idx = graph.node_index(&entry)?;
        let mut flows: Vec<(u16, SymPacket)> = Vec::new();
        let mut summarized = false;
        if use_summaries {
            let chain = entry_chain(&graph, entry_idx);
            if chain.nodes.len() >= 2 {
                let summary: Option<Arc<SymSummary>> = match source {
                    Some(src) => match src.lookup(cfg, &chain.nodes) {
                        Some(s) => {
                            stats.summary_cache_hits += 1;
                            Some(s)
                        }
                        None => {
                            // Prefer the fleet-wide per-element summary
                            // memo when the source exposes one: only the
                            // compose fold runs per miss. Equivalent to
                            // summarize_chain on the built graph (node
                            // indices follow declaration order).
                            let computed = match src.models() {
                                Some(cache) => cache.chain_summary(cfg, &chain.nodes, registry)?,
                                None => summarize_chain(&graph, &chain.nodes),
                            };
                            computed.map(|s| {
                                stats.summary_cache_misses += 1;
                                let s = Arc::new(s);
                                src.store(cfg, &chain.nodes, Arc::clone(&s));
                                s
                            })
                        }
                    },
                    None => summarize_chain(&graph, &chain.nodes).map(Arc::new),
                };
                if let Some(s) = summary {
                    summarized = true;
                    stats.summary_chain_nodes += chain.nodes.len() as u64;
                    for (outcome, pkt) in s.apply(&SymPacket::unconstrained(), &chain.nodes) {
                        match outcome {
                            BranchOutcome::Egress(iface) => flows.push((iface, pkt)),
                            BranchOutcome::Continue => {
                                // Resume per-element execution at the
                                // chain boundary; a chain with no
                                // continuation edge drops continues, as
                                // the runtime would.
                                if let Some((n, p)) = chain.cont {
                                    let res = graph.run(n, p, pkt, &opts);
                                    stats.hop_cap_bailouts += res.hop_cap_hits;
                                    stats.visit_cap_bailouts += res.visit_cap_hits;
                                    flows.extend(res.egress);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !summarized {
            let res = graph.run(entry_idx, 0, SymPacket::unconstrained(), &opts);
            stats.hop_cap_bailouts += res.hop_cap_hits;
            stats.visit_cap_bailouts += res.visit_cap_hits;
            flows.extend(res.egress);
        }
        for (_iface, flow) in &flows {
            report.flows_checked += 1;
            let mut tris = vec![anti_spoof(flow, ctx), ownership(flow, ctx)];
            if ctx.class == RequesterClass::ThirdParty {
                tris.push(default_off(flow, ctx));
            }
            for t in tris {
                match t {
                    Tri::Holds => {}
                    Tri::Unknown(origin) => {
                        let acceptable =
                            ctx.class == RequesterClass::Client && origin == Origin::Decap;
                        if !acceptable {
                            report.unknowns.push(format!(
                                "runtime-dependent ({origin:?}) flow: {}",
                                flow.render_fields()
                            ));
                        }
                    }
                    Tri::Violated(why) => report.violations.push(why),
                }
            }
        }
        report.egress_flows.extend(flows.drain(..).map(|(_, f)| f));
    }

    report.verdict = if !report.violations.is_empty() {
        Verdict::Reject
    } else if !report.unknowns.is_empty() {
        Verdict::SafeWithSandbox
    } else {
        Verdict::Safe
    };
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASSIGNED: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
    const OWNER: Ipv4Addr = Ipv4Addr::new(172, 16, 15, 133);

    fn ctx(class: RequesterClass) -> SecurityContext {
        SecurityContext {
            assigned_addr: ASSIGNED,
            registered: vec![OWNER],
            class,
        }
    }

    fn verdict(cfg: &str, class: RequesterClass) -> Verdict {
        let cfg = ClickConfig::parse(cfg).unwrap();
        check_module(&cfg, &ctx(class), &Registry::standard())
            .unwrap()
            .verdict
    }

    /// The paper's Figure 4 batcher: safe for everyone — it only delivers
    /// the tenant's own traffic to the tenant's registered address.
    #[test]
    fn batcher_is_safe() {
        let cfg = r#"
            FromNetfront()
              -> IPFilter(allow udp dst port 1500)
              -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
              -> TimedUnqueue(120, 100)
              -> ToNetfront();
        "#;
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Safe);
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Safe);
        assert_eq!(verdict(cfg, RequesterClass::Operator), Verdict::Safe);
    }

    /// A plain forwarder transits foreign traffic: rejected for tenants.
    #[test]
    fn transit_forwarder_rejected() {
        let cfg = "FromNetfront() -> Counter() -> ToNetfront();";
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Reject);
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Reject);
        assert_eq!(verdict(cfg, RequesterClass::Operator), Verdict::Safe);
    }

    /// A module spoofing a fixed foreign source: rejected.
    #[test]
    fn spoofing_rejected() {
        let cfg = "FromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();";
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Reject);
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Reject);
    }

    /// A responder (destination bound to ingress source) is implicitly
    /// authorized.
    #[test]
    fn responder_is_safe() {
        let cfg = "FromNetfront() -> ICMPPingResponder() -> ToNetfront();";
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Safe);
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Safe);
    }

    /// Self-originated traffic to an unregistered constant destination:
    /// fine for a client, default-off violation for a third party.
    #[test]
    fn third_party_default_off() {
        let cfg = "FromNetfront() -> SetIPSrc(192.0.2.10) -> SetIPDst(9.9.9.9) -> ToNetfront();";
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Reject);
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Safe);
    }

    /// Tunnel decapsulation: unknown-at-runtime destinations sandbox the
    /// third party but are acceptable for a client.
    #[test]
    fn tunnel_decap_classes_differ() {
        let cfg = "FromNetfront() -> UDPTunnelDecap() -> ToNetfront();";
        assert_eq!(
            verdict(cfg, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
        assert_eq!(verdict(cfg, RequesterClass::Client), Verdict::Safe);
    }

    /// Opaque x86 processing always needs the sandbox for tenants.
    #[test]
    fn opaque_vm_sandboxed() {
        let cfg = "FromNetfront() -> StockX86VM() -> ToNetfront();";
        assert_eq!(
            verdict(cfg, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
        assert_eq!(
            verdict(cfg, RequesterClass::Client),
            Verdict::SafeWithSandbox
        );
        assert_eq!(verdict(cfg, RequesterClass::Operator), Verdict::Safe);
    }

    /// A module that drops everything is vacuously safe.
    #[test]
    fn black_hole_is_safe() {
        let cfg = "FromNetfront() -> Discard();";
        assert_eq!(verdict(cfg, RequesterClass::ThirdParty), Verdict::Safe);
    }
}
