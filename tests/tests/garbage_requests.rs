//! Regression tests: malformed tenant input must surface as typed
//! `DeployError`s, never as a controller panic. Requests are built both
//! from hostile text and programmatically via `ClientRequest::click` /
//! `ClientRequest::stock`, which bypass every parse-time check.

use innet::prelude::*;

fn fresh() -> Controller {
    let mut c = Controller::new(Topology::figure3());
    c.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    c
}

/// Every deploy below must return; `Err` is fine, unwinding is not.
fn deploy_must_not_panic(
    label: &str,
    request: ClientRequest,
) -> Result<DeployResponse, DeployError> {
    let mut c = fresh();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.deploy("mobile-7", request)
    }));
    outcome.unwrap_or_else(|_| panic!("deploy panicked on {label}"))
}

#[test]
fn unknown_element_class_is_a_typed_error() {
    let req = ClientRequest::parse("module m:\nFromNetfront() -> Frobnicator(3) -> ToNetfront();")
        .unwrap();
    let err = deploy_must_not_panic("unknown element class", req).unwrap_err();
    // The lint pass (IN-L002) catches this before symbolic modeling; both
    // are typed refusals.
    assert!(
        matches!(err, DeployError::BadConfig(_) | DeployError::Lint(_)),
        "{err}"
    );
}

#[test]
fn dangling_connections_are_a_typed_error() {
    // A connection between elements that were never declared.
    let mut cfg = ClickConfig::new();
    cfg.connect("ghost", 0, "phantom", 0);
    let req = ClientRequest::click("m", cfg);
    let err = deploy_must_not_panic("dangling connection", req).unwrap_err();
    // The lint pass (IN-L005) catches this before symbolic modeling; both
    // are typed refusals.
    assert!(
        matches!(err, DeployError::BadConfig(_) | DeployError::Lint(_)),
        "{err}"
    );
}

#[test]
fn empty_config_does_not_panic() {
    // Zero elements, zero connections: nothing to check, nothing to
    // crash on. Accept or reject, but return.
    let req = ClientRequest::click("m", ClickConfig::new());
    let _ = deploy_must_not_panic("empty config", req);
}

#[test]
fn self_loop_does_not_panic() {
    // An element wired to itself: the symbolic executor must bound the
    // loop rather than recurse forever or panic.
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("c", "Counter", &[]);
    cfg.connect("in", 0, "c", 0);
    cfg.connect("c", 0, "c", 0);
    let req = ClientRequest::click("m", cfg);
    let _ = deploy_must_not_panic("self loop", req);
}

#[test]
fn hostile_arguments_do_not_panic() {
    // Arguments that are not remotely parseable as what the element
    // expects.
    for args in [
        &["-1"][..],
        &["999999999999999999999999"][..],
        &["\u{0}\u{ffff}"][..],
        &["$SELF$SELF$SELF"][..],
        &[""][..],
    ] {
        let mut cfg = ClickConfig::new();
        cfg.add_element("in", "FromNetfront", &[]);
        cfg.add_element("f", "IPFilter", args);
        cfg.add_element("out", "ToNetfront", &[]);
        cfg.connect("in", 0, "f", 0);
        cfg.connect("f", 0, "out", 0);
        let req = ClientRequest::click("m", cfg);
        let _ = deploy_must_not_panic("hostile args", req);
    }
}

#[test]
fn unknown_client_is_a_typed_error() {
    let mut c = fresh();
    let req = ClientRequest::parse("stock s: geo-dns").unwrap();
    let err = c.deploy("nobody", req).unwrap_err();
    assert!(matches!(err, DeployError::UnknownClient(_)), "{err}");
    // Unknown-client outcomes are not verdicts about the request and must
    // not be memoized.
    assert_eq!(c.cached_verdicts(), 0);
}

#[test]
fn kill_of_unknown_module_is_a_typed_error() {
    let mut c = fresh();
    assert!(matches!(
        c.kill(12345),
        Err(DeployError::NoSuchModule(12345))
    ));
}

#[test]
fn garbage_requirements_are_typed_errors() {
    // A requirement way-point that exists in no network.
    let req = ClientRequest::stock("m", StockModule::GeoDns)
        .require(Requirement::parse("reach from internet -> Narnia").unwrap());
    let err = deploy_must_not_panic("unknown way-point", req).unwrap_err();
    assert!(
        matches!(
            err,
            DeployError::Verify(_) | DeployError::NoFeasiblePlacement { .. }
        ),
        "{err}"
    );
}
