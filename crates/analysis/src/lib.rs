//! Static analysis for Click configurations (the tier *before* SymNet).
//!
//! Two stages, both cheap and both conservative:
//!
//! 1. **Lint pass** ([`lint`]): structural rules over the element graph —
//!    arity and wiring mistakes, unreachable elements, dead outputs,
//!    queueless cycles — each reported as a structured [`Diagnostic`]
//!    with a stable rule id (`IN-L001`…). Lint *errors* let the
//!    controller reject a malformed configuration with a precise message
//!    instead of an opaque symbolic-execution failure.
//!
//! 2. **Field-effect abstract interpretation** ([`abstract_verdict`]):
//!    composes the per-element summaries registered in
//!    [`innet_click::Registry`] along every graph path with a worklist
//!    algorithm, tracking for each header field whether it still carries
//!    its ingress value, a known constant, or a runtime-chosen value.
//!    When the resulting abstract egress flows decide every security
//!    rule, the controller takes a **fast path** that skips symbolic
//!    execution entirely; whenever anything is uncertain the function
//!    returns `None` and the controller falls back to SymNet.
//!
//! The soundness contract of the fast path — it may only fire when it
//! agrees with what SymNet would conclude — is enforced by construction
//! (summaries mirror the symbolic models, and every approximation is
//! forced toward "inconclusive") and checked end-to-end by a
//! differential property test over generated configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absint;
mod lint;

pub use absint::{abstract_verdict, flow_effects, AnalysisReport, FlowEffect};
pub use lint::{lint, Diagnostic, LintReport, Severity};
