//! Stock processing modules (paper §4.1).
//!
//! Stock modules are expressed as tiny Click configurations around
//! `Stock*` pseudo-elements with hand-written abstract models in
//! `innet-symnet`. The address argument is the module's assigned address,
//! so the configurations can only be produced once the controller has
//! allocated one.

use innet_click::ClickConfig;
use std::net::Ipv4Addr;

use crate::request::StockModule;

/// Builds the Click-level configuration of a stock module, parameterized
/// by the address the controller assigned to it.
pub fn stock_config(kind: StockModule, assigned: Ipv4Addr) -> ClickConfig {
    let text = match kind {
        StockModule::ReverseHttpProxy => format!(
            "in :: FromNetfront(); srv :: StockReverseProxy({assigned}); \
             out :: ToNetfront(); in -> srv -> out;"
        ),
        StockModule::ExplicitProxy => format!(
            "in :: FromNetfront(); srv :: StockExplicitProxy({assigned}); \
             out :: ToNetfront(); in -> srv -> out;"
        ),
        StockModule::GeoDns => format!(
            "in :: FromNetfront(); srv :: StockDNSServer({assigned}); \
             out :: ToNetfront(); in -> srv -> out;"
        ),
        StockModule::X86Vm => {
            "in :: FromNetfront(); vm :: StockX86VM(); out :: ToNetfront(); in -> vm -> out;"
                .to_string()
        }
    };
    ClickConfig::parse(&text).expect("stock configurations are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_symnet::{check_module, RequesterClass, SecurityContext, Verdict};

    fn check(kind: StockModule, class: RequesterClass) -> Verdict {
        let assigned = Ipv4Addr::new(203, 0, 113, 10);
        let cfg = stock_config(kind, assigned);
        check_module(
            &cfg,
            &SecurityContext {
                assigned_addr: assigned,
                registered: vec![Ipv4Addr::new(198, 51, 100, 1)],
                class,
            },
            &innet_click::Registry::standard(),
        )
        .unwrap()
        .verdict
    }

    #[test]
    fn reverse_proxy_safe_everywhere() {
        assert_eq!(
            check(StockModule::ReverseHttpProxy, RequesterClass::ThirdParty),
            Verdict::Safe
        );
        assert_eq!(
            check(StockModule::ReverseHttpProxy, RequesterClass::Client),
            Verdict::Safe
        );
    }

    #[test]
    fn dns_safe_everywhere() {
        assert_eq!(
            check(StockModule::GeoDns, RequesterClass::ThirdParty),
            Verdict::Safe
        );
    }

    #[test]
    fn explicit_proxy_by_class() {
        // An explicit proxy originates connections to request-chosen
        // destinations: fine for a client (§2.1 "such customers can also
        // deploy explicit proxies"), sandbox-worthy for a third party.
        assert_eq!(
            check(StockModule::ExplicitProxy, RequesterClass::Client),
            Verdict::Safe
        );
        assert_eq!(
            check(StockModule::ExplicitProxy, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
    }

    #[test]
    fn x86_always_sandboxed_for_tenants() {
        assert_eq!(
            check(StockModule::X86Vm, RequesterClass::ThirdParty),
            Verdict::SafeWithSandbox
        );
        assert_eq!(
            check(StockModule::X86Vm, RequesterClass::Client),
            Verdict::SafeWithSandbox
        );
    }
}
