//! Abstract models for every known element class, and the builder that
//! turns a Click configuration into a [`SymGraph`].
//!
//! Model fidelity follows the paper's methodology (§4.3): models have no
//! loops and no dynamic allocation, and middlebox flow state is pushed into
//! the flow itself (see [`FirewallModel`]). Where a behaviour cannot be
//! modeled (raw byte classifiers, DPI payload matching), the model
//! *over-approximates* — it lets the packet take every possible branch — so
//! security verdicts stay sound.

use std::net::Ipv4Addr;
use std::sync::Arc;

use innet_click::{
    elements as el,
    elements::{FieldSpec, FilterAction},
    ClickConfig, Registry,
};
use innet_packet::{pattern::PatternExpr, Cidr, IpProto};

use crate::{
    field::Field,
    model::{SymElement, SymError, SymGraph, SymOut},
    packet::SymPacket,
    pattern::{refute, satisfy},
    value::{Origin, RangeSet, SymValue},
};

fn addr(a: Ipv4Addr) -> u64 {
    u32::from(a) as u64
}

// ---------------------------------------------------------------------------
// Generic models
// ---------------------------------------------------------------------------

/// Passes the packet through unchanged (counters, queues, shapers, checks —
/// anything invisible at the header level; SymNet does not model time).
pub struct IdentityModel(pub &'static str);

impl SymElement for IdentityModel {
    fn model_name(&self) -> &'static str {
        self.0
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        vec![SymOut::Port(0, pkt)]
    }
}

/// Terminal egress through a numbered interface (`ToNetfront`).
pub struct EgressModel(pub u16);

impl SymElement for EgressModel {
    fn model_name(&self) -> &'static str {
        "ToNetfront"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        vec![SymOut::Egress(self.0, pkt)]
    }
}

/// Absorbs everything (`Discard`, `Idle`).
pub struct DropModel(pub &'static str);

impl SymElement for DropModel {
    fn model_name(&self) -> &'static str {
        self.0
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, _pkt: SymPacket) -> Vec<SymOut> {
        vec![]
    }
}

/// Over-approximation: the packet may take any of `n` outputs without new
/// constraints (raw `Classifier` byte patterns are below the abstraction
/// level of the field model; `Tee` genuinely duplicates).
pub struct AnyOutputModel {
    /// Display name.
    pub name: &'static str,
    /// Number of outputs.
    pub n: usize,
}

impl SymElement for AnyOutputModel {
    fn model_name(&self) -> &'static str {
        self.name
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        (0..self.n).map(|i| SymOut::Port(i, pkt.clone())).collect()
    }
}

// ---------------------------------------------------------------------------
// Classification / filtering
// ---------------------------------------------------------------------------

/// `IPClassifier`: first-match-wins over pattern rules, modeled by
/// sequential satisfy/refute splitting.
pub struct IpClassifierModel {
    rules: Vec<PatternExpr>,
}

impl SymElement for IpClassifierModel {
    fn model_name(&self) -> &'static str {
        "IPClassifier"
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        let mut out = Vec::new();
        let mut remaining = vec![pkt];
        for (i, rule) in self.rules.iter().enumerate() {
            for b in remaining.iter().flat_map(|r| satisfy(r, rule)) {
                out.push(SymOut::Port(i, b));
            }
            remaining = remaining.iter().flat_map(|r| refute(r, rule)).collect();
            if remaining.is_empty() {
                break;
            }
        }
        out
    }
}

/// `IPFilter`: ordered allow/deny with implicit final deny.
pub struct IpFilterModel {
    rules: Vec<(FilterAction, PatternExpr)>,
}

impl SymElement for IpFilterModel {
    fn model_name(&self) -> &'static str {
        "IPFilter"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        let mut out = Vec::new();
        let mut remaining = vec![pkt];
        for (action, rule) in &self.rules {
            if matches!(action, FilterAction::Allow) {
                for b in remaining.iter().flat_map(|r| satisfy(r, rule)) {
                    out.push(SymOut::Port(0, b));
                }
            }
            remaining = remaining.iter().flat_map(|r| refute(r, rule)).collect();
            if remaining.is_empty() {
                break;
            }
        }
        out
    }
}

/// `StaticIPLookup`: longest-prefix-match branching on the destination.
pub struct StaticLookupModel {
    /// Routes sorted by descending prefix length.
    routes: Vec<(Cidr, usize)>,
}

impl SymElement for StaticLookupModel {
    fn model_name(&self) -> &'static str {
        "StaticIPLookup"
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        let mut out = Vec::new();
        let mut remaining = vec![pkt];
        for (cidr, port) in &self.routes {
            let set = RangeSet::range(cidr.first_u32() as u64, cidr.last_u32() as u64);
            for r in &remaining {
                let mut b = r.clone();
                if b.constrain(Field::IpDst, &set) {
                    out.push(SymOut::Port(*port, b));
                }
            }
            remaining = remaining
                .into_iter()
                .filter_map(|mut r| {
                    if r.constrain_not(Field::IpDst, &set) {
                        Some(r)
                    } else {
                        None
                    }
                })
                .collect();
            if remaining.is_empty() {
                break;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Header manipulation
// ---------------------------------------------------------------------------

/// Writes one field to a constant (`SetIPSrc`, `SetIPDst`, `SetTOS`,
/// `EtherEncap`'s IP-invisible cousin is identity).
pub struct SetFieldModel {
    name: &'static str,
    field: Field,
    value: u64,
}

impl SymElement for SetFieldModel {
    fn model_name(&self) -> &'static str {
        self.name
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        pkt.write(self.field, SymValue::Const(self.value));
        vec![SymOut::Port(0, pkt)]
    }
}

/// `DecIPTTL`: expired branch dropped; surviving branch gets a written,
/// range-constrained TTL.
pub struct DecTtlModel;

impl SymElement for DecTtlModel {
    fn model_name(&self) -> &'static str {
        "DecIPTTL"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        match pkt.get(Field::Ttl) {
            SymValue::Const(c) => {
                if c <= 1 {
                    vec![]
                } else {
                    let mut p = pkt;
                    p.write(Field::Ttl, SymValue::Const(c - 1));
                    vec![SymOut::Port(0, p)]
                }
            }
            SymValue::Var(_) => {
                let mut p = pkt;
                if !p.constrain(Field::Ttl, &RangeSet::range(2, 255)) {
                    return vec![];
                }
                let v = p.fresh(Origin::Computed);
                if let SymValue::Var(id) = v {
                    // Best-effort bound: ttl-1 of [2,255] is [1,254].
                    let _ = id; // Range recorded below via constrain.
                }
                p.write(Field::Ttl, v);
                p.constrain(Field::Ttl, &RangeSet::range(1, 254));
                vec![SymOut::Port(0, p)]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stateful middleboxes
// ---------------------------------------------------------------------------

/// `StatefulFirewall` with state pushed into the flow: the outbound
/// direction tags conforming flows (`fw_tag := 1`), the inbound direction
/// only passes tagged flows — exactly the paper's Figure 2 model, which
/// makes the analysis oblivious to flow arrival order.
pub struct FirewallModel {
    allow: Vec<PatternExpr>,
}

impl SymElement for FirewallModel {
    fn model_name(&self) -> &'static str {
        "StatefulFirewall"
    }
    fn exec(&self, in_port: usize, pkt: SymPacket) -> Vec<SymOut> {
        match in_port {
            0 => self
                .allow
                .iter()
                .flat_map(|r| satisfy(&pkt, r))
                .map(|mut b| {
                    b.write(Field::FwTag, SymValue::Const(1));
                    SymOut::Port(0, b)
                })
                .collect(),
            _ => {
                let mut b = pkt;
                if b.constrain_eq(Field::FwTag, 1) {
                    vec![SymOut::Port(1, b)]
                } else {
                    vec![]
                }
            }
        }
    }
}

/// `IPNAT`: outbound rewrites the source to the advertised public address
/// (a constant that will generally differ from the module's assigned
/// address — the spoofing violation Table 1 reports); inbound produces
/// unknown internal endpoints.
pub struct NatModel {
    public: u64,
}

impl SymElement for NatModel {
    fn model_name(&self) -> &'static str {
        "IPNAT"
    }
    fn exec(&self, in_port: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        match in_port {
            0 => {
                pkt.write(Field::IpSrc, SymValue::Const(self.public));
                let p = pkt.fresh(Origin::Computed);
                pkt.write(Field::SrcPort, p);
                vec![SymOut::Port(0, pkt)]
            }
            _ => {
                if !pkt.constrain_eq(Field::IpDst, self.public) {
                    return vec![];
                }
                let a = pkt.fresh(Origin::Computed);
                pkt.write(Field::IpDst, a);
                let p = pkt.fresh(Origin::Computed);
                pkt.write(Field::DstPort, p);
                vec![SymOut::Port(1, pkt)]
            }
        }
    }
}

/// `IPRewriter`: forward direction overwrites the configured fields with
/// constants; reverse direction restores unknown originals.
pub struct RewriterModel {
    pattern: el::RewritePattern,
}

impl SymElement for RewriterModel {
    fn model_name(&self) -> &'static str {
        "IPRewriter"
    }
    fn exec(&self, in_port: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        match in_port {
            0 => {
                if let FieldSpec::Set(a) = self.pattern.saddr {
                    pkt.write(Field::IpSrc, SymValue::Const(addr(a)));
                }
                if let FieldSpec::Set(p) = self.pattern.sport {
                    pkt.write(Field::SrcPort, SymValue::Const(p as u64));
                }
                if let FieldSpec::Set(a) = self.pattern.daddr {
                    pkt.write(Field::IpDst, SymValue::Const(addr(a)));
                }
                if let FieldSpec::Set(p) = self.pattern.dport {
                    pkt.write(Field::DstPort, SymValue::Const(p as u64));
                }
                vec![SymOut::Port(self.pattern.fwd_out, pkt)]
            }
            _ => {
                for f in [Field::IpSrc, Field::SrcPort, Field::IpDst, Field::DstPort] {
                    let v = pkt.fresh(Origin::Computed);
                    pkt.write(f, v);
                }
                vec![SymOut::Port(self.pattern.rev_out, pkt)]
            }
        }
    }
}

/// `TransparentProxy`: branches on interception, redirecting matching
/// traffic to the proxy; the reverse path restores a (statically unknown)
/// original server as the source — the spoof Table 1 flags.
pub struct TransparentProxyModel {
    proxy: u64,
    proxy_port: u64,
    intercept_port: u64,
}

impl SymElement for TransparentProxyModel {
    fn model_name(&self) -> &'static str {
        "TransparentProxy"
    }
    fn exec(&self, in_port: usize, pkt: SymPacket) -> Vec<SymOut> {
        match in_port {
            0 => {
                let mut out = Vec::new();
                // Intercepted branch: TCP to the intercept port.
                let mut hit = pkt.clone();
                if hit.constrain_eq(Field::Proto, IpProto::Tcp.number() as u64)
                    && hit.constrain_eq(Field::DstPort, self.intercept_port)
                {
                    hit.write(Field::IpDst, SymValue::Const(self.proxy));
                    hit.write(Field::DstPort, SymValue::Const(self.proxy_port));
                    out.push(SymOut::Port(0, hit));
                }
                // Pass-through branches: not TCP, or another port.
                let mut not_tcp = pkt.clone();
                if not_tcp.constrain_not(
                    Field::Proto,
                    &RangeSet::single(IpProto::Tcp.number() as u64),
                ) {
                    out.push(SymOut::Port(0, not_tcp));
                }
                let mut other_port = pkt;
                if other_port.constrain_eq(Field::Proto, IpProto::Tcp.number() as u64)
                    && other_port
                        .constrain_not(Field::DstPort, &RangeSet::single(self.intercept_port))
                {
                    out.push(SymOut::Port(0, other_port));
                }
                out
            }
            _ => {
                let mut p = pkt;
                let a = p.fresh(Origin::Computed);
                p.write(Field::IpSrc, a);
                let sp = p.fresh(Origin::Computed);
                p.write(Field::SrcPort, sp);
                vec![SymOut::Port(1, p)]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tunnels
// ---------------------------------------------------------------------------

/// Tunnel encapsulation: pushes a fresh outer header with constant
/// endpoints; the inner header survives untouched underneath.
pub struct TunnelEncapModel {
    name: &'static str,
    proto: u64,
    src: u64,
    sport: Option<u64>,
    dst: u64,
    dport: Option<u64>,
}

impl SymElement for TunnelEncapModel {
    fn model_name(&self) -> &'static str {
        self.name
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        pkt.push_layer();
        pkt.write(Field::Proto, SymValue::Const(self.proto));
        pkt.write(Field::IpSrc, SymValue::Const(self.src));
        pkt.write(Field::IpDst, SymValue::Const(self.dst));
        if let Some(sp) = self.sport {
            pkt.write(Field::SrcPort, SymValue::Const(sp));
        }
        if let Some(dp) = self.dport {
            pkt.write(Field::DstPort, SymValue::Const(dp));
        }
        pkt.write(Field::Ttl, SymValue::Const(64));
        vec![SymOut::Port(0, pkt)]
    }
}

/// Tunnel decapsulation. If this branch was encapsulated by a modeled
/// element, the inner header is restored exactly (invariants preserved).
/// Otherwise the revealed header is *unknown until runtime*: every field
/// becomes a fresh [`Origin::Decap`] variable — the situation that makes a
/// third-party tunnel endpoint sandbox-worthy in Table 1.
pub struct TunnelDecapModel {
    name: &'static str,
    proto: u64,
}

impl SymElement for TunnelDecapModel {
    fn model_name(&self) -> &'static str {
        self.name
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        if !pkt.constrain_eq(Field::Proto, self.proto) {
            return vec![];
        }
        if !pkt.pop_layer() {
            pkt.havoc_all(Origin::Decap);
            // Decapsulation cannot conjure firewall authorizations.
            pkt.write(Field::FwTag, SymValue::Const(0));
            pkt.constrain(Field::TcpSyn, &RangeSet::range(0, 1));
        }
        vec![SymOut::Port(0, pkt)]
    }
}

// ---------------------------------------------------------------------------
// Misc element models
// ---------------------------------------------------------------------------

/// `IPMulticast`: one branch per configured replica destination.
pub struct MulticastModel {
    dsts: Vec<u64>,
}

impl SymElement for MulticastModel {
    fn model_name(&self) -> &'static str {
        "IPMulticast"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, pkt: SymPacket) -> Vec<SymOut> {
        self.dsts
            .iter()
            .map(|&d| {
                let mut b = pkt.clone();
                b.write(Field::IpDst, SymValue::Const(d));
                SymOut::Port(0, b)
            })
            .collect()
    }
}

/// `ICMPPingResponder`: ICMP echo traffic is turned around — destination
/// bound to the ingress source.
pub struct PingResponderModel;

impl SymElement for PingResponderModel {
    fn model_name(&self) -> &'static str {
        "ICMPPingResponder"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        if !pkt.constrain_eq(Field::Proto, IpProto::Icmp.number() as u64) {
            return vec![];
        }
        let src = pkt.get(Field::IpSrc);
        let dst = pkt.get(Field::IpDst);
        pkt.write(Field::IpSrc, dst);
        pkt.write(Field::IpDst, src);
        vec![SymOut::Port(0, pkt)]
    }
}

/// `ChangeEnforcer` (static view): module-to-world traffic must carry the
/// module's source address. (The implicit-authorization state is enforced
/// at runtime; statically we keep the stateless part.)
pub struct ChangeEnforcerModel {
    module: u64,
}

impl SymElement for ChangeEnforcerModel {
    fn model_name(&self) -> &'static str {
        "ChangeEnforcer"
    }
    fn exec(&self, in_port: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        match in_port {
            0 => vec![SymOut::Port(0, pkt)],
            _ => {
                if pkt.constrain_eq(Field::IpSrc, self.module) {
                    vec![SymOut::Port(1, pkt)]
                } else {
                    vec![]
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stock / endpoint models
// ---------------------------------------------------------------------------

/// The stock explicit (forward) proxy: terminates client connections and
/// originates its own connections, as itself, to destinations chosen by
/// the request content — unknown until runtime.
pub struct ExplicitProxyModel {
    /// The proxy's own (assigned) address.
    pub own: u64,
}

impl SymElement for ExplicitProxyModel {
    fn model_name(&self) -> &'static str {
        "StockExplicitProxy"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        pkt.write(Field::IpSrc, SymValue::Const(self.own));
        let d = pkt.fresh(Origin::Computed);
        pkt.write(Field::IpDst, d);
        let sp = pkt.fresh(Origin::Computed);
        pkt.write(Field::SrcPort, sp);
        let dp = pkt.fresh(Origin::Computed);
        pkt.write(Field::DstPort, dp);
        let pay = pkt.fresh(Origin::Computed);
        pkt.write(Field::Payload, pay);
        vec![SymOut::Port(0, pkt)]
    }
}

/// An opaque x86 VM: anything may come out. All fields become
/// [`Origin::Opaque`] variables.
pub struct OpaqueVmModel;

impl SymElement for OpaqueVmModel {
    fn model_name(&self) -> &'static str {
        "StockX86VM"
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        pkt.havoc_all(Origin::Opaque);
        vec![SymOut::Port(0, pkt)]
    }
}

/// A request/response server that answers each packet to its sender: the
/// shape shared by the paper's example server S (Figure 2), the stock
/// geolocation DNS server, and the stock reverse HTTP proxy.
///
/// The response's destination is *bound to the ingress source variable*
/// (implicit authorization recognizable by symbolic execution), and the
/// source is either the server's own constant address or the flipped
/// ingress destination.
pub struct TurnaroundServerModel {
    name: &'static str,
    /// Protocol the server accepts, if restricted.
    proto: Option<u64>,
    /// Destination port the server listens on, if restricted.
    listen_port: Option<u64>,
    /// The server's own address: responses carry it as source. `None`
    /// flips the ingress destination instead (the Figure 2 server).
    own_addr: Option<u64>,
    /// Whether the response payload differs from the request payload.
    fresh_payload: bool,
}

impl SymElement for TurnaroundServerModel {
    fn model_name(&self) -> &'static str {
        self.name
    }
    fn chain_safe(&self) -> bool {
        true
    }
    fn exec(&self, _p: usize, mut pkt: SymPacket) -> Vec<SymOut> {
        if let Some(proto) = self.proto {
            if !pkt.constrain_eq(Field::Proto, proto) {
                return vec![];
            }
        }
        if let Some(port) = self.listen_port {
            if !pkt.constrain_eq(Field::DstPort, port) {
                return vec![];
            }
        }
        let src = pkt.get(Field::IpSrc);
        let dst = pkt.get(Field::IpDst);
        let sport = pkt.get(Field::SrcPort);
        let dport = pkt.get(Field::DstPort);
        match self.own_addr {
            Some(a) => pkt.write(Field::IpSrc, SymValue::Const(a)),
            None => pkt.write(Field::IpSrc, dst),
        }
        pkt.write(Field::IpDst, src);
        pkt.write(Field::SrcPort, dport);
        pkt.write(Field::DstPort, sport);
        if self.fresh_payload {
            let p = pkt.fresh(Origin::Computed);
            pkt.write(Field::Payload, p);
        }
        vec![SymOut::Port(0, pkt)]
    }
}

impl TurnaroundServerModel {
    /// The paper's Figure 2 server S: UDP, flips addresses, payload kept.
    pub fn paper_server() -> TurnaroundServerModel {
        TurnaroundServerModel {
            name: "ServerS",
            proto: Some(IpProto::Udp.number() as u64),
            listen_port: None,
            own_addr: None,
            fresh_payload: false,
        }
    }

    /// The stock geolocation DNS server.
    pub fn dns(own: Ipv4Addr) -> TurnaroundServerModel {
        TurnaroundServerModel {
            name: "StockDNSServer",
            proto: Some(IpProto::Udp.number() as u64),
            listen_port: Some(53),
            own_addr: Some(addr(own)),
            fresh_payload: true,
        }
    }

    /// The stock reverse HTTP proxy.
    pub fn reverse_proxy(own: Ipv4Addr) -> TurnaroundServerModel {
        TurnaroundServerModel {
            name: "StockReverseProxy",
            proto: Some(IpProto::Tcp.number() as u64),
            listen_port: Some(80),
            own_addr: Some(addr(own)),
            fresh_payload: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

fn downcast_model(
    class: &str,
    args: &[String],
    registry: &Registry,
) -> Result<Box<dyn SymElement>, SymError> {
    // Instantiate the concrete element so argument parsing (and its error
    // reporting) is shared with the runtime, then read its configuration.
    let concrete = registry
        .instantiate(class, args)
        .map_err(|e| SymError::Config(e.to_string()))?;
    let any = concrete.as_any();
    let model: Box<dyn SymElement> = match class {
        "FromNetfront" | "FromDevice" => Box::new(IdentityModel("FromNetfront")),
        "ToNetfront" | "ToDevice" => {
            let t = any.downcast_ref::<el::ToNetfront>().expect("class matches");
            Box::new(EgressModel(t.iface()))
        }
        "Discard" => Box::new(DropModel("Discard")),
        "Idle" => Box::new(DropModel("Idle")),
        "Classifier" => {
            let c = any.downcast_ref::<el::Classifier>().expect("class matches");
            Box::new(AnyOutputModel {
                name: "Classifier",
                n: innet_click::Element::ports(c).outputs,
            })
        }
        "IPClassifier" => {
            let c = any
                .downcast_ref::<el::IPClassifier>()
                .expect("class matches");
            Box::new(IpClassifierModel {
                rules: c.rules().to_vec(),
            })
        }
        "IPFilter" => {
            let f = any.downcast_ref::<el::IPFilter>().expect("class matches");
            Box::new(IpFilterModel {
                rules: f.rules().to_vec(),
            })
        }
        "CheckIPHeader" => Box::new(IdentityModel("CheckIPHeader")),
        "MarkIPHeader" => Box::new(IdentityModel("MarkIPHeader")),
        "DecIPTTL" => Box::new(DecTtlModel),
        "SetIPSrc" => {
            let s = any.downcast_ref::<el::SetIPSrc>().expect("class matches");
            Box::new(SetFieldModel {
                name: "SetIPSrc",
                field: Field::IpSrc,
                value: addr(s.addr()),
            })
        }
        "SetIPDst" => {
            let s = any.downcast_ref::<el::SetIPDst>().expect("class matches");
            Box::new(SetFieldModel {
                name: "SetIPDst",
                field: Field::IpDst,
                value: addr(s.addr()),
            })
        }
        "SetTOS" => {
            // Value re-parsed: SetTOS has no getter, but the arg is plain.
            let v: u64 = args
                .first()
                .and_then(|a| a.trim().parse().ok())
                .unwrap_or(0);
            Box::new(SetFieldModel {
                name: "SetTOS",
                field: Field::Tos,
                value: v,
            })
        }
        "Strip" | "EtherEncap" => Box::new(IdentityModel("L2")),
        "Counter" | "FlowMeter" => Box::new(IdentityModel("Measure")),
        "RateLimiter" | "BandwidthShaper" | "Queue" | "TimedUnqueue" => {
            // SymNet does not model time (paper §7): shapers and queues
            // are header-invisible.
            Box::new(IdentityModel("Timed"))
        }
        "StatefulFirewall" => {
            let f = any
                .downcast_ref::<el::StatefulFirewall>()
                .expect("class matches");
            Box::new(FirewallModel {
                allow: f.allow_rules().to_vec(),
            })
        }
        "IPNAT" => {
            let n = any.downcast_ref::<el::IpNat>().expect("class matches");
            Box::new(NatModel {
                public: addr(n.public_addr()),
            })
        }
        "IPRewriter" => {
            let r = any.downcast_ref::<el::IPRewriter>().expect("class matches");
            Box::new(RewriterModel {
                pattern: r.pattern().clone(),
            })
        }
        "TransparentProxy" => {
            let t = any
                .downcast_ref::<el::TransparentProxy>()
                .expect("class matches");
            let (p, pp, ip) = t.params();
            Box::new(TransparentProxyModel {
                proxy: addr(p),
                proxy_port: pp as u64,
                intercept_port: ip as u64,
            })
        }
        "UDPTunnelEncap" => {
            let t = any
                .downcast_ref::<el::UdpTunnelEncap>()
                .expect("class matches");
            let (src, sport, dst, dport) = t.params();
            Box::new(TunnelEncapModel {
                name: "UDPTunnelEncap",
                proto: IpProto::Udp.number() as u64,
                src: addr(src),
                sport: Some(sport as u64),
                dst: addr(dst),
                dport: Some(dport as u64),
            })
        }
        "UDPTunnelDecap" => Box::new(TunnelDecapModel {
            name: "UDPTunnelDecap",
            proto: IpProto::Udp.number() as u64,
        }),
        "IPEncap" => {
            let t = any.downcast_ref::<el::IpEncap>().expect("class matches");
            let (src, dst) = t.params();
            Box::new(TunnelEncapModel {
                name: "IPEncap",
                proto: IpProto::IpIp.number() as u64,
                src: addr(src),
                sport: None,
                dst: addr(dst),
                dport: None,
            })
        }
        "IPDecap" => Box::new(TunnelDecapModel {
            name: "IPDecap",
            proto: IpProto::IpIp.number() as u64,
        }),
        "RoundRobinSwitch" | "RandomSwitch" => {
            let n = concrete.ports().outputs;
            Box::new(AnyOutputModel { name: "Switch", n })
        }
        "Meter" => Box::new(AnyOutputModel {
            name: "Meter",
            n: 2,
        }),
        // Paint marks an annotation below the field model; CheckPaint may
        // route either way depending on it.
        "Paint" => Box::new(IdentityModel("Paint")),
        "CheckPaint" => Box::new(AnyOutputModel {
            name: "CheckPaint",
            n: 2,
        }),
        "Tee" => {
            let t = any.downcast_ref::<el::Tee>().expect("class matches");
            let n = innet_click::Element::ports(t).outputs;
            Box::new(AnyOutputModel { name: "Tee", n })
        }
        "IPMulticast" => {
            let m = any
                .downcast_ref::<el::IpMulticast>()
                .expect("class matches");
            Box::new(MulticastModel {
                dsts: m.destinations().iter().map(|&a| addr(a)).collect(),
            })
        }
        "DPI" => Box::new(AnyOutputModel { name: "DPI", n: 2 }),
        "ICMPPingResponder" => Box::new(PingResponderModel),
        "StaticIPLookup" => {
            let l = any
                .downcast_ref::<el::StaticIPLookup>()
                .expect("class matches");
            Box::new(StaticLookupModel {
                routes: l.routes().to_vec(),
            })
        }
        "ChangeEnforcer" => {
            let c = any
                .downcast_ref::<el::ChangeEnforcer>()
                .expect("class matches");
            Box::new(ChangeEnforcerModel {
                module: addr(c.params().0),
            })
        }
        other => return Err(SymError::NoModel(other.to_string())),
    };
    Ok(model)
}

/// Builds the abstract model for one element class.
///
/// Click classes are parsed through the concrete element implementation
/// (shared argument validation); the `Stock*` pseudo-classes used by the
/// controller's stock modules are handled directly.
pub fn model_for(
    class: &str,
    args: &[String],
    registry: &Registry,
) -> Result<Box<dyn SymElement>, SymError> {
    let parse_addr = |i: usize| -> Result<Ipv4Addr, SymError> {
        args.get(i)
            .and_then(|a| a.trim().parse().ok())
            .ok_or_else(|| SymError::Config(format!("{class}: bad address argument {i}")))
    };
    match class {
        "StockX86VM" => Ok(Box::new(OpaqueVmModel)),
        "StockExplicitProxy" => Ok(Box::new(ExplicitProxyModel {
            own: addr(parse_addr(0)?),
        })),
        "StockDNSServer" => Ok(Box::new(TurnaroundServerModel::dns(parse_addr(0)?))),
        "StockReverseProxy" => Ok(Box::new(TurnaroundServerModel::reverse_proxy(parse_addr(
            0,
        )?))),
        "ServerS" => Ok(Box::new(TurnaroundServerModel::paper_server())),
        _ => downcast_model(class, args, registry),
    }
}

/// A fleet-wide memo of symbolic element models, keyed by element class
/// and argument list.
///
/// A model is a *pure function* of `(class, args)` — building one merely
/// re-parses the concrete element's arguments — so a single instance can
/// be shared (`Arc`) across every graph, request, and verification
/// worker. The memo exists because that argument re-parsing dominates
/// graph construction on the controller's admission path: with models
/// memoized, building a graph for a stock chain is just node wiring —
/// and a second, graph-level memo skips even that for configurations
/// seen before (see [`ModelCache::graph`]).
///
/// Entries never become stale (nothing outside the key influences a
/// model), so [`ModelCache::clear`] is a memory-hygiene knob, not an
/// invalidation requirement.
#[derive(Default)]
pub struct ModelCache {
    entries: std::sync::RwLock<std::collections::HashMap<String, Arc<dyn SymElement>>>,
    /// Whole wired graphs, keyed by the configuration's canonical text
    /// (names included — callers address nodes by name). A [`SymGraph`]
    /// is immutable after construction and a pure function of
    /// `(configuration, registry)`, so sharing one `Arc` across requests
    /// skips even the node-wiring cost for stock configurations.
    graphs: std::sync::RwLock<std::collections::HashMap<String, Arc<SymGraph>>>,
    /// Per-element chain summaries, keyed like `entries`. `None` records
    /// that the element is not summarizable — itself a pure fact of
    /// `(class, args)` worth memoizing, since the chain extractor asks
    /// again for every configuration the element appears in.
    summaries: std::sync::RwLock<std::collections::HashMap<String, Option<Arc<crate::SymSummary>>>>,
}

impl ModelCache {
    /// Number of memoized models.
    pub fn len(&self) -> usize {
        self.entries.read().expect("not poisoned").len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of memoized wired graphs.
    pub fn graphs_len(&self) -> usize {
        self.graphs.read().expect("not poisoned").len()
    }

    /// Discards every memoized model, graph, and element summary.
    pub fn clear(&self) {
        self.entries.write().expect("not poisoned").clear();
        self.graphs.write().expect("not poisoned").clear();
        self.summaries.write().expect("not poisoned").clear();
    }

    /// `'\0'` cannot appear in parsed class names or arguments, so the
    /// joined key is injective.
    fn key(class: &str, args: &[String]) -> String {
        let mut k = String::with_capacity(class.len() + 16);
        k.push_str(class);
        for a in args {
            k.push('\0');
            k.push_str(a);
        }
        k
    }

    /// The memoized model for `(class, args)`, building and storing it on
    /// first sight. Build errors are not cached (they are rare and the
    /// caller rejects the whole configuration anyway).
    pub fn model(
        &self,
        class: &str,
        args: &[String],
        registry: &Registry,
    ) -> Result<Arc<dyn SymElement>, SymError> {
        let key = ModelCache::key(class, args);
        if let Some(m) = self.entries.read().expect("not poisoned").get(&key) {
            return Ok(Arc::clone(m));
        }
        let model: Arc<dyn SymElement> = Arc::from(model_for(class, args, registry)?);
        self.entries
            .write()
            .expect("not poisoned")
            .insert(key, Arc::clone(&model));
        Ok(model)
    }

    /// The memoized chain summary for a single element, computing and
    /// storing it (including the "not summarizable" outcome) on first
    /// sight. [`crate::summarize_element`] replays the model over a
    /// capture probe — deterministic in the model, which is itself a pure
    /// function of `(class, args)` — so the memo can never go stale.
    pub fn element_summary(
        &self,
        class: &str,
        args: &[String],
        registry: &Registry,
    ) -> Result<Option<Arc<crate::SymSummary>>, SymError> {
        let key = ModelCache::key(class, args);
        if let Some(s) = self.summaries.read().expect("not poisoned").get(&key) {
            return Ok(s.clone());
        }
        let model = self.model(class, args, registry)?;
        let summary = crate::summarize_element(model.as_ref()).map(Arc::new);
        self.summaries
            .write()
            .expect("not poisoned")
            .insert(key, summary.clone());
        Ok(summary)
    }

    /// Summarizes the chain of configuration elements at `nodes`
    /// (declaration-order indices, as produced by [`crate::entry_chain`]
    /// on a graph built from `cfg`) by folding memoized per-element
    /// summaries with [`crate::compose`]. Equivalent to
    /// [`crate::summarize_chain`] on the built graph — node indices follow
    /// declaration order — but only the compose fold runs per miss; the
    /// per-element probe replay is shared fleet-wide through the memo.
    /// `Ok(None)` mirrors `summarize_chain`'s `None`: some element resists
    /// summarization or the branch partition explodes.
    pub fn chain_summary(
        &self,
        cfg: &ClickConfig,
        nodes: &[usize],
        registry: &Registry,
    ) -> Result<Option<crate::SymSummary>, SymError> {
        let mut acc = crate::SymSummary::identity();
        for &n in nodes {
            let Some(decl) = cfg.elements.get(n) else {
                return Ok(None);
            };
            let Some(s) = self.element_summary(&decl.class, &decl.args, registry)? else {
                return Ok(None);
            };
            let Some(next) = crate::compose(&acc, &s) else {
                return Ok(None);
            };
            acc = next;
        }
        Ok(Some(acc))
    }

    /// The memoized wired graph for `cfg`, building it (through the model
    /// memo) and storing it on first sight. Build errors are not cached.
    pub fn graph(&self, cfg: &ClickConfig, registry: &Registry) -> Result<Arc<SymGraph>, SymError> {
        let key = cfg.canonical_text();
        if let Some(g) = self.graphs.read().expect("not poisoned").get(&key) {
            return Ok(Arc::clone(g));
        }
        let graph = Arc::new(build_sym_graph_cached(cfg, registry, Some(self))?);
        self.graphs
            .write()
            .expect("not poisoned")
            .insert(key, Arc::clone(&graph));
        Ok(graph)
    }
}

impl std::fmt::Debug for ModelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCache")
            .field("len", &self.len())
            .finish()
    }
}

/// Builds a [`SymGraph`] mirroring a Click configuration.
pub fn build_sym_graph(cfg: &ClickConfig, registry: &Registry) -> Result<SymGraph, SymError> {
    build_sym_graph_cached(cfg, registry, None)
}

/// [`build_sym_graph`] with an optional shared [`ModelCache`]: node
/// models are served from the memo instead of being rebuilt from the
/// element arguments.
pub fn build_sym_graph_cached(
    cfg: &ClickConfig,
    registry: &Registry,
    models: Option<&ModelCache>,
) -> Result<SymGraph, SymError> {
    cfg.validate()
        .map_err(|e| SymError::Config(e.to_string()))?;
    let mut g = SymGraph::new();
    for decl in &cfg.elements {
        match models {
            Some(cache) => {
                let model = cache.model(&decl.class, &decl.args, registry)?;
                g.add_shared(&decl.name, model)?;
            }
            None => {
                let model = model_for(&decl.class, &decl.args, registry)?;
                g.add_node(&decl.name, model)?;
            }
        }
    }
    for c in &cfg.connections {
        g.connect_names(&c.from.element, c.from.port, &c.to.element, c.to.port)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExecOptions, Observe};

    fn graph(cfg: &str) -> SymGraph {
        build_sym_graph(&ClickConfig::parse(cfg).unwrap(), &Registry::standard()).unwrap()
    }

    fn run_all(g: &SymGraph, entry: &str) -> crate::model::ExecResult {
        g.run_named(
            entry,
            0,
            SymPacket::unconstrained(),
            &ExecOptions {
                max_hops: 10_000,
                max_node_visits: 6,
                observe: Observe::All,
            },
        )
        .unwrap()
    }

    #[test]
    fn figure4_module_symbolically() {
        let g = graph(
            r#"
            src :: FromNetfront();
            f :: IPFilter(allow udp dst port 1500);
            rw :: IPRewriter(pattern - - 172.16.15.133 - 0 0);
            tu :: TimedUnqueue(120, 100);
            dst :: ToNetfront();
            src -> f -> rw -> tu -> dst;
            "#,
        );
        let res = run_all(&g, "src");
        assert_eq!(res.egress.len(), 1, "exactly one conforming flow class");
        let flow = &res.egress[0].1;
        assert!(flow.provably_eq(Field::Proto, 17));
        assert!(flow.provably_eq(
            Field::IpDst,
            u32::from(Ipv4Addr::new(172, 16, 15, 133)) as u64
        ));
        // Destination port constrained on the filter, NOT rewritten after:
        // the paper's invariant `const dst port` holds.
        assert!(flow.provably_eq(Field::DstPort, 1500));
        assert!(!flow.ever_written(Field::DstPort));
        assert!(!flow.ever_written(Field::Payload));
    }

    #[test]
    fn firewall_state_pushed_into_flow() {
        // Figure 1/2: client -> firewall(out) -> server -> firewall(in).
        let g = graph(
            r#"
            client_in :: FromNetfront();
            fw :: StatefulFirewall(allow udp);
            s :: ServerS();
            out :: ToNetfront();
            client_in -> [0]fw;
            fw[0] -> s -> [1]fw;
            fw[1] -> out;
            "#,
        );
        let res = run_all(&g, "client_in");
        assert_eq!(res.egress.len(), 1);
        let flow = &res.egress[0].1;
        // Only UDP made it through.
        assert!(flow.provably_eq(Field::Proto, 17));
        // The response destination is bound to the original client source.
        assert!(flow.provably_same(flow.get(Field::IpDst), flow.ingress.get(Field::IpSrc)));
        // Payload untouched end-to-end (Figure 2's conclusion).
        assert!(!flow.ever_written(Field::Payload));
        assert!(flow.provably_same(flow.get(Field::Payload), flow.ingress.get(Field::Payload)));
    }

    #[test]
    fn firewall_blocks_untagged_inbound() {
        let g = graph(
            r#"
            outside :: FromNetfront();
            fw :: StatefulFirewall(allow udp);
            inside :: ToNetfront();
            outside -> [1]fw;
            fw[1] -> inside;
            "#,
        );
        let res = run_all(&g, "outside");
        assert!(
            res.egress.is_empty(),
            "unsolicited inbound has fw_tag=0 and is dropped"
        );
    }

    #[test]
    fn tunnel_roundtrip_preserves_invariants() {
        let g = graph(
            r#"
            src :: FromNetfront();
            e :: UDPTunnelEncap(1.1.1.1, 7000, 2.2.2.2, 7001);
            d :: UDPTunnelDecap();
            dst :: ToNetfront();
            src -> e -> d -> dst;
            "#,
        );
        let res = run_all(&g, "src");
        assert_eq!(res.egress.len(), 1);
        let flow = &res.egress[0].1;
        // The inner header was restored exactly: dst still bound to the
        // ingress dst, payload invariant.
        assert!(flow.provably_same(flow.get(Field::IpDst), flow.ingress.get(Field::IpDst)));
        assert!(flow.provably_same(flow.get(Field::Payload), flow.ingress.get(Field::Payload)));
    }

    #[test]
    fn decap_of_unknown_tunnel_yields_decap_origin() {
        let g = graph(
            r#"
            src :: FromNetfront();
            d :: UDPTunnelDecap();
            dst :: ToNetfront();
            src -> d -> dst;
            "#,
        );
        let res = run_all(&g, "src");
        assert_eq!(res.egress.len(), 1);
        let flow = &res.egress[0].1;
        assert_eq!(flow.origin_of(flow.get(Field::IpDst)), Some(Origin::Decap));
        assert!(flow.ever_written(Field::IpSrc));
    }

    #[test]
    fn classifier_partitions_protocols() {
        let g = graph(
            r#"
            src :: FromNetfront();
            c :: IPClassifier(udp, tcp, -);
            u :: ToNetfront(0); t :: ToNetfront(1); o :: ToNetfront(2);
            src -> c;
            c[0] -> u; c[1] -> t; c[2] -> o;
            "#,
        );
        let res = run_all(&g, "src");
        assert_eq!(res.egress.len(), 3);
        let by_iface = |i: u16| {
            res.egress
                .iter()
                .find(|(f, _)| *f == i)
                .map(|(_, p)| p)
                .expect("flow present")
        };
        assert!(by_iface(0).provably_eq(Field::Proto, 17));
        assert!(by_iface(1).provably_eq(Field::Proto, 6));
        let other = by_iface(2).possible(Field::Proto);
        assert!(!other.contains(17) && !other.contains(6) && other.contains(1));
    }

    #[test]
    fn opaque_vm_havocs() {
        let mut g = SymGraph::new();
        let vm = g.add_node("vm", Box::new(OpaqueVmModel)).unwrap();
        let out = g.add_node("out", Box::new(EgressModel(0))).unwrap();
        g.connect(vm, 0, out, 0);
        let res = g.run(vm, 0, SymPacket::unconstrained(), &ExecOptions::default());
        let flow = &res.egress[0].1;
        assert_eq!(flow.origin_of(flow.get(Field::IpSrc)), Some(Origin::Opaque));
    }

    #[test]
    fn unknown_class_has_no_model() {
        let Err(err) = model_for("FluxCapacitor", &[], &Registry::standard()) else {
            panic!("unknown class must not produce a model");
        };
        assert!(matches!(err, SymError::Config(_) | SymError::NoModel(_)));
    }

    #[test]
    fn static_lookup_partitions_by_prefix() {
        let g = graph(
            r#"
            src :: FromNetfront();
            r :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1);
            a :: ToNetfront(0); b :: ToNetfront(1);
            src -> r; r[0] -> a; r[1] -> b;
            "#,
        );
        let res = run_all(&g, "src");
        assert_eq!(res.egress.len(), 2);
        for (iface, flow) in &res.egress {
            let ten = u32::from(Ipv4Addr::new(10, 1, 1, 1)) as u64;
            match iface {
                0 => assert!(flow.possible(Field::IpDst).contains(ten)),
                _ => assert!(!flow.possible(Field::IpDst).contains(ten)),
            }
        }
    }
}
