//! Property tests linking the symbolic engine to concrete execution.

use std::net::Ipv4Addr;

use innet_packet::{pattern::PatternExpr, IpProto, PacketBuilder, TcpFlags};
use innet_symnet::{pattern, Field, SymPacket};
use proptest::prelude::*;

/// Builds a concrete packet from a symbolic branch by taking a witness
/// value for every constrained field.
fn witness_packet(branch: &SymPacket) -> Option<innet_packet::Packet> {
    let proto = branch.possible(Field::Proto).witness()? as u8;
    let src = Ipv4Addr::from(branch.possible(Field::IpSrc).witness()? as u32);
    let dst = Ipv4Addr::from(branch.possible(Field::IpDst).witness()? as u32);
    let sport = branch.possible(Field::SrcPort).witness()? as u16;
    let dport = branch.possible(Field::DstPort).witness()? as u16;
    let syn = branch.possible(Field::TcpSyn).witness()? == 1;
    let b = match IpProto::from(proto) {
        IpProto::Udp => PacketBuilder::udp(),
        IpProto::Tcp => {
            let flags = if syn { TcpFlags::SYN } else { TcpFlags::ACK };
            PacketBuilder::tcp().flags(flags)
        }
        IpProto::Icmp => PacketBuilder::icmp_echo_request(1, 1),
        other => PacketBuilder::raw(other),
    };
    Some(b.src(src, sport).dst(dst, dport).build())
}

fn arb_expr() -> impl Strategy<Value = PatternExpr> {
    prop_oneof![
        Just("udp"),
        Just("tcp"),
        Just("icmp"),
        Just("udp dst port 1500"),
        Just("tcp src port 80"),
        Just("dst portrange 1000-2000"),
        Just("src net 10.0.0.0/8"),
        Just("dst net 192.168.0.0/16"),
        Just("host 8.8.8.8"),
        Just("(tcp or udp) and not dst port 22"),
        Just("udp and dst net 10.0.0.0/8 and dst port 53"),
        Just("not udp"),
        Just("tcp syn"),
        Just("port 443"),
    ]
    .prop_map(|s: &str| s.parse().unwrap())
}

proptest! {
    /// Soundness of `satisfy`: every symbolic branch's witness packet
    /// matches the expression concretely.
    #[test]
    fn satisfy_witnesses_match(e in arb_expr()) {
        let p = SymPacket::unconstrained();
        for branch in pattern::satisfy(&p, &e) {
            if let Some(pkt) = witness_packet(&branch) {
                // TcpSyn witnessing is only faithful for TCP packets
                // (other protocols have no flags to set).
                prop_assert!(
                    e.matches(&pkt),
                    "witness of a satisfying branch must match: {e:?} {:?}",
                    branch.render_fields()
                );
            }
        }
    }

    /// Soundness of `refute`: every refuting branch's witness packet does
    /// NOT match the expression concretely.
    #[test]
    fn refute_witnesses_do_not_match(e in arb_expr()) {
        let p = SymPacket::unconstrained();
        for branch in pattern::refute(&p, &e) {
            if let Some(pkt) = witness_packet(&branch) {
                prop_assert!(
                    !e.matches(&pkt),
                    "witness of a refuting branch must not match: {e:?} {}",
                    branch.render_fields()
                );
            }
        }
    }

    /// Completeness on a concrete sample: any concrete packet is covered
    /// by either the satisfy set or the refute set (evaluated by checking
    /// which side the concrete matcher picks is satisfiable).
    #[test]
    fn concrete_packet_covered(
        e in arb_expr(),
        dport in any::<u16>(),
        daddr in any::<u32>(),
        is_tcp in any::<bool>(),
    ) {
        let pkt = if is_tcp {
            PacketBuilder::tcp().dst(Ipv4Addr::from(daddr), dport).build()
        } else {
            PacketBuilder::udp().dst(Ipv4Addr::from(daddr), dport).build()
        };
        // Constrain a symbolic packet to exactly this concrete packet.
        let mut sp = SymPacket::unconstrained();
        let ip = pkt.ipv4().unwrap();
        sp.constrain_eq(Field::Proto, ip.proto().number() as u64);
        sp.constrain_eq(Field::IpSrc, u32::from(ip.src()) as u64);
        sp.constrain_eq(Field::IpDst, u32::from(ip.dst()) as u64);
        let (spv, dpv) = if is_tcp {
            let t = pkt.tcp().unwrap();
            (t.src_port(), t.dst_port())
        } else {
            let u = pkt.udp().unwrap();
            (u.src_port(), u.dst_port())
        };
        sp.constrain_eq(Field::SrcPort, spv as u64);
        sp.constrain_eq(Field::DstPort, dpv as u64);
        sp.constrain_eq(Field::TcpSyn, 0);

        let concrete_matches = e.matches(&pkt);
        let sym_sat = !pattern::satisfy(&sp, &e).is_empty();
        let sym_unsat = !pattern::refute(&sp, &e).is_empty();
        // A fully concrete symbolic packet sits on exactly one side.
        prop_assert_eq!(concrete_matches, sym_sat, "satisfy agrees with concrete");
        prop_assert_eq!(!concrete_matches, sym_unsat, "refute agrees with concrete");
    }
}
