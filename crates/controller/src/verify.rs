//! Requirement verification: evaluating `reach` statements against the
//! compiled network model.
//!
//! The controller "runs a SYMNET reachability check for each requirement
//! given: it first creates a symbolic packet using the initial flow
//! definition …, injects it at the initial node …, then tracks the flow
//! through the network, splitting it whenever subflows can be routed via
//! different paths" (§4.3). A requirement is satisfied when at least one
//! symbolic flow visits the way-points in order, matching each hop's flow
//! specification at the time of visit, with every `const` field left
//! unwritten on the hop leading to it.

use std::collections::HashSet;
use std::sync::Arc;

use innet_policy::{ConstField, NodeRef, Requirement};
use innet_symnet::{
    entry_chain, pattern, summarize_chain, BranchOutcome, CheckStats, ExecOptions, Field, Observe,
    RangeSet, SymPacket, SymSummary,
};

use crate::netmodel::NetworkModel;

/// Errors raised during requirement verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A way-point names something that does not exist in the model.
    UnknownNode(String),
    /// The node kind cannot be used in this position (e.g. an element
    /// port as a traffic source).
    BadSource(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownNode(n) => write!(f, "unknown way-point '{n}'"),
            VerifyError::BadSource(n) => write!(f, "'{n}' cannot originate traffic"),
        }
    }
}

impl std::error::Error for VerifyError {}

fn const_field(f: ConstField) -> Field {
    match f {
        ConstField::Proto => Field::Proto,
        ConstField::SrcPort => Field::SrcPort,
        ConstField::DstPort => Field::DstPort,
        ConstField::SrcAddr => Field::IpSrc,
        ConstField::DstAddr => Field::IpDst,
        ConstField::Ttl => Field::Ttl,
        ConstField::Tos => Field::Tos,
        ConstField::Payload => Field::Payload,
    }
}

/// A resolved way-point: acceptable graph nodes, an optional input-port
/// filter, and an optional implicit destination constraint.
struct Waypoint {
    nodes: HashSet<usize>,
    in_port: Option<usize>,
    dst_within: Option<RangeSet>,
}

fn resolve_waypoint(model: &NetworkModel, node: &NodeRef) -> Result<Waypoint, VerifyError> {
    let mut nodes = HashSet::new();
    let mut in_port = None;
    let mut dst_within = None;
    match node {
        NodeRef::Internet => {
            nodes.insert(model.internet_dst);
        }
        NodeRef::Client => {
            for (_, _, dst) in &model.client_edges {
                nodes.insert(*dst);
            }
        }
        NodeRef::Addr(c) => {
            // An address way-point is wherever traffic for that prefix is
            // delivered: the edge sinks and the platform switches.
            nodes.insert(model.internet_dst);
            for (_, _, dst) in &model.client_edges {
                nodes.insert(*dst);
            }
            for idx in model.platform_switches.values() {
                nodes.insert(*idx);
            }
            dst_within = Some(RangeSet::range(c.first_u32() as u64, c.last_u32() as u64));
        }
        NodeRef::Named(name) => {
            if let Some(entries) = model.middlebox_entries.get(name) {
                nodes.extend(entries.iter().copied());
            } else if let Some(idx) = model.platform_switches.get(name) {
                nodes.insert(*idx);
            } else if let Some(idx) = model.module_ingress.get(name) {
                nodes.insert(*idx);
            } else {
                return Err(VerifyError::UnknownNode(name.clone()));
            }
        }
        NodeRef::ElementPort {
            module,
            element,
            port,
        } => {
            let idx = model
                .module_elements
                .get(&(module.clone(), element.clone()))
                .ok_or_else(|| VerifyError::UnknownNode(format!("{module}:{element}")))?;
            nodes.insert(*idx);
            in_port = Some(*port);
        }
    }
    Ok(Waypoint {
        nodes,
        in_port,
        dst_within,
    })
}

/// Injection points plus initial constraints for a requirement source.
fn resolve_source(
    model: &NetworkModel,
    node: &NodeRef,
) -> Result<Vec<(usize, Option<RangeSet>)>, VerifyError> {
    match node {
        NodeRef::Internet => {
            if model.ingress_filtering {
                // §7 ingress filtering: Internet traffic cannot claim an
                // operator-internal source prefix.
                let mut allowed = RangeSet::full();
                for c in &model.internal_prefixes {
                    allowed =
                        allowed.minus(&RangeSet::range(c.first_u32() as u64, c.last_u32() as u64));
                }
                Ok(vec![(model.internet_src, Some(allowed))])
            } else {
                Ok(vec![(model.internet_src, None)])
            }
        }
        NodeRef::Client => Ok(model
            .client_edges
            .iter()
            .map(|(c, src, _)| {
                (
                    *src,
                    Some(RangeSet::range(c.first_u32() as u64, c.last_u32() as u64)),
                )
            })
            .collect()),
        NodeRef::Addr(c) => {
            let set = RangeSet::range(c.first_u32() as u64, c.last_u32() as u64);
            let mut out = vec![(model.internet_src, Some(set.clone()))];
            for (sub, src, _) in &model.client_edges {
                if sub.overlaps(c) {
                    out.push((*src, Some(set.clone())));
                }
            }
            Ok(out)
        }
        other => Err(VerifyError::BadSource(other.to_string())),
    }
}

/// Whether a trace position `pos` satisfies way-point `wp` for flow
/// `flow`, given the hop's flow specification.
fn position_matches(
    flow: &SymPacket,
    hops: &[innet_symnet::Hop],
    pos: usize,
    wp: &Waypoint,
    spec: &innet_packet::pattern::PatternExpr,
) -> bool {
    let hop = &hops[pos];
    if !wp.nodes.contains(&hop.node) {
        return false;
    }
    if let Some(p) = wp.in_port {
        if hop.in_port != p {
            return false;
        }
    }
    let snap = flow.at_snapshot(hop.fields);
    if let Some(set) = &wp.dst_within {
        let mut s = snap.clone();
        if !s.constrain(Field::IpDst, set) {
            return false;
        }
        return pattern::satisfiable(&s, spec);
    }
    pattern::satisfiable(&snap, spec)
}

/// Searches for an increasing assignment of trace positions to way-points
/// `k..`, starting at trace position `start`, honoring const clauses.
#[allow(clippy::too_many_arguments)]
fn assign(
    flow: &SymPacket,
    hops: &[innet_symnet::Hop],
    req: &Requirement,
    wps: &[Waypoint],
    k: usize,
    start: usize,
    prev_pos: usize,
) -> bool {
    if k == wps.len() {
        return true;
    }
    for pos in start..hops.len() {
        if !position_matches(flow, hops, pos, &wps[k], &req.hops[k].flow) {
            continue;
        }
        // Const clause: the listed fields must not be written on the hop
        // from the previous way-point (or the source) to this one.
        let clean = req.hops[k]
            .const_fields
            .iter()
            .all(|&cf| !flow.written_between(const_field(cf), prev_pos, pos));
        if clean && assign(flow, hops, req, wps, k + 1, pos + 1, pos) {
            return true;
        }
    }
    false
}

/// Checks one requirement against the model. Returns `Ok(true)` when at
/// least one symbolic flow conforms. This is the whole-graph oracle path;
/// the controller's admission pipeline calls the crate-private
/// `check_requirement_summarized` instead.
pub fn check_requirement(model: &NetworkModel, req: &Requirement) -> Result<bool, VerifyError> {
    Ok(check_requirement_summarized(model, req, false)?.0)
}

/// [`check_requirement`] with an optional compositional walk over the
/// injection point's maximal chain-safe entry chain, plus the check's
/// [`CheckStats`].
///
/// When `use_summaries` is set, each source's entry chain is summarized
/// once per call ([`summarize_chain`]) and replayed for every injected
/// pattern branch; per-element execution resumes at the chain boundary.
/// The network model is compiled fresh per placement candidate and keeps
/// no composite configuration, so there is no canonical slice to key a
/// cross-request cache on — memoization here is per call (one summary
/// serving all of `pattern::satisfy`'s branches), unlike the admission
/// security check, which shares the controller's fleet-wide
/// `SummaryCache`.
///
/// The walk is only taken when the chain contains **no observed
/// way-point node**: summary replay records the chain's arrivals before
/// its writes, so a way-point *inside* the chain would snapshot fields
/// the chain had not yet written where real execution interleaves them.
/// With every way-point outside the chain, all chain write positions
/// precede all way-point positions in both modes, so `written_between`
/// and snapshot matching agree exactly (the differential suite holds the
/// two paths together). Injected packets are constrain-only refinements
/// of [`SymPacket::unconstrained`], as the summary exactness contract
/// requires.
pub(crate) fn check_requirement_summarized(
    model: &NetworkModel,
    req: &Requirement,
    use_summaries: bool,
) -> Result<(bool, CheckStats), VerifyError> {
    let mut stats = CheckStats::default();
    let wps: Vec<Waypoint> = req
        .hops
        .iter()
        .map(|h| resolve_waypoint(model, &h.node))
        .collect::<Result<_, _>>()?;
    let Some(last) = wps.last() else {
        return Ok((true, stats));
    };

    let mut observe: HashSet<usize> = HashSet::new();
    for wp in &wps {
        observe.extend(wp.nodes.iter().copied());
    }
    let opts = ExecOptions {
        max_hops: 200_000,
        max_node_visits: 6,
        observe: Observe::Nodes(observe.clone()),
    };

    for (src_node, src_constraint) in resolve_source(model, &req.from)? {
        // Summarize this source's entry chain once; every pattern branch
        // below replays it.
        let chain: Option<(innet_symnet::EntryChain, Arc<SymSummary>)> = if use_summaries {
            let c = entry_chain(&model.graph, src_node);
            if c.nodes.len() >= 2 && c.nodes.iter().all(|n| !observe.contains(n)) {
                summarize_chain(&model.graph, &c.nodes).map(|s| (c, Arc::new(s)))
            } else {
                None
            }
        } else {
            None
        };
        // Initial symbolic packet: unconstrained, then the source
        // constraint and the requirement's initial flow definition.
        let mut base = SymPacket::unconstrained();
        if let Some(set) = &src_constraint {
            if !base.constrain(Field::IpSrc, set) {
                continue;
            }
        }
        for branch in pattern::satisfy(&base, &req.from_flow) {
            let observations: Vec<(usize, SymPacket)> = match &chain {
                Some((c, s)) => {
                    stats.summary_chain_nodes += c.nodes.len() as u64;
                    let mut obs = Vec::new();
                    for (outcome, pkt) in s.apply(&branch, &c.nodes) {
                        // Egress branches leave the graph inside the
                        // chain, which contains no observed node — they
                        // cannot carry way-point observations.
                        if let BranchOutcome::Continue = outcome {
                            if let Some((n, p)) = c.cont {
                                let res = model.graph.run(n, p, pkt, &opts);
                                stats.hop_cap_bailouts += res.hop_cap_hits;
                                stats.visit_cap_bailouts += res.visit_cap_hits;
                                obs.extend(res.observations);
                            }
                        }
                    }
                    obs
                }
                None => {
                    let res = model.graph.run(src_node, 0, branch, &opts);
                    stats.hop_cap_bailouts += res.hop_cap_hits;
                    stats.visit_cap_bailouts += res.visit_cap_hits;
                    res.observations
                }
            };
            // Find observations at the last way-point and try to assign
            // all way-points along their traces.
            for (node, flow) in &observations {
                if !last.nodes.contains(node) {
                    continue;
                }
                // The observation's final trace entry is its arrival at
                // `node`; the assignment search covers ordering + specs.
                let hops = flow.hops();
                if assign(flow, &hops, req, &wps, 0, 0, 0) {
                    return Ok((true, stats));
                }
            }
        }
    }
    Ok((false, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::{compile, InstalledModule};
    use innet_click::{ClickConfig, Registry};
    use innet_topology::Topology;
    use std::net::Ipv4Addr;

    fn model_with_batcher() -> NetworkModel {
        let topo = Topology::figure3();
        let p3 = topo.index_of("platform3").unwrap();
        let module = InstalledModule {
            id: 1,
            name: "batcher".to_string(),
            platform: p3,
            addr: Ipv4Addr::new(203, 0, 113, 10),
            config: ClickConfig::parse(
                r#"
                FromNetfront()
                  -> IPFilter(allow udp dst port 1500)
                  -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                  -> TimedUnqueue(120, 100)
                  -> dst :: ToNetfront();
                "#,
            )
            .unwrap(),
            sandboxed: false,
            owner: "mobile-7".to_string(),
        };
        compile(&topo, &[module], &Registry::standard()).unwrap()
    }

    #[test]
    fn figure4_requirement_holds() {
        let model = model_with_batcher();
        let req = Requirement::parse(
            "reach from internet udp \
             -> batcher:dst:0 dst 172.16.15.133 \
             -> client dst port 1500 const proto && dst port && payload",
        )
        .unwrap();
        assert!(check_requirement(&model, &req).unwrap());
    }

    #[test]
    fn wrong_port_requirement_fails() {
        let model = model_with_batcher();
        // The module filters to port 1500: traffic through the batcher
        // cannot arrive at the client on port 2250. (Without the module
        // way-point the border router delivers internet traffic to the
        // client subnet directly, so the plain variant holds trivially.)
        let req =
            Requirement::parse("reach from internet udp -> batcher:dst:0 -> client dst port 2250")
                .unwrap();
        assert!(!check_requirement(&model, &req).unwrap());
    }

    #[test]
    fn const_violation_detected() {
        let model = model_with_batcher();
        // The rewriter overwrites the destination address on the path from
        // the ingress to the batcher's sink, so `const dst host` on that
        // hop must fail…
        let req =
            Requirement::parse("reach from internet udp -> batcher:dst:0 const dst host -> client")
                .unwrap();
        assert!(!check_requirement(&model, &req).unwrap());
        // …while the same way-point chain without the const clause holds.
        let req2 =
            Requirement::parse("reach from internet udp -> batcher:dst:0 -> client dst port 1500")
                .unwrap();
        assert!(check_requirement(&model, &req2).unwrap());
        // And after the batcher's sink nothing rewrites the destination:
        // const on the final hop holds.
        let req3 = Requirement::parse(
            "reach from internet udp -> batcher:dst:0 -> client dst port 1500 const dst host && payload",
        )
        .unwrap();
        assert!(check_requirement(&model, &req3).unwrap());
    }

    #[test]
    fn waypoint_via_operator_middlebox() {
        let model = model_with_batcher();
        // HTTP traffic toward platform 2 passes the HTTP optimizer; the
        // optimizer's entry is reachable from the internet.
        let req = Requirement::parse("reach from internet tcp -> HTTPOptimizer").unwrap();
        // Platform 2 is behind natfw2 which drops unsolicited inbound, so
        // internet traffic cannot reach the optimizer at all.
        assert!(!check_requirement(&model, &req).unwrap());
    }

    #[test]
    fn unknown_waypoint_errors() {
        let model = model_with_batcher();
        let req = Requirement::parse("reach from internet -> nonexistent").unwrap();
        assert!(matches!(
            check_requirement(&model, &req),
            Err(VerifyError::UnknownNode(_))
        ));
    }

    #[test]
    fn client_sourced_traffic() {
        let model = model_with_batcher();
        // Clients can reach the internet (via the border default route).
        let req = Requirement::parse("reach from client -> internet").unwrap();
        assert!(check_requirement(&model, &req).unwrap());
    }

    #[test]
    fn ingress_filtering_constrains_internet_sources() {
        let mut model = model_with_batcher();
        model.ingress_filtering = true;
        // Reachability itself still holds for legitimate sources…
        let req =
            Requirement::parse("reach from internet udp -> batcher:dst:0 -> client dst port 1500")
                .unwrap();
        assert!(check_requirement(&model, &req).unwrap());
        // …but Internet traffic can no longer claim a client-subnet
        // source (the spoofed-authorization vector of §7).
        let spoofed =
            Requirement::parse("reach from internet src net 172.16.0.0/16 -> client").unwrap();
        assert!(!check_requirement(&model, &spoofed).unwrap());
        // Without filtering the spoofed variant is reachable.
        model.ingress_filtering = false;
        assert!(check_requirement(&model, &spoofed).unwrap());
    }

    #[test]
    fn summarized_requirements_agree_with_oracle() {
        let model = model_with_batcher();
        for text in [
            "reach from internet udp -> batcher:dst:0 dst 172.16.15.133 \
             -> client dst port 1500 const proto && dst port && payload",
            "reach from internet udp -> batcher:dst:0 -> client dst port 2250",
            "reach from internet udp -> batcher:dst:0 const dst host -> client",
            "reach from internet udp -> batcher:dst:0 -> client dst port 1500 \
             const dst host && payload",
            "reach from internet tcp -> HTTPOptimizer",
            "reach from client -> internet",
            "reach from internet src net 172.16.0.0/16 -> client",
        ] {
            let req = Requirement::parse(text).unwrap();
            let want = check_requirement(&model, &req).unwrap();
            let (got, _) = check_requirement_summarized(&model, &req, true).unwrap();
            assert_eq!(want, got, "summarized verdict diverged on: {text}");
        }
    }

    #[test]
    fn element_port_source_rejected() {
        let model = model_with_batcher();
        let req = Requirement::parse("reach from batcher:dst:0 -> client").unwrap();
        assert!(matches!(
            check_requirement(&model, &req),
            Err(VerifyError::BadSource(_))
        ));
    }
}
