//! The symbolic value domain: variables, constants, ranges, and origins.

use serde::{Deserialize, Serialize};

/// Identifier of a symbolic variable, unique within one execution branch.
pub type VarId = u64;

/// Where a symbolic variable came from. Origin drives the security
/// verdict: values revealed by decapsulation can be attributed to the
/// tunnel peer, while values produced by opaque code cannot be attributed
/// at all (paper §7.1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// An unconstrained input field (the "any possible traffic" injection
    /// of §4.4).
    Free,
    /// Revealed by decapsulating traffic that was addressed to the module.
    Decap,
    /// Produced by unmodellable (opaque) processing such as an x86 VM.
    Opaque,
    /// Result of modeled arithmetic whose exact value we do not track
    /// (e.g. a decremented unknown TTL, an allocated NAT port).
    Computed,
}

/// A symbolic value: either a known constant or a variable.
///
/// Equality of two `Var` values with the same [`VarId`] is *semantic*
/// equality — SymNet's "bound to the same symbolic variable" (paper §4.4):
/// when the server model executes `p[ip_dst] = p[ip_src]`, the destination
/// field receives the very same variable the source field held, and the
/// implicit-authorization check later recognizes the binding structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymValue {
    /// A known constant (addresses are stored as `u32`, ports as `u16`,
    /// widened to `u64`).
    Const(u64),
    /// A symbolic variable.
    Var(VarId),
}

impl SymValue {
    /// The constant payload, if this is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            SymValue::Const(c) => Some(*c),
            SymValue::Var(_) => None,
        }
    }

    /// The variable id, if this is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            SymValue::Const(_) => None,
            SymValue::Var(v) => Some(*v),
        }
    }
}

/// A set of `u64` values represented as sorted, disjoint, inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// The full domain.
    pub fn full() -> RangeSet {
        RangeSet {
            ranges: vec![(0, u64::MAX)],
        }
    }

    /// The empty set.
    pub fn empty() -> RangeSet {
        RangeSet { ranges: vec![] }
    }

    /// A single value.
    pub fn single(v: u64) -> RangeSet {
        RangeSet {
            ranges: vec![(v, v)],
        }
    }

    /// An inclusive range. `lo > hi` yields the empty set.
    pub fn range(lo: u64, hi: u64) -> RangeSet {
        if lo > hi {
            RangeSet::empty()
        } else {
            RangeSet {
                ranges: vec![(lo, hi)],
            }
        }
    }

    /// Whether no value satisfies the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the set is the full domain.
    pub fn is_full(&self) -> bool {
        self.ranges == [(0, u64::MAX)]
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: u64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// Some member of the set, if any (used to produce witness packets).
    pub fn witness(&self) -> Option<u64> {
        self.ranges.first().map(|&(lo, _)| lo)
    }

    /// The single member, if the set has exactly one.
    pub fn as_single(&self) -> Option<u64> {
        match self.ranges.as_slice() {
            [(lo, hi)] if lo == hi => Some(*lo),
            _ => None,
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &RangeSet) -> RangeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (a_lo, a_hi) = self.ranges[i];
            let (b_lo, b_hi) = other.ranges[j];
            let lo = a_lo.max(b_lo);
            let hi = a_hi.min(b_hi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if a_hi < b_hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        RangeSet { ranges: out }
    }

    /// Set complement.
    pub fn complement(&self) -> RangeSet {
        let mut out = Vec::new();
        let mut next = 0u64;
        let mut saturated = false;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            match hi.checked_add(1) {
                Some(n) => next = n.max(next),
                None => {
                    saturated = true;
                    break;
                }
            }
        }
        if !saturated && !self.is_empty() {
            out.push((next, u64::MAX));
        }
        if self.is_empty() {
            return RangeSet::full();
        }
        RangeSet { ranges: out }
    }

    /// Set difference (`self \ other`).
    pub fn minus(&self, other: &RangeSet) -> RangeSet {
        self.intersect(&other.complement())
    }
}

/// Constraint information attached to one variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarInfo {
    /// Values the variable may take.
    pub ranges: RangeSet,
    /// Where the variable came from.
    pub origin: Origin,
}

impl VarInfo {
    /// A fully unconstrained variable of the given origin.
    pub fn free(origin: Origin) -> VarInfo {
        VarInfo {
            ranges: RangeSet::full(),
            origin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_range() {
        let s = RangeSet::single(5);
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.as_single(), Some(5));
        assert!(RangeSet::range(9, 3).is_empty());
    }

    #[test]
    fn intersect_disjoint_and_overlapping() {
        let a = RangeSet::range(0, 10);
        let b = RangeSet::range(5, 20);
        assert_eq!(a.intersect(&b), RangeSet::range(5, 10));
        let c = RangeSet::range(11, 12);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn complement_roundtrip() {
        let a = RangeSet::range(10, 20);
        let c = a.complement();
        assert!(c.contains(9));
        assert!(c.contains(21));
        assert!(!c.contains(15));
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn complement_edges() {
        assert_eq!(RangeSet::empty().complement(), RangeSet::full());
        assert!(RangeSet::full().complement().is_empty());
        let zero = RangeSet::single(0);
        assert!(!zero.complement().contains(0));
        assert!(zero.complement().contains(1));
        let max = RangeSet::single(u64::MAX);
        assert!(max.complement().contains(u64::MAX - 1));
        assert!(!max.complement().contains(u64::MAX));
    }

    #[test]
    fn minus() {
        let a = RangeSet::range(0, 10);
        let d = a.minus(&RangeSet::single(5));
        assert!(d.contains(4));
        assert!(!d.contains(5));
        assert!(d.contains(6));
        assert!(!d.contains(11));
    }

    #[test]
    fn witness_is_member() {
        let a = RangeSet::range(42, 99);
        assert!(a.contains(a.witness().unwrap()));
        assert_eq!(RangeSet::empty().witness(), None);
    }

    #[test]
    fn multi_range_intersect() {
        let a = RangeSet::range(0, 100).minus(&RangeSet::range(40, 60));
        let b = RangeSet::range(30, 70);
        let i = a.intersect(&b);
        assert!(i.contains(30));
        assert!(i.contains(39));
        assert!(!i.contains(50));
        assert!(i.contains(61));
        assert!(!i.contains(71));
    }
}
