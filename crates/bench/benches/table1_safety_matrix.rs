//! Table 1: SymNet safety verdicts per middlebox and requester class.

use innet::controller::table1_matrix;
use innet::symnet::Verdict;
use innet_bench::Report;

fn glyph(v: Verdict) -> &'static str {
    match v {
        Verdict::Safe => "ok",
        Verdict::SafeWithSandbox => "ok(s)",
        Verdict::Reject => "X",
    }
}

fn main() {
    let mut r = Report::new(
        "table1_safety_matrix",
        "Table 1: middlebox safety verdicts (X = reject, ok(s) = sandbox)",
    );
    r.line(&format!(
        "{:<24} {:>12} {:>10} {:>10}",
        "Functionality", "Third-party", "Client", "Operator"
    ));
    for row in table1_matrix() {
        r.line(&format!(
            "{:<24} {:>12} {:>10} {:>10}",
            row.name,
            glyph(row.verdicts[0]),
            glyph(row.verdicts[1]),
            glyph(row.verdicts[2])
        ));
    }
    r.blank();
    r.line("every cell matches the paper's Table 1 (asserted in the test suite)");
    r.finish();
}
