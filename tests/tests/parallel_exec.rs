//! Differential tests for flow-sharded parallel execution: for every
//! worker count, the `ParallelRunner` must produce, per flow, exactly the
//! byte sequence the single-threaded `NativeRunner` produces — sharding
//! is an implementation detail, not a semantic change.
//!
//! That contract now covers *stateful* (flow-partitionable)
//! configurations too: a NAT gateway and a stateful firewall are driven
//! with interleaved forward and reverse traffic, where correctness
//! depends on the symmetric dispatch hash pinning both directions of
//! every connection to the same replica.
//!
//! Also property-checks the dispatch invariants the guarantees rest on:
//! the directed flow hash never splits one 5-tuple across workers, and
//! the symmetric hash maps a flow and its reverse to the same shard.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use innet::click::elements::IpNat;
use innet::platform::{consolidated_config, nat_gateway_config, stateful_firewall_config};
use innet::prelude::*;
use proptest::prelude::*;

/// A reproducible multi-flow trace: `flows` distinct UDP 5-tuples,
/// `n` packets round-robined across them, payload lengths varied so
/// byte-level comparison is meaningful.
fn multi_flow_trace(n: usize, flows: usize, clients: &[Ipv4Addr]) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let f = i % flows;
            PacketBuilder::udp()
                .src(
                    Ipv4Addr::new(8, 8, (f / 200) as u8, (f % 200) as u8 + 1),
                    (4000 + f % 1000) as u16,
                )
                .dst(clients[f % clients.len()], 80)
                .pad_to(64 + (i % 7) * 16)
                .build()
        })
        .collect()
}

/// Groups transmitted packets per flow, preserving relative order. The
/// configurations used here never rewrite the 5-tuple, so the output
/// flow key is the input flow key.
fn by_flow(out: &[(u16, Packet)]) -> BTreeMap<String, Vec<(u16, Vec<u8>)>> {
    let mut groups: BTreeMap<String, Vec<(u16, Vec<u8>)>> = BTreeMap::new();
    for (egress, pkt) in out {
        let key = FlowKey::of(pkt)
            .expect("udp traffic has a flow key")
            .to_string();
        groups
            .entry(key)
            .or_default()
            .push((*egress, pkt.bytes().to_vec()));
    }
    groups
}

#[test]
fn parallel_output_matches_native_per_flow() {
    let clients: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let trace = multi_flow_trace(10_000, 64, &clients);

    // The single-threaded reference output.
    let mut native = RunnerConfig::new().native(&cfg).unwrap();
    let (native_stats, native_out) = native.run_collect(&trace, 1);
    assert_eq!(native_stats.transmitted, trace.len() as u64);
    let reference = by_flow(&native_out);

    for workers in [1usize, 2, 4, 8] {
        let mut parallel = RunnerConfig::new()
            .workers(workers)
            .batch(32)
            .parallel(&cfg)
            .unwrap();
        assert_eq!(parallel.effective_workers(), workers);
        let (stats, out) = parallel.run_collect(&trace, 1);
        assert_eq!(
            stats.transmitted, native_stats.transmitted,
            "{workers} workers"
        );
        assert_eq!(stats.dropped, 0, "{workers} workers");
        let sharded = by_flow(&out);
        // Per flow: byte-identical packets, in identical order, out the
        // identical egress ports.
        assert_eq!(sharded, reference, "{workers} workers");
    }
}

/// The public address the NAT gateway hides the inside network behind.
const PUBLIC: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

/// One bidirectional UDP connection: an inside host behind interface 0
/// talking to an outside server behind interface 1.
#[derive(Clone, Copy)]
struct Conn {
    inside: Ipv4Addr,
    sport: u16,
    remote: Ipv4Addr,
    rport: u16,
}

fn forward_key(conn: &Conn) -> FlowKey {
    FlowKey {
        src: conn.inside,
        dst: conn.remote,
        proto: IpProto::Udp,
        src_port: conn.sport,
        dst_port: conn.rport,
    }
}

/// Generates `n` distinct connections whose NAT preferred ports do not
/// collide. The NAT allocates public ports as a pure hash of the flow
/// key, so a collision-free corpus gets identical allocations from the
/// one shared NAT (native reference) and from the per-replica NATs
/// (parallel run) — which is what makes byte-level comparison valid.
fn connections(n: usize) -> Vec<Conn> {
    let mut conns: Vec<Conn> = Vec::new();
    let mut used_ports = std::collections::BTreeSet::new();
    let mut c = 0usize;
    while conns.len() < n {
        let conn = Conn {
            inside: Ipv4Addr::new(10, 0, (c / 200) as u8, (c % 200) as u8 + 1),
            sport: 5000 + (c % 20000) as u16,
            remote: Ipv4Addr::new(198, 51, (100 + c / 250) as u8, (c % 250) as u8 + 1),
            rport: 53 + (c % 5) as u16,
        };
        c += 1;
        if used_ports.insert(IpNat::preferred_port(&forward_key(&conn))) {
            conns.push(conn);
        }
    }
    conns
}

/// An interleaved bidirectional trace over `conns`: round 0 opens every
/// connection outbound (ingress 0), later rounds mix forward packets
/// with replies arriving on the outside interface (ingress 1). For the
/// NAT gateway (`nat = true`), replies target the public address at the
/// connection's deterministic mapped port; for the firewall they target
/// the inside host directly.
fn stateful_trace(conns: &[Conn], rounds: usize, nat: bool) -> Vec<Packet> {
    let mut trace = Vec::new();
    for r in 0..rounds {
        for (c, conn) in conns.iter().enumerate() {
            let reverse = r > 0 && (r + c) % 2 == 1;
            let pad = 64 + ((r + c) % 7) * 16;
            if !reverse {
                trace.push(
                    PacketBuilder::udp()
                        .src(conn.inside, conn.sport)
                        .dst(conn.remote, conn.rport)
                        .pad_to(pad)
                        .build(),
                );
            } else {
                let (dst, dport) = if nat {
                    (PUBLIC, IpNat::preferred_port(&forward_key(conn)))
                } else {
                    (conn.inside, conn.sport)
                };
                let mut pkt = PacketBuilder::udp()
                    .src(conn.remote, conn.rport)
                    .dst(dst, dport)
                    .pad_to(pad)
                    .build();
                pkt.meta.ingress = 1;
                trace.push(pkt);
            }
        }
    }
    trace
}

/// The stateful differential contract: the sharded runner must report a
/// `FlowPartitionable` verdict, actually fan out to the requested worker
/// count, and produce per-flow byte- and order-identical output to the
/// single-threaded reference at every worker count.
fn assert_stateful_parallel_matches_native(cfg: &ClickConfig, trace: &[Packet]) {
    let mut native = RunnerConfig::new().native(cfg).unwrap();
    let (native_stats, native_out) = native.run_collect(trace, 1);
    assert_eq!(
        native_stats.transmitted,
        trace.len() as u64,
        "reference forwards the whole trace"
    );
    let reference = by_flow(&native_out);

    for workers in [1usize, 2, 4, 8] {
        let mut parallel = RunnerConfig::new()
            .workers(workers)
            .batch(16)
            .parallel(cfg)
            .unwrap();
        assert_eq!(parallel.shardability(), Shardability::FlowPartitionable);
        assert_eq!(parallel.effective_workers(), workers);
        let (stats, out) = parallel.run_collect(trace, 1);
        assert_eq!(
            stats.transmitted, native_stats.transmitted,
            "{workers} workers"
        );
        assert_eq!(stats.dropped, 0, "{workers} workers");
        assert_eq!(by_flow(&out), reference, "{workers} workers");
    }
}

#[test]
fn sharded_nat_matches_native_per_flow() {
    // Replies enter on the outside interface addressed to the public IP;
    // only the symmetric hash lands them on the replica holding the
    // mapping. Output keys are the *rewritten* flows, identical on both
    // sides because port allocation is a pure function of the flow key.
    let conns = connections(48);
    let trace = stateful_trace(&conns, 8, true);
    assert_stateful_parallel_matches_native(&nat_gateway_config(PUBLIC), &trace);
}

#[test]
fn sharded_stateful_firewall_matches_native_per_flow() {
    // Unrelated inbound drops and related inbound passes — both facts
    // must survive sharding, which they only do when each connection's
    // conntrack entry lives on the replica its replies hash to.
    let conns = connections(48);
    let trace = stateful_trace(&conns, 8, false);
    assert_stateful_parallel_matches_native(&stateful_firewall_config(), &trace);
}

#[test]
fn global_config_runs_single_worker() {
    // A queue shares timing and occupancy state across every flow:
    // replicating it would change drop and ordering behavior, so the
    // registry verdict is Global and the runner degrades to one worker.
    let cfg = ClickConfig::parse("FromNetfront() -> Queue(16) -> ToNetfront();").unwrap();
    let runner = RunnerConfig::new().workers(8).parallel(&cfg).unwrap();
    assert!(!runner.shardable());
    assert_eq!(runner.shardability(), Shardability::Global);
    assert_eq!(runner.effective_workers(), 1);
    assert_eq!(runner.requested_workers(), 8);

    // A round-robin switch schedules across flows: also Global, and it
    // still forwards correctly on its single worker.
    let rr = ClickConfig::parse(
        "FromNetfront() -> rr :: RoundRobinSwitch(2); \
         rr[0] -> ToNetfront(); rr[1] -> ToNetfront(1);",
    )
    .unwrap();
    let mut runner = RunnerConfig::new().workers(8).parallel(&rr).unwrap();
    assert_eq!(runner.shardability(), Shardability::Global);
    assert_eq!(runner.effective_workers(), 1);
    let pkts: Vec<Packet> = (0..100)
        .map(|i| {
            PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, (i % 9) as u8 + 1), 5000 + i as u16)
                .dst(Ipv4Addr::new(198, 51, 100, 7), 53)
                .build()
        })
        .collect();
    let stats = runner.run(&pkts, 1);
    assert_eq!(stats.workers, 1);
    assert_eq!(stats.transmitted, 100);
}

#[test]
fn batch_size_does_not_change_results() {
    let clients: Vec<Ipv4Addr> = (0..4).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let trace = multi_flow_trace(1_000, 17, &clients);
    let mut reference = RunnerConfig::new().native(&cfg).unwrap();
    let (_, native_out) = reference.run_collect(&trace, 1);
    let want = by_flow(&native_out);
    for batch in [1usize, 32, 256] {
        let mut runner = RunnerConfig::new()
            .workers(4)
            .batch(batch)
            .parallel(&cfg)
            .unwrap();
        let (_, out) = runner.run_collect(&trace, 1);
        assert_eq!(by_flow(&out), want, "batch {batch}");
    }
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(src, dst, sport, dport, is_tcp)| {
            let b = if is_tcp {
                PacketBuilder::tcp()
            } else {
                PacketBuilder::udp()
            };
            b.src(Ipv4Addr::from(src), sport)
                .dst(Ipv4Addr::from(dst), dport)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dispatch invariant behind the ordering guarantee: for any
    /// packet and worker count, every packet of one directed 5-tuple
    /// lands on exactly one worker.
    #[test]
    fn dispatcher_never_splits_a_flow(
        pkt in arb_packet(),
        workers in 1usize..=16,
    ) {
        let key = FlowKey::of(&pkt).unwrap();
        let shard = FlowKey::shard_of(&pkt, workers);
        prop_assert!(shard < workers);
        // Same 5-tuple, different packet contents: same shard.
        let sibling = PacketBuilder::udp()
            .src(key.src, key.src_port)
            .dst(key.dst, key.dst_port)
            .pad_to(900)
            .build();
        if key.proto == IpProto::Udp {
            prop_assert_eq!(FlowKey::shard_of(&sibling, workers), shard);
        }
        // The shard is a pure function of the key.
        prop_assert_eq!(key.shard(workers), shard);
        prop_assert_eq!(key.shard(workers), key.shard(workers));
    }

    /// The symmetric-dispatch invariant behind stateful sharding: a flow
    /// sent outbound and its reply arriving inbound land on the same
    /// shard — even when NAT has rewritten the reply's destination to
    /// an arbitrary public endpoint, because the hash keys only on the
    /// remote endpoint, which source NAT never touches.
    #[test]
    fn symmetric_hash_pins_flow_and_reverse(
        pkt in arb_packet(),
        nat_addr in any::<u32>(),
        nat_port in any::<u16>(),
        workers in 1usize..=16,
    ) {
        let key = FlowKey::of(&pkt).unwrap();
        let fwd = FlowKey::symmetric_shard_of(&pkt, workers);
        prop_assert!(fwd < workers);
        // Pure function of key + direction (the packet enters on the
        // inside interface, ingress 0 = outbound).
        prop_assert_eq!(key.symmetric_shard(false, workers), fwd);
        if key.proto == IpProto::Udp {
            // The un-NATted reply simply reverses the tuple.
            let mut reply = PacketBuilder::udp()
                .src(key.dst, key.dst_port)
                .dst(key.src, key.src_port)
                .build();
            reply.meta.ingress = 1;
            prop_assert_eq!(FlowKey::symmetric_shard_of(&reply, workers), fwd);
            // The NATted reply targets whatever public endpoint the
            // translator picked; the shard must not change.
            let mut natted = PacketBuilder::udp()
                .src(key.dst, key.dst_port)
                .dst(Ipv4Addr::from(nat_addr), nat_port)
                .build();
            natted.meta.ingress = 1;
            prop_assert_eq!(FlowKey::symmetric_shard_of(&natted, workers), fwd);
        }
    }
}
