//! Criterion micro-benchmarks of the hot paths the figure benches rest
//! on: element push, configuration parsing, symbolic checking, and the
//! pattern matcher.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use innet::prelude::*;
use innet::symnet::{check_module, RequesterClass, SecurityContext};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn firewall_router() -> Router {
    let cfg = ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow udp, allow tcp dst port 80) -> ToNetfront();",
    )
    .unwrap();
    Router::from_config(&cfg, &Registry::standard()).unwrap()
}

fn bench_element_push(c: &mut Criterion) {
    let pkt = PacketBuilder::udp()
        .dst(Ipv4Addr::new(10, 0, 0, 1), 53)
        .pad_to(64)
        .build();
    c.bench_function("firewall_push_64B", |b| {
        let mut router = firewall_router();
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            router.deliver(0, black_box(pkt.clone()), t).unwrap();
            black_box(router.take_tx());
        });
    });
}

fn bench_config_parse(c: &mut Criterion) {
    let text = r#"
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();
    "#;
    c.bench_function("click_config_parse", |b| {
        b.iter(|| ClickConfig::parse(black_box(text)).unwrap());
    });
}

fn bench_pattern_match(c: &mut Criterion) {
    let expr: innet::packet::pattern::PatternExpr =
        "(tcp or udp) and dst net 10.0.0.0/8 and not dst port 22"
            .parse()
            .unwrap();
    let pkt = PacketBuilder::udp()
        .dst(Ipv4Addr::new(10, 1, 2, 3), 53)
        .build();
    c.bench_function("pattern_match", |b| {
        b.iter(|| black_box(&expr).matches(black_box(&pkt)));
    });
}

fn bench_security_check(c: &mut Criterion) {
    let cfg = ClickConfig::parse(
        r#"
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> ToNetfront();
        "#,
    )
    .unwrap();
    let ctx = SecurityContext {
        assigned_addr: Ipv4Addr::new(203, 0, 113, 10),
        registered: vec![Ipv4Addr::new(172, 16, 15, 133)],
        class: RequesterClass::ThirdParty,
    };
    let registry = Registry::standard();
    c.bench_function("security_check_figure4", |b| {
        b.iter(|| check_module(black_box(&cfg), black_box(&ctx), &registry).unwrap());
    });
}

fn bench_deploy(c: &mut Criterion) {
    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;
    c.bench_function("controller_deploy_figure4", |b| {
        b.iter_batched(
            || {
                let mut ctl = Controller::new(Topology::figure3());
                ctl.register_client(
                    "m",
                    RequesterClass::Client,
                    vec![Ipv4Addr::new(172, 16, 15, 133)],
                );
                (ctl, ClientRequest::parse(FIG4).unwrap())
            },
            |(mut ctl, req)| black_box(ctl.deploy("m", req).unwrap()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_element_push,
    bench_config_parse,
    bench_pattern_match,
    bench_security_check,
    bench_deploy
);
criterion_main!(benches);
