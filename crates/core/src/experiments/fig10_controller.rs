//! Figure 10: controller request-processing time versus operator network
//! size — the model "compilation" phase and the symbolic checking phase,
//! both measured for real on this machine.

use innet_controller::{ClientRequest, Controller};
use innet_symnet::RequesterClass;
use innet_topology::{generate, GenerateParams};

/// One scaling point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Middlebox count in the operator network.
    pub middleboxes: usize,
    /// Time spent building verification models (the analogue of the
    /// paper's Haskell compilation phase), in milliseconds.
    pub compile_ms: f64,
    /// Time spent in symbolic checking, in milliseconds.
    pub check_ms: f64,
}

/// The paper's Figure 4 request, deployed into generated topologies of
/// increasing size.
pub fn controller_scaling(sizes: &[usize]) -> Vec<ScalingPoint> {
    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;

    sizes
        .iter()
        .map(|&n| {
            let topo = generate(&GenerateParams {
                middleboxes: n,
                platform_every: 4,
                seed: 42,
            });
            let mut ctl = Controller::new(topo);
            ctl.register_client(
                "mobile-7",
                RequesterClass::Client,
                vec!["172.16.15.133".parse().expect("valid literal")],
            );
            let req = ClientRequest::parse(FIG4).expect("valid request");
            let resp = ctl.deploy("mobile-7", req).expect("deployable");
            ScalingPoint {
                middleboxes: n,
                compile_ms: resp.compile_ns as f64 / 1e6,
                check_ms: resp.check_ns as f64 / 1e6,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_succeeds_at_every_size() {
        let pts = controller_scaling(&[1, 15]);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.compile_ms > 0.0);
            assert!(p.check_ms > 0.0);
        }
    }

    #[test]
    fn cost_grows_subquadratically() {
        // Linear scaling is the paper's claim; allow generous noise but
        // reject exponential blow-up: 16x middleboxes must cost less than
        // ~64x the total time.
        let pts = controller_scaling(&[7, 127]);
        let t0 = pts[0].compile_ms + pts[0].check_ms;
        let t1 = pts[1].compile_ms + pts[1].check_ms;
        assert!(
            t1 < t0 * 64.0 + 50.0,
            "7 boxes: {t0:.1} ms, 127 boxes: {t1:.1} ms"
        );
    }
}
