//! Flow-sharded scaling: `ParallelRunner` throughput across worker and
//! batch sweeps, against the single-threaded `NativeRunner` baseline.
//!
//! Three corpora: the stock consolidated firewall (the paper's
//! §5/Figure 8 multi-tenant configuration — stateless, so it shards
//! under the directed hash), the Figure 12 middlebox corpus (now
//! including `nat` as a flow-partitionable configuration that shards
//! under the symmetric hash), and a bidirectional stateful corpus (NAT
//! gateway + stateful firewall driven with interleaved forward and
//! reverse traffic — the scaling the symmetric dispatch hash buys).

use criterion::{criterion_group, criterion_main, Criterion};
use innet::click::elements::IpNat;
use innet::platform::{
    consolidated_config, middlebox_config, nat_gateway_config, stateful_firewall_config,
    RunnerConfig,
};
use innet::prelude::*;
use std::hint::black_box;
use std::net::Ipv4Addr;

const TRACE_LEN: usize = 2048;
const FLOWS: usize = 64;

fn clients(n: usize) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(203, 0, (113 + i / 250) as u8, (1 + i % 250) as u8))
        .collect()
}

fn trace(dsts: &[Ipv4Addr]) -> Vec<Packet> {
    (0..TRACE_LEN)
        .map(|i| {
            let f = i % FLOWS;
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                .dst(dsts[f % dsts.len()], 80)
                .pad_to(64)
                .build()
        })
        .collect()
}

/// Workers ∈ {1, 2, 4, 8} × batch ∈ {1, 32, 256} on the stock
/// consolidated firewall.
fn bench_consolidated_sweep(c: &mut Criterion) {
    let addrs = clients(16);
    let cfg = consolidated_config(&addrs);
    let pkts = trace(&addrs);
    for workers in [1usize, 2, 4, 8] {
        for batch in [1usize, 32, 256] {
            let name = format!("parallel_consolidated16_w{workers}_b{batch}");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(batch)
                    .parallel(&cfg)
                    .unwrap();
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
    // The single-threaded engine at the same batch sizes, for the
    // sharding-overhead comparison (w1 vs native isolates dispatcher +
    // ring cost).
    for batch in [1usize, 32, 256] {
        let name = format!("native_consolidated16_b{batch}");
        c.bench_function(&name, |b| {
            let mut runner = RunnerConfig::new().batch(batch).native(&cfg).unwrap();
            b.iter(|| black_box(runner.run(&pkts, 1)));
        });
    }
}

/// The Figure 12 middlebox corpus at 1 and 4 workers. `nat` and
/// `flowmeter` keep per-connection state only (flow-partitionable):
/// they now shard under the symmetric hash, so their `w4` rows scale
/// like the stateless kinds instead of pinning to one worker.
fn bench_middlebox_corpus(c: &mut Criterion) {
    let dsts = [Ipv4Addr::new(10, 0, 0, 1)];
    let pkts = trace(&dsts);
    for kind in ["firewall", "iprouter", "flowmeter", "nat"] {
        let cfg = middlebox_config(kind).expect("known middlebox kind");
        for workers in [1usize, 4] {
            let name = format!("parallel_{kind}_w{workers}_b32");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(32)
                    .parallel(&cfg)
                    .unwrap();
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
}

/// An interleaved bidirectional trace for the stateful corpus: even
/// rounds send outbound openers (ingress 0), odd rounds send replies
/// arriving on the outside interface (ingress 1). For the NAT gateway,
/// replies target the deterministic mapped port on the public address;
/// for the firewall they target the inside host directly. Connections
/// are filtered to collision-free NAT preferred ports so every reply
/// finds its mapping.
fn bidirectional_trace(public: Ipv4Addr, nat: bool) -> Vec<Packet> {
    let mut conns: Vec<(FlowKey, u16)> = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    let mut c = 0usize;
    while conns.len() < FLOWS {
        let key = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, (c % 250) as u8 + 1),
            dst: Ipv4Addr::new(198, 51, 100, (c % 250) as u8 + 1),
            proto: IpProto::Udp,
            src_port: 5000 + c as u16,
            dst_port: 53,
        };
        c += 1;
        let mapped = IpNat::preferred_port(&key);
        if used.insert(mapped) {
            conns.push((key, mapped));
        }
    }
    let rounds = TRACE_LEN / FLOWS;
    let mut pkts = Vec::with_capacity(rounds * FLOWS);
    for r in 0..rounds {
        for (key, mapped) in &conns {
            if r % 2 == 0 {
                pkts.push(
                    PacketBuilder::udp()
                        .src(key.src, key.src_port)
                        .dst(key.dst, key.dst_port)
                        .pad_to(64)
                        .build(),
                );
            } else {
                let (dst, dport) = if nat {
                    (public, *mapped)
                } else {
                    (key.src, key.src_port)
                };
                let mut reply = PacketBuilder::udp()
                    .src(key.dst, key.dst_port)
                    .dst(dst, dport)
                    .pad_to(64)
                    .build();
                reply.meta.ingress = 1;
                pkts.push(reply);
            }
        }
    }
    pkts
}

/// The stateful corpus: bidirectional NAT gateway and stateful firewall
/// at 1/2/4/8 workers under the symmetric dispatch hash — the
/// configurations that used to degrade to one worker.
fn bench_stateful_corpus(c: &mut Criterion) {
    let public = Ipv4Addr::new(203, 0, 113, 1);
    let corpus = [
        ("natgw", nat_gateway_config(public), true),
        ("statefulfw", stateful_firewall_config(), false),
    ];
    for (kind, cfg, is_nat) in corpus {
        let pkts = bidirectional_trace(public, is_nat);
        for workers in [1usize, 2, 4, 8] {
            let name = format!("parallel_{kind}_bidir_w{workers}_b32");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(32)
                    .parallel(&cfg)
                    .unwrap();
                assert_eq!(runner.effective_workers(), workers);
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
}

criterion_group!(
    benches,
    bench_consolidated_sweep,
    bench_middlebox_corpus,
    bench_stateful_corpus
);
criterion_main!(benches);
