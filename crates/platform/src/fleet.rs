//! The fleet fabric: many hosts, one operator (DESIGN.md §15).
//!
//! A [`Fleet`] owns one [`Host`] + [`SwitchController`] pair per
//! platform node of a capacitated [`Topology`], and a switch fabric that
//! forwards packets host-to-host over [`innet_sim::link::Link`]s whose
//! rate and latency come from the topology's per-link attributes — so
//! cross-host delivery pays real serialization and propagation delay
//! instead of being assumed free.
//!
//! Live migration reuses the suspend/resume machinery end to end:
//! suspend on the source host, [`Host::extract`] the parked VM, a bulk
//! state transfer over the bottleneck path link, [`Host::implant`] on
//! the destination (which charges the calibrated resume latency), and a
//! switch-controller re-bind ([`SwitchController::adopt`]). Packets
//! addressed to a migrating tenant are buffered at the fleet layer for
//! the whole window and flushed in arrival order at completion — the
//! same invariant the suspend window established, one level up.
//!
//! A 1-host fleet is the differential oracle: every packet is local, the
//! fabric is never touched, and delivery degenerates to exactly the
//! single-host `SwitchController::on_packet` path — byte- and
//! stats-identical to driving a bare [`Host`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use innet_packet::Packet;
use innet_sim::des::SimTime;
use innet_sim::link::Link as SimLink;
use innet_topology::{NodeId, NodeKind, PathAttrs, PlatformSpec, Topology};
use rand::{rngs::StdRng, SeedableRng};

use crate::calib::vm_mem_mb;
use crate::switch::{ClientEntry, SwitchController, SwitchStats};
use crate::vm::{Host, HostError, Vm, VmState};

/// Errors from fleet operations.
#[derive(Debug)]
pub enum FleetError {
    /// The node id is not a platform of this fleet.
    UnknownPlatform(NodeId),
    /// No tenant with this address is registered anywhere in the fleet.
    UnknownTenant(Ipv4Addr),
    /// The tenant is already mid-migration.
    MigrationInProgress(Ipv4Addr),
    /// The fabric has no path between the two platforms.
    NoPath(NodeId, NodeId),
    /// The platform has been killed and cannot serve.
    DeadPlatform(NodeId),
    /// CDN replicas were requested for a stateful tenant, whose
    /// connection state cannot be copied.
    StatefulOrigin(Ipv4Addr),
    /// An underlying host operation failed.
    Host(HostError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownPlatform(id) => write!(f, "node {id} is not a fleet platform"),
            FleetError::UnknownTenant(a) => write!(f, "no tenant registered at {a}"),
            FleetError::MigrationInProgress(a) => write!(f, "tenant {a} is already migrating"),
            FleetError::NoPath(a, b) => write!(f, "no fabric path from node {a} to node {b}"),
            FleetError::DeadPlatform(id) => write!(f, "platform {id} is dead"),
            FleetError::StatefulOrigin(a) => {
                write!(f, "tenant {a} is stateful and cannot be replicated")
            }
            FleetError::Host(e) => write!(f, "host: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<HostError> for FleetError {
    fn from(e: HostError) -> Self {
        FleetError::Host(e)
    }
}

/// A completed live migration, for downtime accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The migrated tenant.
    pub addr: Ipv4Addr,
    /// Source platform.
    pub from: NodeId,
    /// Destination platform.
    pub to: NodeId,
    /// When the migration was triggered.
    pub started_at: SimTime,
    /// When the tenant's VM was runnable on the destination.
    pub completed_at: SimTime,
    /// `completed_at - started_at`: the window during which arriving
    /// packets were buffered rather than processed.
    pub downtime_ns: SimTime,
}

/// Fleet-level counters (per-host counters live in each host's and
/// switch controller's own instruments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Packets handed to the fleet.
    pub injected: u64,
    /// Packets that crossed the fabric between platforms.
    pub fabric_forwards: u64,
    /// Packets buffered at the fleet layer during a migration window.
    pub migration_buffered: u64,
    /// Migrations triggered.
    pub migrations_started: u64,
    /// Migrations completed.
    pub migrations_completed: u64,
    /// Packets abandoned because a host operation failed mid-delivery
    /// (e.g. a boot hit the memory ceiling).
    pub host_errors: u64,
    /// Packets tail-dropped at a fabric link whose queue exceeded the cap.
    pub link_drops: u64,
    /// In-flight fabric packets re-forwarded because their destination
    /// died or their tenant moved while they were on the wire.
    pub reroutes: u64,
    /// Packets lost at a dead platform (or abandoned with a dead
    /// migration) with nowhere alive to re-route to.
    pub dead_drops: u64,
    /// Tenants re-homed off a dead platform (cold moves, not migrations).
    pub rehomes: u64,
}

/// Per-link fabric accounting: what crossed, what was refused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUsage {
    /// Packets accepted onto the link.
    pub packets: u64,
    /// Bytes accepted onto the link.
    pub bytes: u64,
    /// Packets tail-dropped because the queue exceeded the cap.
    pub drops: u64,
    /// Bytes of those dropped packets.
    pub dropped_bytes: u64,
}

/// One fabric link's capacity and accounting, for bandwidth audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// Sending platform.
    pub from: NodeId,
    /// Receiving platform.
    pub to: NodeId,
    /// The path's bottleneck capacity the link serializes at.
    pub bandwidth_bps: u64,
    /// When the link's FIFO queue drains (last accepted bit leaves).
    pub busy_until_ns: SimTime,
    /// Accepted/dropped packet and byte counts.
    pub usage: LinkUsage,
}

/// A fabric link: the FIFO sim link plus its capacity and usage ledger.
struct FabricLink {
    link: SimLink,
    bandwidth_bps: u64,
    usage: LinkUsage,
}

/// Re-forward budget for a fabric packet before it is declared dead —
/// bounds the work a pathological re-home loop could cause.
const MAX_FABRIC_HOPS: u8 = 4;

/// A packet in flight on the fabric.
struct FabricEvent {
    at: SimTime,
    seq: u64,
    /// Where the packet entered the fabric (the re-route vantage if the
    /// destination dies while the packet is on the wire).
    origin: NodeId,
    dst: NodeId,
    /// Fabric traversals so far, compared against [`MAX_FABRIC_HOPS`].
    hops: u8,
    pkt: Packet,
}

impl PartialEq for FabricEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for FabricEvent {}

impl Ord for FabricEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for FabricEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Where a migration currently is in the protocol.
enum MigrationStage {
    /// Waiting for the source host's suspend to complete.
    Suspending { done_at: SimTime },
    /// State in flight over the fabric.
    Transferring {
        arrive_at: SimTime,
        vm: Box<Vm>,
        entry: Box<ClientEntry>,
    },
    /// Resuming on the destination host.
    Resuming { ready_at: SimTime },
}

struct Migration {
    from: NodeId,
    to: NodeId,
    started_at: SimTime,
    stage: MigrationStage,
    /// Packets that arrived for the tenant during the window, flushed in
    /// arrival order at completion.
    buffered: Vec<Packet>,
}

/// One platform's host, switch controller, and shared registry.
struct Site {
    host: Host,
    switch: SwitchController,
    obs: innet_obs::Registry,
}

/// N hosts keyed by topology [`NodeId`], wired by a latency/bandwidth
/// fabric. See the module docs for the model.
pub struct Fleet {
    topo: Topology,
    sites: BTreeMap<NodeId, Site>,
    /// Tenant address -> home platform.
    locations: HashMap<Ipv4Addr, NodeId>,
    /// Shortest-path attributes from each platform, computed on demand.
    path_cache: HashMap<NodeId, Vec<Option<PathAttrs>>>,
    /// One FIFO sim link per ordered platform pair, built on first use
    /// from the path's bottleneck bandwidth and end-to-end latency.
    fabric: HashMap<(NodeId, NodeId), FabricLink>,
    /// Tail-drop threshold: a packet that would wait longer than this in
    /// a link's FIFO queue is dropped instead of enqueued.
    max_queue_ns: SimTime,
    events: BinaryHeap<Reverse<FabricEvent>>,
    seq: u64,
    migrating: BTreeMap<Ipv4Addr, Migration>,
    records: Vec<MigrationRecord>,
    /// Platforms killed by a scenario: sites stay for bookkeeping but
    /// deliver nothing and accept no placements.
    dead: BTreeSet<NodeId>,
    /// CDN tiering: extra platforms whose switches hold a replica of a
    /// tenant's config; ingress resolves to the nearest alive copy.
    replicas: HashMap<Ipv4Addr, Vec<NodeId>>,
    /// Per-tenant demand weights from an attached traffic matrix; when
    /// present, `rebalance` moves load, not VM counts.
    demand: Option<HashMap<Ipv4Addr, u64>>,
    stats: FleetStats,
    rng: StdRng,
}

/// Default fabric queue cap: 50 ms of queueing before tail drop.
const DEFAULT_MAX_QUEUE_NS: SimTime = 50_000_000;

impl Fleet {
    /// Builds a fleet with one host per platform node of `topo`, sized
    /// by each platform's `mem_mb`.
    pub fn new(topo: &Topology) -> Fleet {
        let mut sites = BTreeMap::new();
        for id in topo.platforms() {
            let NodeKind::Platform(spec) = &topo.node(id).kind else {
                unreachable!("platforms() returns platform nodes");
            };
            let obs = innet_obs::Registry::new();
            let host = Host::with_obs(spec.mem_mb, &obs);
            let mut switch = SwitchController::new();
            switch.attach_metrics(&obs);
            sites.insert(id, Site { host, switch, obs });
        }
        Fleet {
            topo: topo.clone(),
            sites,
            locations: HashMap::new(),
            path_cache: HashMap::new(),
            fabric: HashMap::new(),
            max_queue_ns: DEFAULT_MAX_QUEUE_NS,
            events: BinaryHeap::new(),
            seq: 0,
            migrating: BTreeMap::new(),
            records: Vec::new(),
            dead: BTreeSet::new(),
            replicas: HashMap::new(),
            demand: None,
            stats: FleetStats::default(),
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// A 1-host fleet over a trivial internet—platform topology: the
    /// differential oracle configuration (see the module docs).
    pub fn single_host(mem_mb: u64) -> Fleet {
        let mut t = Topology::new();
        let internet = t.add("internet", NodeKind::Internet).expect("fresh");
        let platform = t
            .add(
                "platform",
                NodeKind::Platform(PlatformSpec {
                    mem_mb,
                    ..PlatformSpec::default()
                }),
            )
            .expect("fresh");
        t.link_bidir(internet, 0, platform, 0);
        Fleet::new(&t)
    }

    /// The fleet's platform ids, ascending.
    pub fn platforms(&self) -> Vec<NodeId> {
        self.sites.keys().copied().collect()
    }

    /// The topology the fleet was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Fleet-level counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Completed migrations, in completion order.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Per-link capacity and usage, ascending by `(from, to)`. Only links
    /// that have carried (or refused) at least one packet appear.
    pub fn link_report(&self) -> Vec<LinkReport> {
        let mut out: Vec<LinkReport> = self
            .fabric
            .iter()
            .map(|(&(from, to), l)| LinkReport {
                from,
                to,
                bandwidth_bps: l.bandwidth_bps,
                busy_until_ns: l.link.busy_until(),
                usage: l.usage,
            })
            .collect();
        out.sort_unstable_by_key(|r| (r.from, r.to));
        out
    }

    /// Sets the fabric tail-drop cap: packets that would queue longer
    /// than `max_queue_ns` at a link are dropped (and counted) instead.
    pub fn set_fabric_queue_ns(&mut self, max_queue_ns: SimTime) {
        self.max_queue_ns = max_queue_ns;
    }

    /// Whether a platform is alive (exists and has not been killed).
    pub fn is_alive(&self, platform: NodeId) -> bool {
        self.sites.contains_key(&platform) && !self.dead.contains(&platform)
    }

    /// The fleet's alive platform ids, ascending.
    pub fn alive_platforms(&self) -> Vec<NodeId> {
        self.sites
            .keys()
            .copied()
            .filter(|id| !self.dead.contains(id))
            .collect()
    }

    /// Tenants homed at a platform, ascending by address.
    pub fn tenants_at(&self, platform: NodeId) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = self
            .locations
            .iter()
            .filter(|&(_, &home)| home == platform)
            .map(|(&addr, _)| addr)
            .collect();
        out.sort_unstable();
        out
    }

    /// The extra platforms holding a replica of `addr`'s config.
    pub fn replicas(&self, addr: Ipv4Addr) -> &[NodeId] {
        self.replicas.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// CDN tiering: clones `origin`'s registration onto each alive edge
    /// platform, so ingress traffic resolves to the nearest copy instead
    /// of crossing the fabric to the origin. Returns the number of edges
    /// actually added (dead, unknown, duplicate, and origin-home edges
    /// are skipped). The origin must be a stateless tenant — replicas
    /// share no connection state.
    pub fn add_replicas(&mut self, addr: Ipv4Addr, edges: &[NodeId]) -> Result<usize, FleetError> {
        let home = self
            .locations
            .get(&addr)
            .copied()
            .ok_or(FleetError::UnknownTenant(addr))?;
        let entry = self
            .sites
            .get(&home)
            .and_then(|s| s.switch.client(addr))
            .cloned()
            .ok_or(FleetError::UnknownTenant(addr))?;
        if entry.stateful {
            return Err(FleetError::StatefulOrigin(addr));
        }
        let mut added = 0;
        for &edge in edges {
            if edge == home || !self.is_alive(edge) {
                continue;
            }
            let existing = self.replicas.entry(addr).or_default();
            if existing.contains(&edge) {
                continue;
            }
            existing.push(edge);
            existing.sort_unstable();
            let site = self.sites.get_mut(&edge).expect("alive platform");
            site.switch.register(entry.clone());
            added += 1;
        }
        Ok(added)
    }

    /// Attaches per-tenant demand weights (e.g. from
    /// [`crate::traffic::TrafficMatrix::demand_by_tenant`]):
    /// `rebalance` then balances offered load instead of live-VM counts.
    pub fn attach_demand(&mut self, demand: HashMap<Ipv4Addr, u64>) {
        self.demand = Some(demand);
    }

    /// Detaches the demand weights; `rebalance` falls back to VM counts.
    pub fn clear_demand(&mut self) {
        self.demand = None;
    }

    /// Whether a traffic matrix's demand weights are attached.
    pub fn demand_attached(&self) -> bool {
        self.demand.is_some()
    }

    /// The host at a platform.
    pub fn host(&self, platform: NodeId) -> Option<&Host> {
        self.sites.get(&platform).map(|s| &s.host)
    }

    /// The switch controller at a platform.
    pub fn switch(&self, platform: NodeId) -> Option<&SwitchController> {
        self.sites.get(&platform).map(|s| &s.switch)
    }

    /// The metrics registry shared by a platform's host and switch.
    pub fn obs(&self, platform: NodeId) -> Option<&innet_obs::Registry> {
        self.sites.get(&platform).map(|s| &s.obs)
    }

    /// A tenant's home platform.
    pub fn location(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.locations.get(&addr).copied()
    }

    /// Switch-controller counters summed across the fleet.
    pub fn aggregate_switch_stats(&self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for site in self.sites.values() {
            let s = site.switch.stats();
            total.packets += s.packets;
            total.boots += s.boots;
            total.resumes += s.resumes;
            total.delivered += s.delivered;
            total.buffered += s.buffered;
            total.dropped += s.dropped;
            total.unknown += s.unknown;
        }
        total
    }

    /// Registers a tenant at a platform.
    pub fn register(&mut self, platform: NodeId, entry: ClientEntry) -> Result<(), FleetError> {
        let site = self
            .sites
            .get_mut(&platform)
            .ok_or(FleetError::UnknownPlatform(platform))?;
        self.locations.insert(entry.addr, platform);
        site.switch.register(entry);
        Ok(())
    }

    fn path(&mut self, from: NodeId, to: NodeId) -> Option<PathAttrs> {
        if !self.path_cache.contains_key(&from) {
            let paths = self.topo.paths_from(from);
            self.path_cache.insert(from, paths);
        }
        self.path_cache
            .get(&from)
            .and_then(|paths| paths.get(to).copied().flatten())
    }

    /// Where a packet should be processed: its tenant's home platform,
    /// or the lowest platform (the fleet's border switch) for unknown
    /// destinations — which then records the drop, exactly like the
    /// single-host path.
    fn dest_platform(&self, pkt: &Packet) -> NodeId {
        pkt.ipv4()
            .ok()
            .and_then(|ip| self.locations.get(&ip.dst()).copied())
            .unwrap_or_else(|| *self.sites.keys().next().expect("fleet has a platform"))
    }

    /// Resolves the serving platform seen from `vantage`: the tenant's
    /// home when it is alive and untiered, else the lowest-latency alive
    /// copy among home + CDN replicas (ties to the lower platform id).
    /// Falls back to the (dead) home when nothing alive can serve, so
    /// the drop is charged where it happens.
    fn resolve_dest(&mut self, vantage: NodeId, pkt: &Packet) -> NodeId {
        let primary = self.dest_platform(pkt);
        let reps: Vec<NodeId> = pkt
            .ipv4()
            .ok()
            .and_then(|ip| self.replicas.get(&ip.dst()).cloned())
            .unwrap_or_default();
        if reps.is_empty() && !self.dead.contains(&primary) {
            return primary;
        }
        let mut best: Option<(SimTime, NodeId)> = None;
        for cand in std::iter::once(primary).chain(reps) {
            if !self.is_alive(cand) {
                continue;
            }
            let cost = if cand == vantage {
                0
            } else {
                match self.path(vantage, cand) {
                    Some(attrs) => attrs.latency_ns,
                    None => continue,
                }
            };
            if best.is_none_or(|b| (cost, cand) < b) {
                best = Some((cost, cand));
            }
        }
        best.map(|(_, n)| n).unwrap_or(primary)
    }

    /// Puts a packet on the `from -> to` fabric link at `now`. Returns
    /// `Ok(true)` when enqueued, `Ok(false)` when tail-dropped at the
    /// queue cap.
    fn fabric_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        pkt: Packet,
        now: SimTime,
        hops: u8,
    ) -> Result<bool, FleetError> {
        let attrs = self.path(from, to).ok_or(FleetError::NoPath(from, to))?;
        let link = self.fabric.entry((from, to)).or_insert_with(|| FabricLink {
            link: SimLink::new(attrs.bandwidth_bps as f64, attrs.latency_ns, 0.0),
            bandwidth_bps: attrs.bandwidth_bps,
            usage: LinkUsage::default(),
        });
        let queue_ns = link.link.busy_until().saturating_sub(now);
        if queue_ns > self.max_queue_ns {
            link.usage.drops += 1;
            link.usage.dropped_bytes += pkt.len() as u64;
            self.stats.link_drops += 1;
            return Ok(false);
        }
        let arrival = link
            .link
            .transmit(now, pkt.len(), &mut self.rng)
            .expect("fabric links are lossless");
        link.usage.packets += 1;
        link.usage.bytes += pkt.len() as u64;
        self.events.push(Reverse(FabricEvent {
            at: arrival,
            seq: self.seq,
            origin: from,
            dst: to,
            hops,
            pkt,
        }));
        self.seq += 1;
        self.stats.fabric_forwards += 1;
        Ok(true)
    }

    /// Delivers a packet at its destination platform at time `at`,
    /// appending transmissions to `out`. Packets for migrating tenants
    /// are buffered at the fleet layer.
    fn deliver_local(
        &mut self,
        platform: NodeId,
        pkt: Packet,
        at: SimTime,
        out: &mut Vec<(NodeId, u16, Packet)>,
    ) {
        if let Ok(ip) = pkt.ipv4() {
            // Replica-served packets bypass the migration buffer: only
            // the home copy moves, the edge copies keep serving.
            let at_replica = self
                .replicas
                .get(&ip.dst())
                .is_some_and(|r| r.contains(&platform));
            if !at_replica {
                if let Some(m) = self.migrating.get_mut(&ip.dst()) {
                    m.buffered.push(pkt);
                    self.stats.migration_buffered += 1;
                    return;
                }
            }
        }
        if self.dead.contains(&platform) {
            self.stats.dead_drops += 1;
            return;
        }
        let Some(site) = self.sites.get_mut(&platform) else {
            self.stats.host_errors += 1;
            return;
        };
        match site.switch.on_packet(&mut site.host, pkt, at) {
            Ok(tx) => out.extend(tx.into_iter().map(|(iface, p)| (platform, iface, p))),
            Err(_) => self.stats.host_errors += 1,
        }
    }

    /// Hands the fleet a packet at virtual time `now`, delivered at its
    /// tenant's home platform with no fabric cost (the single-host
    /// oracle path). Returns synchronous transmissions as
    /// `(platform, iface, packet)`.
    #[deprecated(note = "drive the fleet through `FleetDriver` (schedule with \
                         `FleetDriver::inject`); direct calls remain for oracles")]
    pub fn inject(&mut self, pkt: Packet, now: SimTime) -> Vec<(NodeId, u16, Packet)> {
        self.inject_impl(pkt, now)
    }

    pub(crate) fn inject_impl(&mut self, pkt: Packet, now: SimTime) -> Vec<(NodeId, u16, Packet)> {
        self.stats.injected += 1;
        let primary = self.dest_platform(&pkt);
        let dst = self.resolve_dest(primary, &pkt);
        let mut out = Vec::new();
        self.deliver_local(dst, pkt, now, &mut out);
        out
    }

    /// Hands the fleet a packet arriving at platform `ingress`. If the
    /// nearest serving copy (home or CDN replica) lives elsewhere the
    /// packet crosses the fabric — paying the path's serialization and
    /// propagation delay on a FIFO link, subject to the queue cap — and
    /// is delivered by the next [`Fleet::advance`] past its arrival.
    #[deprecated(note = "drive the fleet through `FleetDriver` (schedule with \
                         `FleetDriver::inject_at`); direct calls remain for oracles")]
    pub fn inject_at(
        &mut self,
        ingress: NodeId,
        pkt: Packet,
        now: SimTime,
    ) -> Result<Vec<(NodeId, u16, Packet)>, FleetError> {
        self.inject_at_impl(ingress, pkt, now)
    }

    pub(crate) fn inject_at_impl(
        &mut self,
        ingress: NodeId,
        pkt: Packet,
        now: SimTime,
    ) -> Result<Vec<(NodeId, u16, Packet)>, FleetError> {
        if !self.sites.contains_key(&ingress) {
            return Err(FleetError::UnknownPlatform(ingress));
        }
        if self.dead.contains(&ingress) {
            return Err(FleetError::DeadPlatform(ingress));
        }
        self.stats.injected += 1;
        let dst = self.resolve_dest(ingress, &pkt);
        if dst == ingress {
            let mut out = Vec::new();
            self.deliver_local(dst, pkt, now, &mut out);
            return Ok(out);
        }
        self.fabric_send(ingress, dst, pkt, now, 1)?;
        Ok(Vec::new())
    }

    /// Starts a live migration of `addr`'s VM to platform `to`.
    ///
    /// The tenant's traffic is buffered at the fleet layer from this
    /// instant until the VM is runnable on `to`; [`Fleet::advance`]
    /// drives the protocol through its stages. A tenant with no bound VM
    /// (never active, or reclaimed) moves instantly with zero downtime —
    /// there is no state to transfer.
    pub fn migrate(&mut self, addr: Ipv4Addr, to: NodeId, now: SimTime) -> Result<(), FleetError> {
        if self.migrating.contains_key(&addr) {
            return Err(FleetError::MigrationInProgress(addr));
        }
        if !self.sites.contains_key(&to) {
            return Err(FleetError::UnknownPlatform(to));
        }
        if self.dead.contains(&to) {
            return Err(FleetError::DeadPlatform(to));
        }
        let from = self
            .locations
            .get(&addr)
            .copied()
            .ok_or(FleetError::UnknownTenant(addr))?;
        if self.dead.contains(&from) {
            // Nothing live to migrate; failover uses `rehome` instead.
            return Err(FleetError::DeadPlatform(from));
        }
        if from == to {
            return Ok(());
        }
        // The path must exist before we take the VM down.
        self.path(from, to).ok_or(FleetError::NoPath(from, to))?;
        let src = self.sites.get_mut(&from).expect("location is a platform");
        let Some(vm) = src.switch.binding(addr) else {
            // No VM: move the registration, done.
            let entry = src
                .switch
                .unregister(addr)
                .ok_or(FleetError::UnknownTenant(addr))?;
            let dst = self.sites.get_mut(&to).expect("checked above");
            dst.switch.register(entry);
            self.locations.insert(addr, to);
            self.stats.migrations_started += 1;
            self.stats.migrations_completed += 1;
            self.records.push(MigrationRecord {
                addr,
                from,
                to,
                started_at: now,
                completed_at: now,
                downtime_ns: 0,
            });
            return Ok(());
        };
        let state = src.host.vm(vm)?.state;
        let stage = match state {
            VmState::Running => {
                let done_at = src.host.suspend(vm, now)?;
                MigrationStage::Suspending { done_at }
            }
            // Already parked: skip straight past the suspend.
            VmState::Suspended => MigrationStage::Suspending { done_at: now },
            _ => return Err(FleetError::Host(HostError::BadState(vm, "migrate"))),
        };
        self.stats.migrations_started += 1;
        self.migrating.insert(
            addr,
            Migration {
                from,
                to,
                started_at: now,
                stage,
                buffered: Vec::new(),
            },
        );
        Ok(())
    }

    /// Advances every migration whose current stage deadline has passed,
    /// repeating until a fixed point — a single `advance` far enough
    /// into the future carries a migration all the way to completion.
    fn advance_migrations(&mut self, now: SimTime, out: &mut Vec<(NodeId, u16, Packet)>) {
        loop {
            let mut changed = false;
            let addrs: Vec<Ipv4Addr> = self.migrating.keys().copied().collect();
            for addr in addrs {
                let m = self.migrating.get_mut(&addr).expect("just listed");
                match &mut m.stage {
                    MigrationStage::Suspending { done_at } if now >= *done_at => {
                        let done_at = *done_at;
                        let (from, to) = (m.from, m.to);
                        let attrs = self.path(from, to).expect("checked at migrate()");
                        let src = self.sites.get_mut(&from).expect("platform");
                        // Let the suspend complete, then lift the VM out.
                        out.extend(
                            src.host
                                .advance(done_at)
                                .into_iter()
                                .map(|(_, iface, p)| (from, iface, p)),
                        );
                        let vm_id = src.switch.binding(addr).expect("bound at migrate()");
                        let vm = match src.host.extract(vm_id) {
                            Ok(vm) => vm,
                            Err(_) => {
                                // The VM vanished mid-protocol (e.g. an
                                // idle reclaim destroyed it). Abort the
                                // migration; buffered packets replay at
                                // the original home.
                                self.abort_migration(addr, now, out);
                                changed = true;
                                continue;
                            }
                        };
                        let entry = src.switch.unregister(addr).expect("registered");
                        let link = SimLink::new(attrs.bandwidth_bps as f64, attrs.latency_ns, 0.0);
                        let bytes = vm_mem_mb(vm.kind) * 1024 * 1024;
                        let arrive_at = done_at + link.bulk_transfer_ns(bytes);
                        let m = self.migrating.get_mut(&addr).expect("still migrating");
                        m.stage = MigrationStage::Transferring {
                            arrive_at,
                            vm: Box::new(vm),
                            entry: Box::new(entry),
                        };
                        changed = true;
                    }
                    MigrationStage::Transferring { arrive_at, .. } if now >= *arrive_at => {
                        let arrive_at = *arrive_at;
                        let to = m.to;
                        let stage = std::mem::replace(
                            &mut m.stage,
                            MigrationStage::Resuming { ready_at: 0 },
                        );
                        let MigrationStage::Transferring { vm, entry, .. } = stage else {
                            unreachable!("matched above");
                        };
                        let dst = self.sites.get_mut(&to).expect("platform");
                        match dst.host.implant(*vm, arrive_at) {
                            Ok((id, ready_at)) => {
                                dst.switch.adopt(*entry, id, arrive_at);
                                self.locations.insert(addr, to);
                                let m = self.migrating.get_mut(&addr).expect("migrating");
                                m.stage = MigrationStage::Resuming { ready_at };
                            }
                            Err(_) => {
                                // Destination filled up during the
                                // transfer: the VM's state is lost (as a
                                // destroy would lose it); surface via
                                // host_errors and drop the migration.
                                self.stats.host_errors += 1;
                                self.abort_migration(addr, now, out);
                            }
                        }
                        changed = true;
                    }
                    MigrationStage::Resuming { ready_at } if now >= *ready_at => {
                        let ready_at = *ready_at;
                        let (from, to, started_at) = (m.from, m.to, m.started_at);
                        let buffered = std::mem::take(&mut m.buffered);
                        self.migrating.remove(&addr);
                        let dst = self.sites.get_mut(&to).expect("platform");
                        // Complete the resume, then flush the window's
                        // packets in arrival order.
                        out.extend(
                            dst.host
                                .advance(ready_at)
                                .into_iter()
                                .map(|(_, iface, p)| (to, iface, p)),
                        );
                        for pkt in buffered {
                            self.deliver_local(to, pkt, ready_at, out);
                        }
                        self.stats.migrations_completed += 1;
                        self.records.push(MigrationRecord {
                            addr,
                            from,
                            to,
                            started_at,
                            completed_at: ready_at,
                            downtime_ns: ready_at.saturating_sub(started_at),
                        });
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Abandons a migration, replaying its buffered packets at the
    /// tenant's current home.
    fn abort_migration(
        &mut self,
        addr: Ipv4Addr,
        now: SimTime,
        out: &mut Vec<(NodeId, u16, Packet)>,
    ) {
        if let Some(m) = self.migrating.remove(&addr) {
            let home = self.locations.get(&addr).copied().unwrap_or(m.from);
            for pkt in m.buffered {
                self.deliver_local(home, pkt, now, out);
            }
        }
    }

    /// Whether `platform` still serves `pkt`: it is the tenant's current
    /// home or holds a CDN replica. Packets in flight to a platform that
    /// stopped serving (death, re-home) are re-routed at arrival.
    fn serves(&self, platform: NodeId, pkt: &Packet) -> bool {
        if self.dead.contains(&platform) {
            return false;
        }
        let Ok(ip) = pkt.ipv4() else {
            // Non-IP traffic has no tenant: wherever it was headed is
            // where the unknown-destination drop gets recorded.
            return true;
        };
        match self.locations.get(&ip.dst()) {
            Some(&home) => {
                home == platform
                    || self
                        .replicas
                        .get(&ip.dst())
                        .is_some_and(|r| r.contains(&platform))
            }
            // Unknown tenant: the border switch records the drop.
            None => true,
        }
    }

    /// Advances virtual time fleet-wide: delivers fabric packets whose
    /// arrival has passed (in arrival order, re-routing ones whose
    /// destination stopped serving), drives in-flight migrations through
    /// their stages, and advances every host. Returns all transmissions
    /// as `(platform, iface, packet)`.
    #[deprecated(note = "drive the fleet through `FleetDriver::run`, which \
                         advances time for you; direct calls remain for oracles")]
    pub fn advance(&mut self, now: SimTime) -> Vec<(NodeId, u16, Packet)> {
        self.advance_impl(now)
    }

    pub(crate) fn advance_impl(&mut self, now: SimTime) -> Vec<(NodeId, u16, Packet)> {
        let mut out = Vec::new();
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            if self.serves(ev.dst, &ev.pkt) {
                self.deliver_local(ev.dst, ev.pkt, ev.at, &mut out);
                continue;
            }
            // The destination died or the tenant moved mid-flight:
            // re-forward from the arrival point (or the origin if the
            // arrival point is dead), within the hop budget.
            let vantage = if self.dead.contains(&ev.dst) {
                ev.origin
            } else {
                ev.dst
            };
            let cur = self.resolve_dest(vantage, &ev.pkt);
            if ev.hops >= MAX_FABRIC_HOPS || !self.is_alive(vantage) || !self.is_alive(cur) {
                self.stats.dead_drops += 1;
                continue;
            }
            if cur == vantage {
                self.stats.reroutes += 1;
                self.deliver_local(cur, ev.pkt, ev.at, &mut out);
                continue;
            }
            match self.fabric_send(vantage, cur, ev.pkt, ev.at, ev.hops + 1) {
                Ok(true) => {
                    // fabric_send counts a fresh forward; the re-route
                    // counter records that it was not the first hop.
                    self.stats.reroutes += 1;
                }
                Ok(false) => {}
                Err(_) => self.stats.dead_drops += 1,
            }
        }
        self.advance_migrations(now, &mut out);
        let dead = self.dead.clone();
        for (&id, site) in self.sites.iter_mut() {
            if dead.contains(&id) {
                continue;
            }
            out.extend(
                site.host
                    .advance(now)
                    .into_iter()
                    .map(|(_, iface, p)| (id, iface, p)),
            );
        }
        out
    }

    /// Kills a platform: its host stops advancing, packets for it are
    /// re-routed or counted as [`FleetStats::dead_drops`], and any
    /// migration whose VM state was on the dead machine is lost.
    /// Returns the tenants left homed on the dead platform, ascending —
    /// the set a failover pass must re-home.
    pub fn kill_platform(
        &mut self,
        platform: NodeId,
        _now: SimTime,
    ) -> Result<Vec<Ipv4Addr>, FleetError> {
        if !self.sites.contains_key(&platform) {
            return Err(FleetError::UnknownPlatform(platform));
        }
        if !self.dead.insert(platform) {
            return Ok(Vec::new());
        }
        // Resolve migrations touching the dead platform.
        let addrs: Vec<Ipv4Addr> = self.migrating.keys().copied().collect();
        for addr in addrs {
            let m = self.migrating.get(&addr).expect("just listed");
            let lost = match &m.stage {
                // VM still parked on the dead source: lost with it.
                MigrationStage::Suspending { .. } => m.from == platform,
                // State headed to (or resuming on) the dead destination.
                MigrationStage::Transferring { .. } | MigrationStage::Resuming { .. } => {
                    m.to == platform
                }
            };
            if lost {
                let m = self.migrating.remove(&addr).expect("present");
                self.stats.dead_drops += m.buffered.len() as u64;
                // Land the tenant's registration on the dead platform so
                // the failover pass sees it and re-homes it. Suspending:
                // it is still registered at `from` (dead). Later stages:
                // the entry travels with the migration — re-register it.
                if let MigrationStage::Transferring { entry, .. } = m.stage {
                    let site = self.sites.get_mut(&platform).expect("exists");
                    site.switch.register(*entry);
                    self.locations.insert(addr, platform);
                }
            }
        }
        // Dead platforms stop being CDN edges.
        for edges in self.replicas.values_mut() {
            edges.retain(|&e| e != platform);
        }
        self.replicas.retain(|_, e| !e.is_empty());
        let mut affected: Vec<Ipv4Addr> = self
            .locations
            .iter()
            .filter(|&(addr, &home)| home == platform && !self.migrating.contains_key(addr))
            .map(|(&addr, _)| addr)
            .collect();
        affected.sort_unstable();
        Ok(affected)
    }

    /// Re-homes a tenant onto `to` as a cold move: the old VM (if any,
    /// typically on a dead platform) is discarded, the registration
    /// moves, and the next packet boots a fresh VM at the new home. Use
    /// [`Fleet::migrate`] for live moves that carry VM state.
    pub fn rehome(&mut self, addr: Ipv4Addr, to: NodeId) -> Result<(), FleetError> {
        if !self.sites.contains_key(&to) {
            return Err(FleetError::UnknownPlatform(to));
        }
        if self.dead.contains(&to) {
            return Err(FleetError::DeadPlatform(to));
        }
        if self.migrating.contains_key(&addr) {
            return Err(FleetError::MigrationInProgress(addr));
        }
        let from = self
            .locations
            .get(&addr)
            .copied()
            .ok_or(FleetError::UnknownTenant(addr))?;
        if from == to {
            return Ok(());
        }
        let src = self.sites.get_mut(&from).expect("location is a platform");
        if let Some(vm) = src.switch.binding(addr) {
            let _ = src.host.destroy(vm);
        }
        let entry = src
            .switch
            .unregister(addr)
            .ok_or(FleetError::UnknownTenant(addr))?;
        let dst = self.sites.get_mut(&to).expect("checked above");
        dst.switch.register(entry);
        self.locations.insert(addr, to);
        self.stats.rehomes += 1;
        Ok(())
    }

    /// Reclaims idle VMs on every host (see
    /// [`SwitchController::reclaim_idle`]). Tenants mid-migration are
    /// not affected: their VM is already suspended or in flight.
    #[deprecated(note = "drive the fleet through `FleetDriver` (schedule with \
                         `FleetDriver::reclaim_every`); direct calls remain for oracles")]
    pub fn reclaim_idle(&mut self, now: SimTime, idle_ns: SimTime) {
        self.reclaim_idle_impl(now, idle_ns)
    }

    pub(crate) fn reclaim_idle_impl(&mut self, now: SimTime, idle_ns: SimTime) {
        for site in self.sites.values_mut() {
            site.switch.reclaim_idle(&mut site.host, now, idle_ns);
        }
    }

    /// Live VMs per platform, ascending by platform id.
    pub fn load(&self) -> Vec<(NodeId, usize)> {
        self.sites
            .iter()
            .map(|(&id, s)| (id, s.host.live_vms()))
            .collect()
    }

    /// Rebalances the fleet and returns the moves started as
    /// `(addr, from, to)`.
    ///
    /// With a traffic matrix attached ([`Fleet::attach_demand`]), load is
    /// offered demand: while the spread between the hottest and coldest
    /// alive hosts is at least `threshold` average-tenant-demands, the
    /// heaviest movable tenant on the hottest host (whose move strictly
    /// narrows the spread) migrates to the coldest. Without one, load is
    /// live-VM counts — the original behavior — and the lowest-addressed
    /// migratable tenant moves.
    ///
    /// Both modes are fully deterministic: hottest/coldest break ties on
    /// the lower platform id; tenant ties break on address order.
    #[deprecated(note = "drive the fleet through `FleetDriver` (schedule with \
                         `FleetDriver::rebalance_every`); direct calls remain for oracles")]
    pub fn rebalance(&mut self, now: SimTime, threshold: usize) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        self.rebalance_impl(now, threshold)
    }

    pub(crate) fn rebalance_impl(
        &mut self,
        now: SimTime,
        threshold: usize,
    ) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        if self.demand.is_some() {
            self.rebalance_by_demand(now, threshold)
        } else {
            self.rebalance_by_count(now, threshold)
        }
    }

    /// Original count-based rebalance: the fallback when no traffic
    /// matrix is attached.
    fn rebalance_by_count(
        &mut self,
        now: SimTime,
        threshold: usize,
    ) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        let threshold = threshold.max(1);
        let mut projected: BTreeMap<NodeId, usize> = self
            .sites
            .iter()
            .filter(|(id, _)| !self.dead.contains(id))
            .map(|(&id, s)| (id, s.host.live_vms()))
            .collect();
        let mut moves = Vec::new();
        while let Some((&hot, &hot_n)) = projected.iter().max_by_key(|&(&id, &n)| (n, Reverse(id)))
        {
            let Some((&cold, &cold_n)) = projected.iter().min_by_key(|&(&id, &n)| (n, id)) else {
                break;
            };
            if hot == cold || hot_n - cold_n < threshold {
                break;
            }
            // The lowest-addressed tenant homed on `hot` whose VM can be
            // migrated (Running or Suspended) and is not already moving.
            let mut candidates: Vec<Ipv4Addr> = self
                .locations
                .iter()
                .filter(|&(addr, &home)| home == hot && !self.migrating.contains_key(addr))
                .map(|(&addr, _)| addr)
                .collect();
            candidates.sort_unstable();
            let site = self.sites.get(&hot).expect("platform");
            let chosen = candidates.into_iter().find(|&addr| {
                site.switch.binding(addr).is_some_and(|vm| {
                    site.host
                        .vm(vm)
                        .map(|v| matches!(v.state, VmState::Running | VmState::Suspended))
                        .unwrap_or(false)
                })
            });
            let Some(addr) = chosen else {
                break;
            };
            if self.migrate(addr, cold, now).is_err() {
                break;
            }
            *projected.get_mut(&hot).expect("present") -= 1;
            *projected.get_mut(&cold).expect("present") += 1;
            moves.push((addr, hot, cold));
        }
        moves
    }

    /// Demand-weighted rebalance: balances offered load from the
    /// attached traffic matrix. `threshold` is in units of the average
    /// per-tenant demand, so `rebalance(now, 2)` means "act when the
    /// hot–cold spread exceeds two average tenants' worth of load" —
    /// the same intuition as the count mode.
    fn rebalance_by_demand(
        &mut self,
        now: SimTime,
        threshold: usize,
    ) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        let demand = self.demand.clone().expect("checked by caller");
        let weight = |addr: &Ipv4Addr| demand.get(addr).copied().unwrap_or(0);
        let mut projected: BTreeMap<NodeId, u64> = self
            .sites
            .keys()
            .filter(|id| !self.dead.contains(id))
            .map(|&id| (id, 0))
            .collect();
        let mut tenants = 0u64;
        let mut total = 0u64;
        for (addr, home) in &self.locations {
            if let Some(load) = projected.get_mut(home) {
                *load += weight(addr);
                total += weight(addr);
                tenants += 1;
            }
        }
        let unit = (total / tenants.max(1)).max(1);
        let threshold_w = threshold.max(1) as u64 * unit;
        let mut moves = Vec::new();
        // Each move strictly narrows the spread, so this terminates; the
        // cap is belt-and-braces against pathological weight sets.
        while moves.len() <= self.locations.len() {
            let Some((&hot, &hot_w)) = projected.iter().max_by_key(|&(&id, &w)| (w, Reverse(id)))
            else {
                break;
            };
            let Some((&cold, &cold_w)) = projected.iter().min_by_key(|&(&id, &w)| (w, id)) else {
                break;
            };
            let spread = hot_w - cold_w;
            if hot == cold || spread < threshold_w {
                break;
            }
            // The heaviest movable tenant whose move strictly narrows
            // the spread (0 < w < spread); address order breaks ties.
            let mut candidates: Vec<(u64, Ipv4Addr)> = self
                .locations
                .iter()
                .filter(|&(addr, &home)| home == hot && !self.migrating.contains_key(addr))
                .map(|(&addr, _)| (weight(&addr), addr))
                .filter(|&(w, _)| w > 0 && w < spread)
                .collect();
            candidates.sort_unstable_by_key(|&(w, addr)| (Reverse(w), addr));
            let site = self.sites.get(&hot).expect("platform");
            let chosen = candidates.into_iter().find(|&(_, addr)| {
                // Movable: no VM (instant move) or a Running/Suspended one.
                match site.switch.binding(addr) {
                    None => true,
                    Some(vm) => site
                        .host
                        .vm(vm)
                        .map(|v| matches!(v.state, VmState::Running | VmState::Suspended))
                        .unwrap_or(false),
                }
            });
            let Some((w, addr)) = chosen else {
                break;
            };
            if self.migrate(addr, cold, now).is_err() {
                break;
            }
            *projected.get_mut(&hot).expect("present") -= w;
            *projected.get_mut(&cold).expect("present") += w;
            moves.push((addr, hot, cold));
        }
        moves
    }
}

#[cfg(test)]
#[allow(deprecated)] // The oracle tests pin the raw inject/advance surface.
mod tests {
    use super::*;
    use innet_click::ClickConfig;
    use innet_packet::PacketBuilder;

    const TENANT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    fn filter_entry(addr: Ipv4Addr, stateful: bool) -> ClientEntry {
        ClientEntry {
            addr,
            config: ClickConfig::parse(
                "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
            )
            .unwrap(),
            stateful,
        }
    }

    fn udp_to(addr: Ipv4Addr, seq: u16) -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), seq)
            .dst(addr, 1500)
            .build()
    }

    /// A two-platform fleet over a small star topology.
    fn two_pop_fleet() -> (Fleet, NodeId, NodeId) {
        let t = innet_topology::generate_fleet(&innet_topology::FleetParams {
            pops: 2,
            platforms_per_pop: 1,
            clients_per_pop: 1,
            seed: 3,
        });
        let f = Fleet::new(&t);
        let ps = f.platforms();
        assert_eq!(ps.len(), 2);
        (f, ps[0], ps[1])
    }

    #[test]
    fn single_host_fleet_matches_bare_host_byte_for_byte() {
        // The oracle: drive identical traffic through a 1-host fleet and
        // a bare Host + SwitchController; outputs and stats must match.
        let mut fleet = Fleet::single_host(16 * 1024);
        let platform = fleet.platforms()[0];
        fleet
            .register(platform, filter_entry(TENANT, false))
            .unwrap();

        let mut host = Host::new(16 * 1024);
        let mut sw = SwitchController::new();
        sw.register(filter_entry(TENANT, false));

        let stranger = PacketBuilder::udp()
            .dst(Ipv4Addr::new(9, 9, 9, 9), 1)
            .build();
        let schedule: Vec<(SimTime, Packet)> = vec![
            (0, udp_to(TENANT, 1)),
            (1_000, stranger),
            (200_000_000, udp_to(TENANT, 2)),
            (200_000_500, udp_to(TENANT, 3)),
        ];

        let mut fleet_out = Vec::new();
        let mut host_out = Vec::new();
        for (at, pkt) in schedule {
            fleet_out.extend(
                fleet
                    .inject(pkt.clone(), at)
                    .into_iter()
                    .map(|(_, iface, p)| (iface, p)),
            );
            host_out.extend(sw.on_packet(&mut host, pkt, at).unwrap());
            fleet_out.extend(
                fleet
                    .advance(at)
                    .into_iter()
                    .map(|(_, iface, p)| (iface, p)),
            );
            host_out.extend(host.advance(at).into_iter().map(|(_, iface, p)| (iface, p)));
        }
        fleet_out.extend(
            fleet
                .advance(1_000_000_000)
                .into_iter()
                .map(|(_, iface, p)| (iface, p)),
        );
        host_out.extend(
            host.advance(1_000_000_000)
                .into_iter()
                .map(|(_, iface, p)| (iface, p)),
        );

        assert_eq!(fleet_out, host_out, "byte- and order-identical");
        assert_eq!(fleet.switch(platform).unwrap().stats(), sw.stats());
        assert_eq!(fleet.stats().fabric_forwards, 0, "no fabric on one host");
    }

    #[test]
    fn fabric_delivery_pays_path_latency() {
        let (mut fleet, a, b) = two_pop_fleet();
        fleet.register(b, filter_entry(TENANT, false)).unwrap();
        // Warm the VM so cross-fabric packets process synchronously.
        fleet.inject(udp_to(TENANT, 1), 0);
        fleet.advance(1_000_000_000);

        let out = fleet
            .inject_at(a, udp_to(TENANT, 2), 1_000_000_000)
            .unwrap();
        assert!(out.is_empty(), "in flight on the fabric");
        // Nothing arrives before the path latency has elapsed.
        assert!(fleet.advance(1_000_000_001).is_empty());
        let lat = fleet.path(a, b).unwrap().latency_ns;
        assert!(lat > 1_000_000, "WAN path crosses the core ring");
        let out = fleet.advance(2_000_000_000 + lat);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b, "delivered at the tenant's home platform");
        assert_eq!(fleet.stats().fabric_forwards, 1);
    }

    #[test]
    fn live_migration_moves_vm_and_counts_downtime() {
        let (mut fleet, a, b) = two_pop_fleet();
        fleet.register(a, filter_entry(TENANT, true)).unwrap();
        fleet.inject(udp_to(TENANT, 1), 0);
        fleet.advance(1_000_000_000);
        assert_eq!(fleet.host(a).unwrap().live_vms(), 1);

        fleet.migrate(TENANT, b, 1_000_000_000).unwrap();
        // Mid-window traffic is buffered at the fleet layer.
        fleet.inject(udp_to(TENANT, 2), 1_000_100_000);
        assert_eq!(fleet.stats().migration_buffered, 1);

        let out = fleet.advance(60_000_000_000);
        assert_eq!(fleet.location(TENANT), Some(b));
        assert_eq!(fleet.host(a).unwrap().live_vms(), 0);
        assert_eq!(fleet.host(b).unwrap().live_vms(), 1);
        // The buffered packet was flushed through the migrated VM.
        assert_eq!(out.iter().filter(|(p, _, _)| *p == b).count(), 1);
        let rec = fleet.migrations()[0];
        assert_eq!((rec.from, rec.to), (a, b));
        assert!(rec.downtime_ns > 0, "suspend+transfer+resume take time");
        assert_eq!(rec.downtime_ns, rec.completed_at - rec.started_at);
    }

    #[test]
    fn rebalance_triggers_on_imbalance() {
        let (mut fleet, a, b) = two_pop_fleet();
        for i in 0..4u8 {
            let addr = Ipv4Addr::new(203, 0, 113, 10 + i);
            fleet.register(a, filter_entry(addr, true)).unwrap();
            fleet.inject(udp_to(addr, 1), 0);
        }
        fleet.advance(2_000_000_000);
        assert_eq!(fleet.host(a).unwrap().live_vms(), 4);

        let moves = fleet.rebalance(2_000_000_000, 2);
        assert_eq!(moves.len(), 2, "4-0 rebalances to 2-2 at threshold 2");
        fleet.advance(120_000_000_000);
        let spread =
            fleet.host(a).unwrap().live_vms() as i64 - fleet.host(b).unwrap().live_vms() as i64;
        assert!(spread.abs() < 2);
        assert_eq!(moves[0].1, a);
        assert_eq!(moves[0].2, b);
    }
}
