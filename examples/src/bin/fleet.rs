//! The fleet fabric end to end: a seeded capacitated topology, ranked
//! (topology- and capacity-aware) controller placement over it, a
//! multi-host [`Fleet`] routing packets between platforms over the
//! simulated fabric, and load-triggered live migration with its
//! suspend → transfer → resume downtime window.
//!
//! Run with: `cargo run -p innet-examples --bin fleet`

use std::net::Ipv4Addr;

use innet::prelude::*;
use innet::topology::{generate_fleet, FleetParams};

const SEC: u64 = 1_000_000_000;

fn main() {
    // A reproducible mini-WAN: 4 PoPs on a ring, 2 platforms each.
    let params = FleetParams {
        pops: 4,
        platforms_per_pop: 2,
        clients_per_pop: 1,
        seed: 7,
    };
    let topo = generate_fleet(&params);
    println!(
        "== topology: {} nodes, {} platforms (seed {})",
        topo.nodes.len(),
        topo.platforms().len(),
        params.seed
    );

    // Ranked placement: the controller scores platforms by client-path
    // latency, residual capacity, and link headroom before verifying.
    let mut ctl = Controller::new(topo.clone());
    ctl.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    let order = ctl.ranked_platforms();
    println!("== placement preference (top 3):");
    for &p in order.iter().take(3) {
        println!("   {}", topo.node(p).name);
    }
    let request = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> ToNetfront();
    "#;
    let resp = ctl
        .deploy("mobile-7", ClientRequest::parse(request).unwrap())
        .expect("deployable");
    println!(
        "== deployed '{}' at {} on {}",
        resp.module_name, resp.public_addr, resp.platform
    );

    // Data plane: one host per platform behind a fleet-level fabric.
    let mut fleet = Fleet::new(&topo);
    let platforms = fleet.platforms();
    let home = platforms[0];
    let config = ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
    )
    .unwrap();
    let tenants: Vec<Ipv4Addr> = (1..=6).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
    for &addr in &tenants {
        fleet
            .register(
                home,
                ClientEntry {
                    addr,
                    config: config.clone(),
                    stateful: true,
                },
            )
            .unwrap();
    }
    let mut driver = FleetDriver::new(fleet).until(2 * SEC);
    for &addr in &tenants {
        driver = driver.inject(
            0,
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 8, 8), 53)
                .dst(addr, 1500)
                .build(),
        );
    }
    let booted = driver.run();
    println!(
        "== all {} tenants booted on {} (live VMs: {})",
        tenants.len(),
        topo.node(home).name,
        booted.fleet.host(home).unwrap().live_vms()
    );

    // Cross-host delivery: a packet entering at a remote platform rides
    // the fabric (paying the path's latency) to the tenant's home.
    let remote = platforms[platforms.len() - 1];
    let pkt = PacketBuilder::udp()
        .src(Ipv4Addr::new(8, 8, 8, 8), 54)
        .dst(tenants[0], 1500)
        .build();
    let crossed = FleetDriver::new(booted.fleet)
        .until(3 * SEC)
        .inject_at(2 * SEC, remote, pkt)
        .run();
    println!(
        "== fabric forwards so far: {}",
        crossed.stats.fabric_forwards
    );

    // Everything sits on one host: the periodic imbalance trigger
    // migrates VMs toward the idle platforms until the spread closes.
    let run = FleetDriver::new(crossed.fleet)
        .until(120 * SEC)
        .rebalance_every(3 * SEC, 2)
        .run();
    println!(
        "== rebalance planned {} live migrations",
        run.rebalance_moves.len()
    );
    for rec in run.fleet.migrations() {
        println!(
            "migration completed: {} from {} to {} (downtime {:.1} ms)",
            rec.addr,
            topo.node(rec.from).name,
            topo.node(rec.to).name,
            rec.downtime_ns as f64 / 1e6
        );
    }
    let spread = {
        let load = run.fleet.load();
        let max = load.iter().map(|&(_, n)| n).max().unwrap_or(0);
        let min = load.iter().map(|&(_, n)| n).min().unwrap_or(0);
        max - min
    };
    assert!(
        !run.fleet.migrations().is_empty(),
        "imbalance must trigger migrations"
    );
    println!(
        "== load spread after rebalance: {} (stats: {:?})",
        spread, run.stats
    );
}
