//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides exactly the subset the workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`, and the
//! [`distributions::Distribution`] trait. The generator is xoshiro256++
//! (public-domain reference algorithm), which is more than adequate for
//! the simulator's synthetic workloads; it is *not* the real StdRng
//! stream, so seeds do not reproduce upstream rand sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for [`rngs::StdRng`], as upstream).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed by expanding it with
    /// SplitMix64 (the conventional seeding scheme for xoshiro).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a primitive type: uniform over the
    /// whole domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeFrom<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                <std::ops::RangeInclusive<$t> as SampleRange<$t>>::sample_single(
                    self.start..=<$t>::MAX,
                    rng,
                )
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = if span == 0 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        use distributions::{Distribution, Standard};
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_samples_ints() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u16 = Standard.sample(&mut rng);
        let _: bool = rng.gen();
    }
}
