//! Helpers for parsing element configuration strings.
//!
//! Click passes each element a comma-separated argument list. This module
//! splits that list (respecting nested parentheses and quotes) and offers
//! typed accessors so element constructors stay small.

use std::net::Ipv4Addr;
use std::str::FromStr;

use innet_packet::pattern::PatternExpr;

use crate::element::ElementError;

/// A parsed element argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigArgs {
    class: &'static str,
    args: Vec<String>,
}

/// Splits a raw argument string on top-level commas, trimming whitespace.
///
/// Commas inside parentheses or double quotes do not split, so patterns like
/// `Classifier(12/0800, -)` and nested expressions survive.
pub fn split_args(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut cur = String::new();
    for c in raw.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            '(' if !in_quote => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 && !in_quote => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    // `Foo()` and `Foo( )` both mean "no arguments".
    if out.len() == 1 && out[0].is_empty() {
        out.clear();
    }
    out
}

impl ConfigArgs {
    /// Wraps pre-split arguments for the element class `class`.
    pub fn new(class: &'static str, args: &[String]) -> ConfigArgs {
        ConfigArgs {
            class,
            args: args.to_vec(),
        }
    }

    /// Parses a raw comma-separated argument string.
    pub fn parse(class: &'static str, raw: &str) -> ConfigArgs {
        ConfigArgs {
            class,
            args: split_args(raw),
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.args.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.args.is_empty()
    }

    /// All arguments as string slices.
    pub fn all(&self) -> impl Iterator<Item = &str> {
        self.args.iter().map(|s| s.as_str())
    }

    fn bad(&self, message: impl Into<String>) -> ElementError {
        ElementError::BadArgs {
            class: self.class,
            message: message.into(),
        }
    }

    /// Fails unless exactly `n` arguments were given.
    pub fn expect_len(&self, n: usize) -> Result<(), ElementError> {
        if self.args.len() == n {
            Ok(())
        } else {
            Err(self.bad(format!("expected {n} arguments, got {}", self.args.len())))
        }
    }

    /// Fails unless between `lo` and `hi` arguments were given.
    pub fn expect_len_range(&self, lo: usize, hi: usize) -> Result<(), ElementError> {
        if (lo..=hi).contains(&self.args.len()) {
            Ok(())
        } else {
            Err(self.bad(format!(
                "expected {lo}..={hi} arguments, got {}",
                self.args.len()
            )))
        }
    }

    /// The `i`-th argument as a raw string.
    pub fn str_at(&self, i: usize) -> Result<&str, ElementError> {
        self.args
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| self.bad(format!("missing argument {i}")))
    }

    /// The `i`-th argument parsed as `T`.
    pub fn parse_at<T: FromStr>(&self, i: usize) -> Result<T, ElementError> {
        let s = self.str_at(i)?;
        s.parse::<T>()
            .map_err(|_| self.bad(format!("argument {i} ('{s}') is not a valid value")))
    }

    /// The `i`-th argument parsed as `T`, or `default` when absent.
    pub fn parse_or<T: FromStr>(&self, i: usize, default: T) -> Result<T, ElementError> {
        if i < self.args.len() {
            self.parse_at(i)
        } else {
            Ok(default)
        }
    }

    /// The `i`-th argument as an IPv4 address.
    pub fn addr_at(&self, i: usize) -> Result<Ipv4Addr, ElementError> {
        self.parse_at(i)
    }

    /// The `i`-th argument as a flow pattern.
    pub fn pattern_at(&self, i: usize) -> Result<PatternExpr, ElementError> {
        let s = self.str_at(i)?;
        s.parse::<PatternExpr>()
            .map_err(|e| self.bad(format!("argument {i}: {e}")))
    }

    /// All arguments parsed as flow patterns (one rule per argument).
    pub fn patterns(&self) -> Result<Vec<PatternExpr>, ElementError> {
        (0..self.args.len()).map(|i| self.pattern_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_top_level_only() {
        assert_eq!(
            split_args("a, b(c, d), \"e, f\""),
            vec!["a", "b(c, d)", "\"e, f\""]
        );
    }

    #[test]
    fn empty_and_blank() {
        assert!(split_args("").is_empty());
        assert!(split_args("   ").is_empty());
    }

    #[test]
    fn typed_accessors() {
        let a = ConfigArgs::parse("T", "120, 100, 1.2.3.4");
        assert_eq!(a.parse_at::<u64>(0).unwrap(), 120);
        assert_eq!(a.parse_or::<u64>(5, 9).unwrap(), 9);
        assert_eq!(a.addr_at(2).unwrap(), Ipv4Addr::new(1, 2, 3, 4));
        assert!(a.parse_at::<u64>(2).is_err());
        assert!(a.expect_len(3).is_ok());
        assert!(a.expect_len(2).is_err());
        assert!(a.expect_len_range(1, 3).is_ok());
    }

    #[test]
    fn pattern_args() {
        let a = ConfigArgs::parse("IPFilter", "allow udp dst port 1500");
        // "allow" is handled by IPFilter itself; here parse a plain pattern.
        let b = ConfigArgs::parse("IPClassifier", "udp dst port 1500, tcp, -");
        let pats = b.patterns().unwrap();
        assert_eq!(pats.len(), 3);
        assert_eq!(a.len(), 1);
    }
}
