//! Figure 10: controller request-processing time versus operator network
//! size (compile + check phases), measured for real.

use innet::experiments::fig10_controller::controller_scaling;
use innet_bench::{quick_mode, Report};

fn main() {
    let sizes: Vec<usize> = if quick_mode() {
        vec![1, 15, 63]
    } else {
        vec![1, 3, 7, 15, 31, 63, 127, 255, 511, 1023]
    };
    let series = controller_scaling(&sizes);
    let mut r = Report::new(
        "fig10_controller_scaling",
        "Figure 10: request-processing time vs middleboxes in the network",
    );
    r.line(&format!(
        "{:>12} {:>14} {:>14} {:>12}",
        "middleboxes", "compile (ms)", "check (ms)", "total (ms)"
    ));
    for p in &series {
        r.line(&format!(
            "{:>12} {:>14.1} {:>14.1} {:>12.1}",
            p.middleboxes,
            p.compile_ms,
            p.check_ms,
            p.compile_ms + p.check_ms
        ));
    }
    r.blank();
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        let growth = (last.compile_ms + last.check_ms) / (first.compile_ms + first.check_ms);
        let size_growth = last.middleboxes as f64 / first.middleboxes as f64;
        r.line(&format!(
            "total time grew {growth:.0}x over a {size_growth:.0}x network \
             (paper: linear scaling; 1,000 boxes checked in ~1.3 s)"
        ));
    }
    r.line("paper reference point (Figure 3 topology): 101 ms compile + 5 ms analysis");
    r.finish();
}
