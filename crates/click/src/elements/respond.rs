//! `ICMPPingResponder` — answers echo requests; the workhorse of the
//! paper's Figure 5 reaction-time experiment.

use std::any::Any;

use innet_packet::{IcmpKind, Packet};

use crate::element::{Context, Element, PortCount, Sink};

/// `ICMPPingResponder()` — turns each ICMP echo request around: swaps
/// Ethernet and IP addresses, flips the ICMP type to echo-reply, and fixes
/// the checksum. Non-echo-request traffic is dropped.
#[derive(Debug, Default)]
pub struct IcmpPingResponder {
    answered: u64,
    ignored: u64,
}

impl IcmpPingResponder {
    /// Creates a responder.
    pub fn new() -> IcmpPingResponder {
        IcmpPingResponder::default()
    }

    /// Counters: (answered, ignored).
    pub fn counters(&self) -> (u64, u64) {
        (self.answered, self.ignored)
    }
}

impl Element for IcmpPingResponder {
    fn class_name(&self) -> &'static str {
        "ICMPPingResponder"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let is_request = pkt
            .icmp()
            .map(|i| i.kind() == IcmpKind::EchoRequest)
            .unwrap_or(false);
        if !is_request {
            self.ignored += 1;
            return;
        }
        if let Ok(mut e) = pkt.ether_mut() {
            e.swap_addrs();
        }
        {
            let mut ip = pkt.ipv4_mut().expect("checked above");
            let (s, d) = (ip.src(), ip.dst());
            ip.set_src(d);
            ip.set_dst(s);
            ip.update_checksum();
        }
        pkt.icmp_mut()
            .expect("checked above")
            .set_kind(IcmpKind::EchoReply);
        self.answered += 1;
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn answers_echo_requests() {
        let mut r = IcmpPingResponder::new();
        let mut s = VecSink::new();
        let req = PacketBuilder::icmp_echo_request(42, 3)
            .src_addr(Ipv4Addr::new(1, 1, 1, 1))
            .dst_addr(Ipv4Addr::new(2, 2, 2, 2))
            .build();
        r.push(0, req, &Context::default(), &mut s);
        let reply = s.only(0).unwrap();
        let ip = reply.ipv4().unwrap();
        assert_eq!(ip.src(), Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(ip.dst(), Ipv4Addr::new(1, 1, 1, 1));
        assert!(ip.verify_checksum());
        let icmp = reply.icmp().unwrap();
        assert_eq!(icmp.kind(), IcmpKind::EchoReply);
        assert_eq!(icmp.ident(), 42);
        assert_eq!(icmp.seq(), 3);
    }

    #[test]
    fn ignores_other_traffic() {
        let mut r = IcmpPingResponder::new();
        let mut s = VecSink::new();
        r.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        r.push(
            0,
            PacketBuilder::icmp_echo_reply(1, 1).build(),
            &Context::default(),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(r.counters(), (0, 2));
    }
}
