//! Scheduling and annotation elements: `RoundRobinSwitch`,
//! `RandomSwitch`, `Meter`, `Paint`, and `CheckPaint`.

use std::any::Any;

use innet_packet::Packet;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
    elements::TokenBucket,
};

/// Annotation byte used by `Paint`/`CheckPaint` (Click's PAINT
/// annotation).
pub const PAINT_ANNO: usize = 16;

/// `RoundRobinSwitch(N)` — spreads packets across N outputs in turn
/// (Click's load-spreading element; useful in front of replicated
/// processing).
#[derive(Debug)]
pub struct RoundRobinSwitch {
    n: usize,
    next: usize,
}

impl RoundRobinSwitch {
    /// Parses `RoundRobinSwitch(N)`.
    pub fn from_args(args: &ConfigArgs) -> Result<RoundRobinSwitch, ElementError> {
        args.expect_len_range(0, 1)?;
        let n: usize = args.parse_or(0, 2)?;
        if n == 0 {
            return Err(ElementError::BadArgs {
                class: "RoundRobinSwitch",
                message: "needs at least one output".to_string(),
            });
        }
        Ok(RoundRobinSwitch { n, next: 0 })
    }
}

impl Element for RoundRobinSwitch {
    fn class_name(&self) -> &'static str {
        "RoundRobinSwitch"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.n)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let port = self.next;
        self.next = (self.next + 1) % self.n;
        out.push(port, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `RandomSwitch(N[, SEED])` — spreads packets across N outputs uniformly
/// at random (deterministic given the seed).
#[derive(Debug)]
pub struct RandomSwitch {
    n: usize,
    rng: StdRng,
}

impl RandomSwitch {
    /// Parses `RandomSwitch(N[, SEED])`.
    pub fn from_args(args: &ConfigArgs) -> Result<RandomSwitch, ElementError> {
        args.expect_len_range(0, 2)?;
        let n: usize = args.parse_or(0, 2)?;
        let seed: u64 = args.parse_or(1, 0)?;
        if n == 0 {
            return Err(ElementError::BadArgs {
                class: "RandomSwitch",
                message: "needs at least one output".to_string(),
            });
        }
        Ok(RandomSwitch {
            n,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

impl Element for RandomSwitch {
    fn class_name(&self) -> &'static str {
        "RandomSwitch"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.n)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let port = self.rng.gen_range(0..self.n);
        out.push(port, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `Meter(RATE_PPS)` — classifies by measured rate: packets within the
/// rate leave on output 0, the excess on output 1 (Click's `Meter`; the
/// non-dropping cousin of `RateLimiter`).
#[derive(Debug)]
pub struct Meter {
    bucket: TokenBucket,
    conforming: u64,
    excess: u64,
}

impl Meter {
    /// Parses `Meter(RATE_PPS)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Meter, ElementError> {
        args.expect_len(1)?;
        let pps: f64 = args.parse_at(0)?;
        if pps <= 0.0 {
            return Err(ElementError::BadArgs {
                class: "Meter",
                message: "rate must be positive".to_string(),
            });
        }
        Ok(Meter {
            bucket: TokenBucket::new(pps, pps.max(1.0)),
            conforming: 0,
            excess: 0,
        })
    }

    /// Counters: (conforming, excess).
    pub fn counters(&self) -> (u64, u64) {
        (self.conforming, self.excess)
    }
}

impl Element for Meter {
    fn class_name(&self) -> &'static str {
        "Meter"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, 2)
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        if self.bucket.try_take(1.0, ctx.now_ns) {
            self.conforming += 1;
            out.push(0, pkt);
        } else {
            self.excess += 1;
            out.push(1, pkt);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `Paint(COLOR)` — writes the paint annotation (Click uses it to mark
/// which interface a packet arrived on, to suppress reflection).
#[derive(Debug)]
pub struct Paint {
    color: u8,
}

impl Paint {
    /// Parses `Paint(COLOR)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Paint, ElementError> {
        args.expect_len(1)?;
        Ok(Paint {
            color: args.parse_at(0)?,
        })
    }
}

impl Element for Paint {
    fn class_name(&self) -> &'static str {
        "Paint"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        pkt.set_anno_u8(PAINT_ANNO, self.color);
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `CheckPaint(COLOR)` — packets carrying the paint color leave on
/// output 1, others on output 0 (mirroring Click's semantics of
/// diverting marked packets).
#[derive(Debug)]
pub struct CheckPaint {
    color: u8,
}

impl CheckPaint {
    /// Parses `CheckPaint(COLOR)`.
    pub fn from_args(args: &ConfigArgs) -> Result<CheckPaint, ElementError> {
        args.expect_len(1)?;
        Ok(CheckPaint {
            color: args.parse_at(0)?,
        })
    }
}

impl Element for CheckPaint {
    fn class_name(&self) -> &'static str {
        "CheckPaint"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, 2)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        if pkt.anno_u8(PAINT_ANNO) == self.color {
            out.push(1, pkt);
        } else {
            out.push(0, pkt);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn round_robin_cycles() {
        let mut rr =
            RoundRobinSwitch::from_args(&ConfigArgs::parse("RoundRobinSwitch", "3")).unwrap();
        let mut s = VecSink::new();
        for _ in 0..6 {
            rr.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        }
        let ports: Vec<usize> = s.pushed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_switch_covers_outputs() {
        let mut rs = RandomSwitch::from_args(&ConfigArgs::parse("RandomSwitch", "4, 7")).unwrap();
        let mut s = VecSink::new();
        for _ in 0..200 {
            rs.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        }
        let mut seen = [0usize; 4];
        for (p, _) in &s.pushed {
            seen[*p] += 1;
        }
        assert!(seen.iter().all(|&c| c > 20), "{seen:?}");
    }

    #[test]
    fn meter_splits_by_rate() {
        let mut m = Meter::from_args(&ConfigArgs::parse("Meter", "10")).unwrap();
        let mut s = VecSink::new();
        // 30 packets at t=0 against a 10-token bucket.
        for _ in 0..30 {
            m.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        }
        let (ok, over) = m.counters();
        assert_eq!(ok, 10);
        assert_eq!(over, 20);
        assert_eq!(s.pushed.len(), 30, "Meter never drops");
    }

    #[test]
    fn paint_checkpaint_roundtrip() {
        let mut p = Paint::from_args(&ConfigArgs::parse("Paint", "7")).unwrap();
        let mut c = CheckPaint::from_args(&ConfigArgs::parse("CheckPaint", "7")).unwrap();
        let mut s = VecSink::new();
        p.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        let painted = s.pushed.pop().unwrap().1;
        c.push(0, painted, &Context::default(), &mut s);
        assert_eq!(s.pushed[0].0, 1, "painted packets divert to output 1");
        c.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(s.pushed[1].0, 0, "unpainted packets continue on output 0");
    }

    #[test]
    fn bad_args() {
        assert!(RoundRobinSwitch::from_args(&ConfigArgs::parse("RoundRobinSwitch", "0")).is_err());
        assert!(Meter::from_args(&ConfigArgs::parse("Meter", "-1")).is_err());
        assert!(Paint::from_args(&ConfigArgs::parse("Paint", "")).is_err());
    }
}
