//! Figure 5: ClickOS reaction time for the first 15 packets of 100
//! concurrent flows.
//!
//! Each ping stream is a separate flow; the platform boots a VM for it on
//! the fly. The first probe pays the boot latency (~50 ms on average,
//! ~100 ms for the 100th flow); later probes see sub-millisecond RTTs.
//! The Linux-VM baseline pays ~700 ms on the first probe.

use innet_click::ClickConfig;
use innet_packet::PacketBuilder;
use innet_platform::{ClientEntry, Host, SwitchController};
use std::net::Ipv4Addr;

/// Which guest type serves the flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestKind {
    /// Tiny ClickOS unikernels (the In-Net platform).
    ClickOs,
    /// Stripped-down Linux VMs (the baseline).
    Linux,
}

/// RTT series for one ping flow.
#[derive(Debug, Clone)]
pub struct PingSeries {
    /// Flow index (0-based; flows start in this order).
    pub flow: usize,
    /// Per-probe round-trip times in milliseconds.
    pub rtts_ms: Vec<f64>,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, Copy)]
pub struct ReactionParams {
    /// Number of concurrent ping flows (the paper uses 100).
    pub flows: usize,
    /// Probes per flow (the paper uses 15).
    pub probes: usize,
    /// Inter-probe gap in nanoseconds (1 s, like `ping`).
    pub probe_gap_ns: u64,
    /// Stagger between flow starts (the flows are launched "in
    /// parallel"; a small skew makes VM counts ramp 1..N).
    pub stagger_ns: u64,
    /// One-way network latency between the prober and the platform.
    pub net_oneway_ns: u64,
    /// Guest type.
    pub kind: GuestKind,
}

impl Default for ReactionParams {
    fn default() -> Self {
        ReactionParams {
            flows: 100,
            probes: 15,
            probe_gap_ns: 1_000_000_000,
            stagger_ns: 3_000_000,
            net_oneway_ns: 150_000, // 0.15 ms LAN hop.
            kind: GuestKind::ClickOs,
        }
    }
}

fn client_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(203, 0, (113 + i / 200) as u8, (10 + i % 200) as u8)
}

/// Runs the experiment in virtual time, actually booting (model-timed)
/// VMs and pushing real ICMP packets through real Click graphs.
pub fn reaction_time(params: &ReactionParams) -> Vec<PingSeries> {
    let mut host = Host::new(64 * 1024);
    let mut sw = SwitchController::new();
    // Each flow gets its own stateless-firewall module that answers pings
    // (the middle host in the paper's setup forwards to a responder; the
    // responder is folded into the module here so RTT accounting stays
    // within one host model).
    let cfg = ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow icmp) -> ICMPPingResponder() -> ToNetfront();",
    )
    .expect("valid literal config");

    match params.kind {
        GuestKind::ClickOs => {
            for i in 0..params.flows {
                sw.register(ClientEntry {
                    addr: client_addr(i),
                    config: cfg.clone(),
                    stateful: false,
                });
            }
        }
        GuestKind::Linux => {}
    }

    let mut out: Vec<PingSeries> = (0..params.flows)
        .map(|i| PingSeries {
            flow: i,
            rtts_ms: Vec::with_capacity(params.probes),
        })
        .collect();

    match params.kind {
        GuestKind::ClickOs => {
            // Probes in global time order. A probe that finds its VM
            // booting is answered when the VM becomes ready (the boot
            // deadline is known, so the reply time is exact).
            let mut events: Vec<(u64, usize, usize)> = Vec::new();
            for flow in 0..params.flows {
                let start = flow as u64 * params.stagger_ns;
                for probe in 0..params.probes {
                    events.push((start + probe as u64 * params.probe_gap_ns, flow, probe));
                }
            }
            events.sort_unstable();

            for (send_time, flow, probe) in events {
                let arrive = send_time + params.net_oneway_ns;
                let pkt = PacketBuilder::icmp_echo_request(flow as u16, probe as u16)
                    .src_addr(Ipv4Addr::new(198, 51, 100, 2))
                    .dst_addr(client_addr(flow))
                    .build();
                let replies = sw
                    .on_packet(&mut host, pkt, arrive)
                    .expect("host has capacity");
                let reply_left_at = if replies.is_empty() {
                    // Buffered while the VM boots: the reply leaves when
                    // the boot deadline passes.
                    let vm = sw.binding(client_addr(flow)).expect("just bound");
                    let ready_at = match host.vm(vm).expect("alive").state {
                        innet_platform::VmState::Booting { ready_at } => ready_at,
                        innet_platform::VmState::Resuming { ready_at } => ready_at,
                        _ => arrive,
                    };
                    let flushed = host.advance(ready_at);
                    debug_assert!(!flushed.is_empty(), "buffered probe must flush");
                    ready_at
                } else {
                    arrive
                };
                let rtt_ns = reply_left_at + params.net_oneway_ns - send_time;
                out[flow].rtts_ms.push(rtt_ns as f64 / 1e6);
            }
        }
        GuestKind::Linux => {
            // The Linux baseline: boot latency dominates the first probe.
            for (flow, series) in out.iter_mut().enumerate() {
                let start = flow as u64 * params.stagger_ns;
                let vm = host.boot_linux(start);
                let boot_ns = match vm {
                    Ok(id) => {
                        let ready = match host.vm(id).expect("just booted").state {
                            innet_platform::VmState::Booting { ready_at } => ready_at,
                            _ => start,
                        };
                        ready - start
                    }
                    Err(_) => 0, // Out of memory: the paper hits this too.
                };
                let first = (boot_ns + 2 * params.net_oneway_ns) as f64 / 1e6;
                let later = (2 * params.net_oneway_ns) as f64 / 1e6 + 0.3;
                series.rtts_ms.push(first);
                series
                    .rtts_ms
                    .extend(std::iter::repeat_n(later, params.probes - 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: GuestKind, flows: usize) -> Vec<PingSeries> {
        reaction_time(&ReactionParams {
            flows,
            kind,
            ..ReactionParams::default()
        })
    }

    #[test]
    fn first_probe_pays_boot_later_probes_fast() {
        let series = run(GuestKind::ClickOs, 30);
        for s in &series {
            assert_eq!(s.rtts_ms.len(), 15);
            assert!(
                s.rtts_ms[0] > 10.0,
                "flow {}: first probe {} ms includes boot",
                s.flow,
                s.rtts_ms[0]
            );
            for (i, &rtt) in s.rtts_ms.iter().enumerate().skip(1) {
                assert!(
                    rtt < 5.0,
                    "flow {} probe {i}: {rtt} ms should be fast",
                    s.flow
                );
            }
        }
    }

    #[test]
    fn later_flows_boot_slower() {
        let series = run(GuestKind::ClickOs, 80);
        let first = series.first().expect("nonempty").rtts_ms[0];
        let last = series.last().expect("nonempty").rtts_ms[0];
        assert!(
            last > first,
            "boot latency grows with VM count: {first} vs {last}"
        );
    }

    #[test]
    fn linux_an_order_of_magnitude_worse() {
        let clickos = run(GuestKind::ClickOs, 20);
        let linux = run(GuestKind::Linux, 20);
        let c_avg: f64 = clickos.iter().map(|s| s.rtts_ms[0]).sum::<f64>() / clickos.len() as f64;
        let l_avg: f64 = linux.iter().map(|s| s.rtts_ms[0]).sum::<f64>() / linux.len() as f64;
        assert!(
            l_avg > 5.0 * c_avg,
            "paper: ~700 ms vs ~50 ms; got {l_avg} vs {c_avg}"
        );
        assert!(l_avg > 600.0, "{l_avg}");
    }

    #[test]
    fn average_first_rtt_near_paper() {
        let series = run(GuestKind::ClickOs, 100);
        let avg: f64 = series.iter().map(|s| s.rtts_ms[0]).sum::<f64>() / series.len() as f64;
        // Paper: "still only 50 milliseconds on average".
        assert!((30.0..=90.0).contains(&avg), "{avg}");
    }
}
