//! Integration tests for the controller's verification verdict cache.
//!
//! The contract under test: deploying a canonically-identical request a
//! second time must produce a verdict byte-identical to the uncached one
//! (same platform, same sandbox decision, same error rendering) while
//! skipping symbolic verification entirely — and any change that could
//! alter verdicts (operator policy, hardening, module removal) must
//! invalidate every cached entry.

use innet::controller::HardeningPolicy;
use innet::prelude::*;
use std::time::{Duration, Instant};

/// The paper's Figure 4 request: a UDP batcher for a mobile client.
const FIG4: &str = r#"
    module batcher:
    FromNetfront()
      -> IPFilter(allow udp dst port 1500)
      -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
      -> TimedUnqueue(120, 100)
      -> dst :: ToNetfront();

    reach from internet udp
      -> batcher:dst:0 dst 172.16.15.133
      -> client dst port 1500
      const proto && dst port && payload
"#;

/// A module that transits foreign traffic unchanged: provably rejected
/// for any tenant class by the no-transit security rule.
const TRANSIT: &str = "module transit:\nFromNetfront() -> Counter() -> ToNetfront();";

fn fresh() -> Controller {
    let mut c = Controller::new(Topology::figure3());
    c.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    c.register_client(
        "cdn-corp",
        RequesterClass::ThirdParty,
        vec!["198.51.100.77".parse().unwrap()],
    );
    c
}

fn req(text: &str) -> ClientRequest {
    ClientRequest::parse(text).unwrap()
}

/// Renders a deploy outcome to the byte string the differential test
/// compares. Addresses are excluded deliberately: within one platform
/// pool they are interchangeable (the same argument `deploy_batch`
/// relies on), so the verdict is platform + sandbox decision, or the
/// full error rendering.
fn verdict_sig(outcome: &Result<DeployResponse, DeployError>) -> String {
    match outcome {
        Ok(r) => format!("accept platform={} sandboxed={}", r.platform, r.sandboxed),
        Err(e) => format!("reject {e}"),
    }
}

/// The corpus of §4.1 stock requests plus the Figure 4 Click request and
/// a provably-rejected transit module, each with the tenant that issues
/// it.
fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("cdn-corp", "stock edge: reverse-proxy"),
        ("cdn-corp", "stock geo: geo-dns"),
        ("cdn-corp", "stock burst: x86-vm"),
        ("mobile-7", "stock px: explicit-proxy"),
        ("mobile-7", FIG4),
        ("cdn-corp", TRANSIT),
    ]
}

/// For every corpus request: a fresh controller's (uncached) verdict, the
/// same controller's first deploy, and its second (cached) deploy are
/// byte-identical — and the second deploy is a hit that does zero
/// checking.
#[test]
fn cached_verdicts_are_byte_identical_to_uncached() {
    for (who, text) in corpus() {
        // Uncached baseline on its own controller.
        let mut baseline = fresh();
        let base = verdict_sig(&baseline.deploy(who, req(text)));

        let mut c = fresh();
        let first = verdict_sig(&c.deploy(who, req(text)));
        let before = c.stats();
        let second = verdict_sig(&c.deploy(who, req(text)));
        let after = c.stats();

        assert_eq!(base, first, "{who}: first deploy diverged from baseline");
        assert_eq!(first, second, "{who}: cached verdict diverged");
        assert_eq!(
            after.cache_hits,
            before.cache_hits + 1,
            "{who}: second deploy was not a cache hit"
        );
        // A hit runs no symbolic checking and compiles no model.
        assert_eq!(after.check_ns, before.check_ns, "{who}: hit spent check_ns");
        assert_eq!(
            after.compile_ns, before.compile_ns,
            "{who}: hit spent compile_ns"
        );
        assert!(after.check_ns_saved > before.check_ns_saved || before.check_ns == 0);
    }
}

/// An operator policy change discards every cached verdict: the next
/// deploy of a previously-hit request runs full verification again.
#[test]
fn policy_change_invalidates_cached_verdicts() {
    let mut c = fresh();
    let first = verdict_sig(&c.deploy("mobile-7", req(FIG4)));
    c.deploy("mobile-7", req(FIG4)).unwrap();
    assert_eq!(c.stats().cache_hits, 1);
    assert_eq!(c.stats().cache_misses, 1);
    assert_eq!(c.cached_verdicts(), 1);

    c.add_operator_policy(
        Requirement::parse("reach from internet tcp src port 80 -> HTTPOptimizer -> client")
            .unwrap(),
    );
    assert_eq!(c.cached_verdicts(), 0, "policy change must empty the cache");
    assert_eq!(c.stats().cache_invalidations, 1);

    let third = verdict_sig(&c.deploy("mobile-7", req(FIG4)));
    assert_eq!(c.stats().cache_hits, 1, "third deploy must not hit");
    assert_eq!(c.stats().cache_misses, 2, "third deploy must re-verify");
    // The new rule does not hold on Figure 3, so re-verification now
    // rejects — replaying the stale cached accept would have been wrong.
    assert!(first.starts_with("accept"), "{first}");
    assert!(third.starts_with("reject"), "{third}");
}

/// Hardening changes invalidate only when they actually change the
/// policy; killing a module always invalidates.
#[test]
fn hardening_and_kill_invalidate() {
    let mut c = fresh();
    let resp = c.deploy("mobile-7", req(FIG4)).unwrap();

    // A no-op hardening assignment must keep the cache warm.
    c.set_hardening(HardeningPolicy::default());
    assert_eq!(c.cached_verdicts(), 1);

    c.set_hardening(HardeningPolicy {
        ingress_filtering: true,
        ban_udp_reflection: false,
    });
    assert_eq!(c.cached_verdicts(), 0);
    assert_eq!(c.stats().cache_invalidations, 1);

    // Repopulate, then kill: removal can flip verdicts, so it bumps too.
    c.deploy("mobile-7", req(FIG4)).unwrap();
    assert_eq!(c.cached_verdicts(), 1);
    c.kill(resp.module_id).unwrap();
    assert_eq!(c.cached_verdicts(), 0);
    assert_eq!(c.stats().cache_invalidations, 2);
}

/// Rejections are memoized too: the replayed error renders identically
/// and the hit is counted.
#[test]
fn rejects_replay_from_the_cache() {
    let mut c = fresh();
    let first = verdict_sig(&c.deploy("cdn-corp", req(TRANSIT)));
    let second = verdict_sig(&c.deploy("cdn-corp", req(TRANSIT)));
    assert!(first.starts_with("reject"));
    assert_eq!(first, second);
    assert_eq!(c.stats().cache_hits, 1);
    assert_eq!(c.stats().rejected, 2);
    assert_eq!(c.stats().accepted, 0);
}

/// The headline number: on 100 identical requests, a cache hit costs at
/// least 5× less wall-clock than the initial full verification (in
/// practice orders of magnitude — hits skip compilation and checking
/// entirely).
#[test]
fn hits_are_at_least_5x_cheaper_than_misses() {
    let mut c = fresh();

    let t0 = Instant::now();
    c.deploy("mobile-7", req(FIG4)).unwrap();
    let miss = t0.elapsed();

    let mut hits: Vec<Duration> = Vec::with_capacity(99);
    for _ in 0..99 {
        let t = Instant::now();
        c.deploy("mobile-7", req(FIG4)).unwrap();
        hits.push(t.elapsed());
    }
    assert_eq!(c.stats().cache_hits, 99);
    assert_eq!(c.stats().cache_misses, 1);
    assert_eq!(c.stats().accepted, 100);
    // Exactly one miss populated check_ns; every hit credits that cost.
    assert_eq!(c.stats().check_ns_saved, 99 * c.stats().check_ns);

    hits.sort_unstable();
    let median = hits[hits.len() / 2];
    assert!(
        miss >= median * 5,
        "verification {miss:?} not ≥5× median hit {median:?}"
    );
}

/// `deploy_batch` shards verify against snapshots that share the live
/// cache: a warm entry turns the whole batch into hits, and the shard
/// counters fold back into the controller's statistics.
#[test]
fn batch_shards_share_the_cache() {
    let mut c = fresh();
    c.deploy("mobile-7", req(FIG4)).unwrap();
    assert_eq!(c.stats().cache_misses, 1);

    let batch: Vec<(String, ClientRequest)> = (0..8)
        .map(|_| ("mobile-7".to_string(), req(FIG4)))
        .collect();
    let results = c.deploy_batch(batch, 4);
    assert_eq!(results.len(), 8);
    for r in &results {
        assert!(r.is_ok(), "batch deploy failed: {r:?}");
    }
    assert!(
        c.stats().cache_hits >= 8,
        "shards did not hit the shared cache: {:?}",
        c.stats()
    );
    assert_eq!(c.stats().cache_misses, 1);
}
