//! One reproducible function per table and figure of the paper's
//! evaluation (§6–§8).
//!
//! Every function is deterministic given its parameters (and seed, where
//! randomness is involved), returns plain data, and is exercised both by
//! the integration tests (shape assertions) and by the `innet-bench`
//! harness (which prints the paper-style series). See `DESIGN.md` for the
//! per-experiment index and `EXPERIMENTS.md` for paper-vs-measured notes.

pub mod ablations;
pub mod fig05_reaction;
pub mod fig06_http;
pub mod fig07_suspend;
pub mod fig08_consolidation;
pub mod fig09_thousand;
pub mod fig10_controller;
pub mod fig11_sandbox;
pub mod fig12_middleboxes;
pub mod fig13_energy;
pub mod fig14_tunnel;
pub mod fig15_slowloris;
pub mod fig16_cdn;
pub mod sec6_capacity;
