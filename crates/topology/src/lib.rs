//! # innet-topology
//!
//! The operator's network model: routers with routing tables, processing
//! platforms, operator middleboxes, client subnets, and the Internet edge.
//!
//! The controller verifies every deployment request against a *snapshot*
//! of this model (paper §4.3: "this snapshot includes routing and switch
//! tables, middlebox configurations, tunnels, etc."). The topology itself
//! is pure data — the controller compiles it, together with the installed
//! processing modules, into a symbolic graph for verification.
//!
//! [`Topology::figure3`] builds the paper's running example; [`generate`]
//! grows random operator networks for the controller-scalability
//! experiment (Figure 10); [`generate_fleet`] builds seeded capacitated
//! WAN/DC fleets for multi-host placement and live migration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod graph;

pub use generate::{generate, generate_fleet, FleetParams, GenerateParams};
pub use graph::{
    Link, NodeId, NodeKind, PathAttrs, PlatformSpec, TopoError, TopoNode, Topology,
    DEFAULT_LINK_BANDWIDTH_BPS, DEFAULT_LINK_LATENCY_NS,
};
