//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: a growable,
//! sliceable byte buffer ([`BytesMut`]) and a cheaply clonable frozen
//! handle ([`Bytes`]). Semantics match the real crate for this subset;
//! the zero-copy internals do not (buffers are plain `Vec<u8>`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { vec: vec![0; len] }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Number of bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Clears the buffer, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Shortens the buffer to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Appends `src` to the end of the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`, like the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Freezes the buffer into an immutable, cheaply clonable handle.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.vec),
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { vec: src.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

/// An immutable, cheaply clonable byte handle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the handle is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(vec),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(src),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }

    #[test]
    fn freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2, 3]);
        let f = b.freeze();
        assert_eq!(&f[..], &[1, 2, 3]);
        let g = f.clone();
        assert_eq!(f, g);
    }

    #[test]
    fn zeroed_len() {
        let b = BytesMut::zeroed(9);
        assert_eq!(b.len(), 9);
        assert!(b.iter().all(|&x| x == 0));
    }
}
