//! Workload generation: MAWI-style backbone traces and their
//! active-connection analysis (paper §6, "MAWI traces").

use rand::distributions::Distribution;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::des::{SimTime, SECOND};

/// One synthetic TCP connection with complete setup/teardown inside the
/// trace window (the paper discards connections without both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFlow {
    /// Connection establishment time.
    pub start: SimTime,
    /// Teardown time.
    pub end: SimTime,
    /// Anonymized active-opener (client) id.
    pub client: u32,
}

/// Parameters of the synthetic backbone trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Trace window length (the MAWI samples are 15 minutes).
    pub duration: SimTime,
    /// Mean connection arrival rate per second.
    pub arrivals_per_sec: f64,
    /// Log-normal μ of connection duration (seconds).
    pub dur_mu: f64,
    /// Log-normal σ of connection duration.
    pub dur_sigma: f64,
    /// Size of the client population (active openers draw from it with a
    /// heavy-tailed preference).
    pub clients: u32,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            duration: 900 * SECOND,
            arrivals_per_sec: 200.0,
            // exp(1.2) ≈ 3.3 s median, heavy tail up to minutes.
            dur_mu: 1.2,
            dur_sigma: 1.6,
            clients: 1300,
        }
    }
}

/// Generates a synthetic 15-minute backbone trace. Only connections whose
/// setup *and* teardown fall inside the window are produced, mirroring the
/// paper's filtering.
pub fn generate_trace(params: &TraceParams, seed: u64) -> Vec<TraceFlow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    let mut t = 0.0f64;
    let dur_s = params.duration as f64 / SECOND as f64;
    let lognorm = rand_distr_lognormal(params.dur_mu, params.dur_sigma);
    while t < dur_s {
        // Poisson arrivals.
        t += -(1.0 - rng.gen::<f64>()).ln() / params.arrivals_per_sec;
        if t >= dur_s {
            break;
        }
        let dur = lognorm.sample(&mut rng).min(dur_s);
        let end = t + dur;
        if end >= dur_s {
            continue; // Teardown outside the window: discarded.
        }
        // Heavy-tailed client popularity (few heavy hitters, long tail).
        let u: f64 = rng.gen::<f64>();
        let client = ((params.clients as f64) * u.powf(4.0)) as u32;
        flows.push(TraceFlow {
            start: (t * SECOND as f64) as SimTime,
            end: (end * SECOND as f64) as SimTime,
            client,
        });
    }
    flows.sort_by_key(|f| f.start);
    flows
}

/// A simple log-normal sampler (avoiding an extra dependency).
struct LogNormal {
    mu: f64,
    sigma: f64,
}

fn rand_distr_lognormal(mu: f64, sigma: f64) -> LogNormal {
    LogNormal { mu, sigma }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Peak concurrency statistics of a trace (the §6 take-away numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Maximum simultaneously active TCP connections.
    pub max_active_connections: usize,
    /// Maximum simultaneously active clients (distinct active openers).
    pub max_active_clients: usize,
    /// Total connections in the window.
    pub total_connections: usize,
}

/// Sweeps the trace and reports peak concurrent connections and peak
/// concurrent active openers.
pub fn analyze(flows: &[TraceFlow]) -> TraceStats {
    // Event sweep over starts/ends.
    let mut events: Vec<(SimTime, bool, u32)> = Vec::with_capacity(flows.len() * 2);
    for f in flows {
        events.push((f.start, true, f.client));
        events.push((f.end, false, f.client));
    }
    events.sort_unstable_by_key(|&(t, is_start, _)| (t, !is_start as u8));

    let mut active = 0usize;
    let mut max_active = 0usize;
    let mut per_client: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut active_clients = 0usize;
    let mut max_clients = 0usize;
    for (_, is_start, client) in events {
        if is_start {
            active += 1;
            let c = per_client.entry(client).or_insert(0);
            if *c == 0 {
                active_clients += 1;
            }
            *c += 1;
        } else {
            active -= 1;
            let c = per_client.get_mut(&client).expect("balanced events");
            *c -= 1;
            if *c == 0 {
                active_clients -= 1;
            }
        }
        max_active = max_active.max(active);
        max_clients = max_clients.max(active_clients);
    }
    TraceStats {
        max_active_connections: max_active,
        max_active_clients: max_clients,
        total_connections: flows.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_mawi_scale() {
        // §6: "at any moment, there are at most 1,600 to 4,000 active TCP
        // connections, and between 400 to 840 active TCP clients."
        for seed in 0..3 {
            let flows = generate_trace(&TraceParams::default(), seed);
            let stats = analyze(&flows);
            // §6: "at most 1,600 to 4,000 active TCP connections, and
            // between 400 to 840 active TCP clients."
            assert!(
                (1600..=4000).contains(&stats.max_active_connections),
                "connections {stats:?}"
            );
            assert!(
                (400..=840).contains(&stats.max_active_clients),
                "clients {stats:?}"
            );
            assert!(stats.max_active_clients < stats.max_active_connections);
        }
    }

    #[test]
    fn flows_are_inside_window() {
        let p = TraceParams::default();
        let flows = generate_trace(&p, 7);
        for f in &flows {
            assert!(f.start < f.end);
            assert!(f.end < p.duration);
        }
    }

    #[test]
    fn analysis_counts_correctly() {
        let flows = vec![
            TraceFlow {
                start: 0,
                end: 100,
                client: 1,
            },
            TraceFlow {
                start: 50,
                end: 150,
                client: 1,
            },
            TraceFlow {
                start: 60,
                end: 70,
                client: 2,
            },
        ];
        let stats = analyze(&flows);
        assert_eq!(stats.max_active_connections, 3);
        assert_eq!(stats.max_active_clients, 2);
        assert_eq!(stats.total_connections, 3);
    }

    #[test]
    fn deterministic() {
        let a = generate_trace(&TraceParams::default(), 42);
        let b = generate_trace(&TraceParams::default(), 42);
        assert_eq!(a, b);
    }
}
