//! Minimal offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types to
//! keep the door open for wire formats, but nothing in the tree actually
//! serializes yet. This stub provides the trait names and re-exports the
//! no-op derives so the annotations compile without registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; the no-op derive
/// produces no impls because nothing in the workspace serializes yet.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de>: Sized {}
