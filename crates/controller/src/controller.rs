//! The controller proper: client accounts, placement search, commitment,
//! and flow-rule installation.

use std::borrow::Cow;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use innet_click::{ClickConfig, Registry};
use innet_policy::Requirement;
use innet_symnet::{
    check_module_summarized, check_module_with_stats, CheckStats, ModelCache, RequesterClass,
    SecurityContext, SecurityReport, SymError, Verdict,
};
use innet_topology::{NodeId, NodeKind, Topology};
use parking_lot::RwLock;

use crate::{
    cache::{verdict_key, CachedOutcome, CachedVerdict, VerdictCache},
    hardening::{apply_udp_reflection_ban, HardeningPolicy},
    netmodel::{compile, InstalledModule, NetworkModel},
    placement::{PlacementContext, RejectReason},
    request::{ClientRequest, ModuleConfig},
    sandbox::wrap_with_enforcer,
    stock::stock_config,
    summaries::{SharedSummaries, SummaryCache},
    verify::{check_requirement_summarized, VerifyError},
};

/// Identifier of an installed module.
pub type ModuleId = u64;

/// A registered tenant.
#[derive(Debug, Clone)]
pub struct ClientAccount {
    /// Requester class (drives the security rules).
    pub class: RequesterClass,
    /// Addresses the tenant has registered with the operator (the
    /// explicit-authorization white-list of §2.1).
    pub registered: Vec<Ipv4Addr>,
}

/// A vswitch steering rule the controller installs when committing a
/// module (the OpenFlow rules of §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRule {
    /// Platform the rule is installed on.
    pub platform: String,
    /// Destination address to match.
    pub dst: Ipv4Addr,
    /// Module receiving the traffic.
    pub module: ModuleId,
}

/// Cumulative controller statistics (request latency split into the
/// model-compile and checking phases, as Figure 10 reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Requests received.
    pub requests: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Nanoseconds spent building network models.
    pub compile_ns: u64,
    /// Nanoseconds spent in symbolic checking.
    pub check_ns: u64,
    /// Deploy requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Deploy requests that ran full verification (and populated the
    /// cache).
    pub cache_misses: u64,
    /// Cached verdicts discarded by epoch bumps (operator policy,
    /// hardening, or topology changes).
    pub cache_invalidations: u64,
    /// Checking nanoseconds avoided by cache hits: each hit credits the
    /// `check_ns` the original full evaluation of that request spent.
    pub check_ns_saved: u64,
    /// Platform candidates decided by the static analyzer's fast path
    /// (symbolic execution skipped entirely).
    pub fastpath_hits: u64,
    /// Platform candidates where the analyzer was consulted but came back
    /// inconclusive, falling back to full symbolic execution.
    pub fastpath_fallbacks: u64,
    /// Requests refused by the lint pass before any verification.
    pub lint_rejects: u64,
    /// Lint reports replayed from the fleet-wide memo instead of
    /// re-running the lint pass (lint is a pure function of the
    /// materialized configuration and the element registry).
    pub lint_cache_hits: u64,
    /// Nanoseconds spent in static analysis (lint + abstract
    /// interpretation).
    pub analysis_ns: u64,
    /// Symbolic runs stopped by the global hop (state) bound.
    pub hop_cap_bailouts: u64,
    /// Symbolic branches cut by the per-node visit (depth) bound.
    pub visit_cap_bailouts: u64,
    /// Chain summaries served from the fleet-wide summary cache.
    pub summary_cache_hits: u64,
    /// Chain summaries computed fresh (and stored for the fleet).
    pub summary_cache_misses: u64,
    /// Chain elements covered by summary replay instead of per-element
    /// symbolic execution.
    pub summary_chain_nodes: u64,
    /// Cached chain summaries discarded by epoch bumps.
    pub summary_invalidations: u64,
    /// Nanoseconds spent in the admission pipeline's lint stage.
    pub stage_lint_ns: u64,
    /// Nanoseconds spent in the abstract-interpretation fast-path stage.
    pub stage_fastpath_ns: u64,
    /// Nanoseconds spent in the compositional symbolic stage (security
    /// check, summary replay included).
    pub stage_symbolic_ns: u64,
    /// Nanoseconds spent in the placement stage (capacity + address
    /// assignment, model compilation, policy and requirement checks).
    pub stage_placement_ns: u64,
    /// Per-platform placement rejections accumulated across
    /// `NoFeasiblePlacement` outcomes (one per `(platform, reason)`
    /// pair). The per-reason split is exported as
    /// `innet_ctl_placement_reject_total{reason=…}`.
    pub placement_rejects: u64,
}

impl ControllerStats {
    /// Fraction of analyzer consultations that produced a fast-path
    /// verdict (0.0 when the analyzer was never consulted).
    pub fn fastpath_hit_rate(&self) -> f64 {
        let consulted = self.fastpath_hits + self.fastpath_fallbacks;
        if consulted == 0 {
            0.0
        } else {
            self.fastpath_hits as f64 / consulted as f64
        }
    }

    /// Total symbolic bailouts: runs stopped by the state (hop) cap plus
    /// branches cut by the depth (per-node visit) cap. The split is
    /// exported as `innet_ctl_symbolic_bailouts_total{reason=…}`.
    pub fn symbolic_bailouts(&self) -> u64 {
        self.hop_cap_bailouts + self.visit_cap_bailouts
    }
}

/// Shared-registry instruments for one controller (see
/// [`Controller::attach_metrics`]).
#[derive(Debug, Clone)]
struct ControllerMetrics {
    requests: innet_obs::Counter,
    accepted: innet_obs::Counter,
    rejected: innet_obs::Counter,
    cache_hits: innet_obs::Counter,
    cache_misses: innet_obs::Counter,
    cache_invalidations: innet_obs::Counter,
    check_ns_saved: innet_obs::Counter,
    compile_ns_total: innet_obs::Counter,
    check_ns_total: innet_obs::Counter,
    compile_ns: innet_obs::Histogram,
    check_ns: innet_obs::Histogram,
    verdicts: innet_obs::LabeledCounter,
    fastpath_hits: innet_obs::Counter,
    fastpath_fallbacks: innet_obs::Counter,
    lint_rejects: innet_obs::Counter,
    lint_cache_hits: innet_obs::Counter,
    analysis_ns_total: innet_obs::Counter,
    analysis_ns: innet_obs::Histogram,
    symbolic_bailouts: innet_obs::LabeledCounter,
    summary_cache_hits: innet_obs::Counter,
    summary_cache_misses: innet_obs::Counter,
    summary_chain_nodes: innet_obs::Counter,
    summary_invalidations: innet_obs::Counter,
    stage_lint_ns: innet_obs::Histogram,
    stage_fastpath_ns: innet_obs::Histogram,
    stage_symbolic_ns: innet_obs::Histogram,
    stage_placement_ns: innet_obs::Histogram,
    placement_rejects: innet_obs::LabeledCounter,
}

impl ControllerMetrics {
    fn register(reg: &innet_obs::Registry) -> ControllerMetrics {
        ControllerMetrics {
            requests: reg.counter("innet_ctl_requests_total"),
            accepted: reg.counter("innet_ctl_accepted_total"),
            rejected: reg.counter("innet_ctl_rejected_total"),
            cache_hits: reg.counter("innet_ctl_cache_hits_total"),
            cache_misses: reg.counter("innet_ctl_cache_misses_total"),
            cache_invalidations: reg.counter("innet_ctl_cache_invalidations_total"),
            check_ns_saved: reg.counter("innet_ctl_check_ns_saved_total"),
            compile_ns_total: reg.counter("innet_ctl_compile_ns_total"),
            check_ns_total: reg.counter("innet_ctl_check_ns_total"),
            compile_ns: reg.histogram("innet_ctl_compile_ns"),
            check_ns: reg.histogram("innet_ctl_check_ns"),
            verdicts: reg.labeled_counter("innet_ctl_verdicts_total", "verdict"),
            fastpath_hits: reg.counter("innet_ctl_fastpath_hits_total"),
            fastpath_fallbacks: reg.counter("innet_ctl_fastpath_fallbacks_total"),
            lint_rejects: reg.counter("innet_ctl_lint_rejects_total"),
            lint_cache_hits: reg.counter("innet_ctl_lint_cache_hits_total"),
            analysis_ns_total: reg.counter("innet_ctl_analysis_ns_total"),
            analysis_ns: reg.histogram("innet_ctl_analysis_ns"),
            symbolic_bailouts: reg.labeled_counter("innet_ctl_symbolic_bailouts_total", "reason"),
            summary_cache_hits: reg.counter("innet_ctl_summary_cache_hits_total"),
            summary_cache_misses: reg.counter("innet_ctl_summary_cache_misses_total"),
            summary_chain_nodes: reg.counter("innet_ctl_summary_chain_nodes_total"),
            summary_invalidations: reg.counter("innet_ctl_summary_invalidations_total"),
            stage_lint_ns: reg.histogram("innet_ctl_stage_lint_ns"),
            stage_fastpath_ns: reg.histogram("innet_ctl_stage_fastpath_ns"),
            stage_symbolic_ns: reg.histogram("innet_ctl_stage_symbolic_ns"),
            stage_placement_ns: reg.histogram("innet_ctl_stage_placement_ns"),
            placement_rejects: reg.labeled_counter("innet_ctl_placement_reject_total", "reason"),
        }
    }
}

/// Why a deployment failed.
#[derive(Debug, Clone)]
pub enum DeployError {
    /// The client id is not registered.
    UnknownClient(String),
    /// The configuration could not be modeled (unknown element class or
    /// malformed arguments) — per §4.1 such requests are refused.
    BadConfig(SymError),
    /// The lint pass found structural errors (wiring mistakes, dead
    /// outputs, queueless cycles, …) — refused before any verification,
    /// with the precise rule ids.
    Lint(innet_analysis::LintReport),
    /// The module provably violates the security rules. The report is
    /// shared (`Arc`): the same rejection is also memoized in the verdict
    /// cache, and a deep copy of its symbolic egress flows per request
    /// would dominate the admission path's constant costs.
    SecurityReject(Arc<SecurityReport>),
    /// No platform satisfies both the operator's policy and the client's
    /// requirements.
    NoFeasiblePlacement {
        /// Per-platform explanation of why it was rejected.
        reasons: Vec<(String, String)>,
    },
    /// A requirement referenced an unknown node.
    Verify(VerifyError),
    /// No such module (for `kill`).
    NoSuchModule(ModuleId),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnknownClient(c) => write!(f, "unknown client '{c}'"),
            DeployError::BadConfig(e) => write!(f, "unmodellable configuration: {e}"),
            DeployError::Lint(report) => write!(f, "configuration failed lint: {report}"),
            DeployError::SecurityReject(r) => {
                write!(f, "security violation: {:?}", r.violations)
            }
            DeployError::NoFeasiblePlacement { reasons } => {
                write!(f, "no feasible placement: {reasons:?}")
            }
            DeployError::Verify(e) => write!(f, "{e}"),
            DeployError::NoSuchModule(id) => write!(f, "no module {id}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<VerifyError> for DeployError {
    fn from(e: VerifyError) -> Self {
        DeployError::Verify(e)
    }
}

/// The controller's answer to a successful deployment (§4.3: the client
/// is given an address it can be reached at, and a module id for `kill`).
#[derive(Debug, Clone)]
pub struct DeployResponse {
    /// Handle for `kill`.
    pub module_id: ModuleId,
    /// The module's name.
    pub module_name: String,
    /// The address assigned to the module.
    pub public_addr: Ipv4Addr,
    /// Name of the hosting platform.
    pub platform: String,
    /// Whether a sandbox was injected.
    pub sandboxed: bool,
    /// Nanoseconds spent compiling network models for this request.
    pub compile_ns: u64,
    /// Nanoseconds spent checking (security + policy + requirements).
    pub check_ns: u64,
}

/// Per-stage wall time of one pass through the admission pipeline
/// (lint → abstract fast path → compositional symbolic → placement).
#[derive(Debug, Clone, Copy, Default)]
struct StageNs {
    lint: u64,
    fastpath: u64,
    symbolic: u64,
    placement: u64,
}

/// What one full (uncached) deployment evaluation produced: the outcome
/// plus per-phase timings and static-analysis counters, so the caller
/// can do all statistics accounting in one place.
struct UncachedOutcome {
    result: Result<DeployResponse, DeployError>,
    compile_ns: u64,
    check_ns: u64,
    analysis_ns: u64,
    fastpath_hits: u64,
    fastpath_fallbacks: u64,
    lint_rejected: bool,
    lint_cache_hit: bool,
    check: CheckStats,
    stage: StageNs,
}

/// The In-Net controller.
pub struct Controller {
    topology: Topology,
    registry: Registry,
    operator_policy: Vec<Requirement>,
    clients: HashMap<String, ClientAccount>,
    modules: Vec<InstalledModule>,
    flow_rules: Vec<FlowRule>,
    next_id: ModuleId,
    addr_cursor: HashMap<NodeId, u32>,
    hardening: HardeningPolicy,
    /// Whether the abstract-interpretation fast path may decide verdicts
    /// (the lint pass always runs). On by default; the analyzer bench
    /// turns it off for its baseline.
    analysis_enabled: bool,
    /// Whether the security check may walk memoized chain summaries
    /// (`check_module_summarized`) instead of whole-graph symbolic
    /// execution. On by default; the admission bench turns it off for its
    /// whole-graph baseline. Participates in the verdict-cache key.
    summaries_enabled: bool,
    /// The verification verdict cache, shared (behind `parking_lot`) with
    /// the verification snapshots `deploy_batch` spawns, so shard misses
    /// warm the cache for everyone.
    verdicts: Arc<RwLock<VerdictCache>>,
    /// The chain-summary cache, shared like the verdict cache and
    /// epoch-invalidated alongside it.
    summaries: Arc<RwLock<SummaryCache>>,
    /// Fleet-wide memo of symbolic element models, handed to the
    /// compositional checker through [`SharedSummaries`] (the whole-graph
    /// oracle deliberately rebuilds its models per check). Entries are
    /// pure functions of element class + arguments; flushed with the
    /// other verification memos for hygiene only.
    models: Arc<ModelCache>,
    /// Memoized lint reports keyed by the materialized configuration's
    /// canonical text. Lint is a pure function of the configuration and
    /// the element registry, so replays are exact; flushed alongside the
    /// verdict cache for hygiene.
    lint_memo: Arc<RwLock<HashMap<String, innet_analysis::LintReport>>>,
    /// Precomputed placement-scoring context (client-vantage shortest
    /// paths). Immutable after construction — the topology is fixed for
    /// the controller's lifetime — and shared with verification shards.
    placement: Arc<PlacementContext>,
    /// Cumulative statistics.
    stats: ControllerStats,
    /// Shared-registry instruments, if attached.
    metrics: Option<ControllerMetrics>,
}

impl Controller {
    /// Creates a controller for the given operator topology.
    pub fn new(topology: Topology) -> Controller {
        let placement = Arc::new(PlacementContext::new(&topology));
        Controller {
            topology,
            registry: Registry::standard(),
            operator_policy: Vec::new(),
            clients: HashMap::new(),
            modules: Vec::new(),
            flow_rules: Vec::new(),
            next_id: 1,
            addr_cursor: HashMap::new(),
            hardening: HardeningPolicy::default(),
            analysis_enabled: true,
            summaries_enabled: true,
            verdicts: Arc::new(RwLock::new(VerdictCache::default())),
            summaries: Arc::new(RwLock::new(SummaryCache::default())),
            models: Arc::new(ModelCache::default()),
            lint_memo: Arc::new(RwLock::new(HashMap::new())),
            placement,
            stats: ControllerStats::default(),
            metrics: None,
        }
    }

    /// Enables or disables the abstract-interpretation fast path (the
    /// lint pass always runs). The flag participates in the verdict-cache
    /// key, so toggling it never replays a verdict computed the other
    /// way.
    pub fn set_analysis_enabled(&mut self, enabled: bool) {
        self.analysis_enabled = enabled;
    }

    /// Whether the fast path is enabled.
    pub fn analysis_enabled(&self) -> bool {
        self.analysis_enabled
    }

    /// Enables or disables the compositional summary walk in the security
    /// check (whole-graph symbolic execution — the differential oracle —
    /// runs when disabled). Verdicts are identical either way; the flag
    /// still participates in the verdict-cache key because the reports
    /// attached to an outcome may order their details differently.
    pub fn set_summaries_enabled(&mut self, enabled: bool) {
        self.summaries_enabled = enabled;
    }

    /// Whether the compositional summary walk is enabled.
    pub fn summaries_enabled(&self) -> bool {
        self.summaries_enabled
    }

    /// Number of chain summaries currently cached.
    pub fn cached_summaries(&self) -> usize {
        self.summaries.read().len()
    }

    /// Publishes this controller's counters into `registry` (Prometheus
    /// namespace `innet_ctl_*`): request/accept/reject totals,
    /// verdict-cache traffic, cumulative and per-request compile/check
    /// time, and `innet_ctl_verdicts_total` labeled by the outcome of
    /// each full (uncached) verification (`accept`, `sandbox`,
    /// `reject`). Only activity after attachment is counted.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.metrics = Some(ControllerMetrics::register(registry));
    }

    /// A snapshot of the controller's cumulative statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Sets the §7 hardening policy (ingress filtering, UDP-reflection
    /// ban). Applies to subsequent deployments; an effective change
    /// invalidates all cached verdicts.
    pub fn set_hardening(&mut self, policy: HardeningPolicy) {
        if policy != self.hardening {
            self.hardening = policy;
            self.invalidate_verdicts();
        }
    }

    /// Discards every cached verification verdict by starting a new cache
    /// epoch — and the chain-summary cache with it, so all verification
    /// memoization shares one invalidation discipline. Called
    /// automatically on operator policy, hardening, and module-removal
    /// changes; operators can call it directly after out-of-band changes
    /// (e.g. topology edits).
    pub fn invalidate_verdicts(&mut self) {
        let dropped = self.verdicts.write().bump_epoch();
        self.stats.cache_invalidations += dropped;
        let summaries_dropped = self.summaries.write().bump_epoch();
        self.stats.summary_invalidations += summaries_dropped;
        // Model and lint memos hold pure functions of their keys and can
        // never go stale; they join the epoch flush as a memory bound.
        self.models.clear();
        self.lint_memo.write().clear();
        if let Some(m) = &self.metrics {
            m.cache_invalidations.add(dropped);
            m.summary_invalidations.add(summaries_dropped);
        }
    }

    /// Number of verdicts currently cached.
    pub fn cached_verdicts(&self) -> usize {
        self.verdicts.read().len()
    }

    /// The current hardening policy.
    pub fn hardening(&self) -> HardeningPolicy {
        self.hardening
    }

    /// Adds an operator policy rule that must hold after every network
    /// modification. Invalidates all cached verdicts: they were computed
    /// under the old rule set.
    pub fn add_operator_policy(&mut self, rule: Requirement) {
        self.operator_policy.push(rule);
        self.invalidate_verdicts();
    }

    /// Registers a tenant with its requester class and registered
    /// addresses.
    pub fn register_client(
        &mut self,
        id: impl Into<String>,
        class: RequesterClass,
        registered: Vec<Ipv4Addr>,
    ) {
        self.clients
            .insert(id.into(), ClientAccount { class, registered });
    }

    /// The currently installed modules.
    pub fn modules(&self) -> &[InstalledModule] {
        &self.modules
    }

    /// The installed vswitch flow rules.
    pub fn flow_rules(&self) -> &[FlowRule] {
        &self.flow_rules
    }

    /// The operator policy rules.
    pub fn operator_policy_rules(&self) -> &[Requirement] {
        &self.operator_policy
    }

    /// Registered client accounts.
    pub fn client_accounts(&self) -> impl Iterator<Item = (&String, &ClientAccount)> {
        self.clients.iter()
    }

    /// Installs an already-verified module set verbatim (used when
    /// building verification snapshots for parallel shards).
    pub fn adopt_modules(&mut self, modules: Vec<InstalledModule>) {
        self.next_id = modules
            .iter()
            .map(|m| m.id + 1)
            .max()
            .unwrap_or(self.next_id);
        self.modules = modules;
    }

    /// Whether the named platform still has capacity for one more module.
    pub fn platform_has_room(&self, platform_name: &str) -> bool {
        let Some(id) = self.topology.index_of(platform_name) else {
            return false;
        };
        let NodeKind::Platform(spec) = &self.topology.node(id).kind else {
            return false;
        };
        self.modules.iter().filter(|m| m.platform == id).count() < spec.capacity
    }

    /// Installed-module count per platform.
    fn occupancy(&self) -> HashMap<NodeId, usize> {
        let mut occ: HashMap<NodeId, usize> = HashMap::new();
        for m in &self.modules {
            *occ.entry(m.platform).or_insert(0) += 1;
        }
        occ
    }

    /// The topology's platforms in placement-preference order (client
    /// latency, residual capacity, link headroom — see
    /// [`PlacementContext::score`]) under current occupancy.
    pub fn ranked_platforms(&self) -> Vec<NodeId> {
        self.placement.rank(&self.topology, &self.occupancy())
    }

    /// The best-ranked platform that still has module capacity, if any.
    fn best_platform_with_room(&self) -> Option<NodeId> {
        let occupancy = self.occupancy();
        self.placement
            .rank(&self.topology, &occupancy)
            .into_iter()
            .find(|p| match &self.topology.node(*p).kind {
                NodeKind::Platform(spec) => occupancy.get(p).copied().unwrap_or(0) < spec.capacity,
                _ => false,
            })
    }

    /// Counts each per-platform rejection of a `NoFeasiblePlacement`
    /// outcome, split by [`RejectReason`] in the labeled metric.
    fn note_placement_rejects(&mut self, err: &DeployError) {
        let DeployError::NoFeasiblePlacement { reasons } = err else {
            return;
        };
        self.stats.placement_rejects += reasons.len() as u64;
        if let Some(m) = &self.metrics {
            for (_, why) in reasons {
                m.placement_rejects
                    .with(RejectReason::classify(why).as_str())
                    .inc();
            }
        }
    }

    /// Compiles the current network state into a verification model.
    pub fn network_model(&self) -> Result<NetworkModel, SymError> {
        let mut m = compile(&self.topology, &self.modules, &self.registry)?;
        m.ingress_filtering = self.hardening.ingress_filtering;
        Ok(m)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn allocate_addr(&mut self, platform: NodeId) -> Option<Ipv4Addr> {
        let NodeKind::Platform(spec) = &self.topology.node(platform).kind else {
            return None;
        };
        let cursor = self.addr_cursor.entry(platform).or_insert(10);
        let addr = spec.addr_pool.nth_host(*cursor);
        *cursor += 1;
        Some(addr)
    }

    /// Materializes a request's configuration for a concrete assigned
    /// address: binds `$SELF` placeholders in Click configurations and
    /// instantiates stock templates. Configurations without `$SELF` are
    /// address-independent and borrowed as-is — the common case on the
    /// admission hot path, where the clone would be pure overhead.
    fn materialize_config(config: &ModuleConfig, addr: Ipv4Addr) -> Cow<'_, ClickConfig> {
        match config {
            ModuleConfig::Click(c) => {
                if !c
                    .elements
                    .iter()
                    .any(|e| e.args.iter().any(|a| a.contains("$SELF")))
                {
                    return Cow::Borrowed(c);
                }
                let mut c = c.clone();
                for e in &mut c.elements {
                    for a in &mut e.args {
                        if a.contains("$SELF") {
                            *a = a.replace("$SELF", &addr.to_string());
                        }
                    }
                }
                Cow::Owned(c)
            }
            ModuleConfig::Stock(kind) => Cow::Owned(stock_config(*kind, addr)),
        }
    }

    /// Handles a deployment request (§4.3, §4.5): parse → verdict-cache
    /// lookup → security check → per-platform placement search → commit.
    ///
    /// The verdict cache is consulted before any model is compiled: a hit
    /// replays the memoized decision (re-checking only platform capacity
    /// for accepts), a miss runs the full pipeline and memoizes its
    /// outcome. See the `cache` module docs for the key derivation and
    /// the invalidation contract.
    pub fn deploy(
        &mut self,
        client_id: &str,
        request: ClientRequest,
    ) -> Result<DeployResponse, DeployError> {
        self.deploy_counted(client_id, request, true)
    }

    /// [`Controller::deploy`] with explicit control over the `requests`
    /// statistic. `deploy_batch`'s conflict path re-verifies a request
    /// that a shard already counted, so it passes `count_request: false`
    /// to keep batch and serial statistics identical.
    pub(crate) fn deploy_counted(
        &mut self,
        client_id: &str,
        request: ClientRequest,
        count_request: bool,
    ) -> Result<DeployResponse, DeployError> {
        if count_request {
            self.stats.requests += 1;
            if let Some(m) = &self.metrics {
                m.requests.inc();
            }
        }
        let account = self
            .clients
            .get(client_id)
            .cloned()
            .ok_or_else(|| DeployError::UnknownClient(client_id.to_string()))?;

        let (epoch, key) = {
            let cache = self.verdicts.read();
            let epoch = cache.epoch();
            (
                epoch,
                verdict_key(
                    epoch,
                    &request,
                    &account,
                    self.hardening,
                    self.analysis_enabled,
                    self.summaries_enabled,
                ),
            )
        };
        let hit = self.verdicts.read().get(&key);
        if let Some(hit) = hit {
            match hit.outcome {
                CachedOutcome::Accept {
                    ref platform,
                    sandboxed,
                } if self.platform_has_room(platform) => {
                    self.stats.cache_hits += 1;
                    self.stats.check_ns_saved += hit.check_ns;
                    if let Some(m) = &self.metrics {
                        m.cache_hits.inc();
                        m.check_ns_saved.add(hit.check_ns);
                    }
                    let platform = platform.clone();
                    return self
                        .commit_unchecked(client_id, &account, request, &platform, sandboxed);
                }
                CachedOutcome::Accept { sandboxed, .. }
                    if request.requirements.is_empty() && self.operator_policy.is_empty() =>
                {
                    // The cached placement filled up since it was
                    // verified, but with no requirements and no operator
                    // policy the verdict is placement-independent (the
                    // same argument the hit path's `commit_unchecked`
                    // already relies on) — only the placement step needs
                    // redoing. Commit on the best-ranked platform with
                    // room, still as a cache hit: no model is compiled
                    // and no check re-runs. The refreshed entry points
                    // the next hit straight at the new platform.
                    if let Some(alt) = self.best_platform_with_room() {
                        self.stats.cache_hits += 1;
                        self.stats.check_ns_saved += hit.check_ns;
                        if let Some(m) = &self.metrics {
                            m.cache_hits.inc();
                            m.check_ns_saved.add(hit.check_ns);
                        }
                        let alt_name = self.topology.node(alt).name.clone();
                        self.verdicts.write().insert(
                            epoch,
                            key,
                            CachedVerdict {
                                outcome: CachedOutcome::Accept {
                                    platform: alt_name.clone(),
                                    sandboxed,
                                },
                                check_ns: hit.check_ns,
                            },
                        );
                        return self
                            .commit_unchecked(client_id, &account, request, &alt_name, sandboxed);
                    }
                    // Every platform is full: fall through to the full
                    // pipeline (counted as a miss), which reports the
                    // per-platform reasons.
                }
                CachedOutcome::Accept { .. } => {
                    // The cached placement filled up since it was
                    // verified, and the request constrains placement
                    // (requirements or operator policy), so the verdict
                    // may not transfer to another platform. Fall through
                    // to a full re-verification (counted as a miss); its
                    // outcome replaces the stale entry.
                }
                CachedOutcome::Reject(e) => {
                    self.stats.cache_hits += 1;
                    self.stats.check_ns_saved += hit.check_ns;
                    self.stats.rejected += 1;
                    if let Some(m) = &self.metrics {
                        m.cache_hits.inc();
                        m.check_ns_saved.add(hit.check_ns);
                        m.rejected.inc();
                    }
                    self.note_placement_rejects(&e);
                    return Err(e);
                }
            }
        }
        self.stats.cache_misses += 1;
        if let Some(m) = &self.metrics {
            m.cache_misses.inc();
        }

        let UncachedOutcome {
            result,
            compile_ns,
            check_ns,
            analysis_ns,
            fastpath_hits,
            fastpath_fallbacks,
            lint_rejected,
            lint_cache_hit,
            check,
            stage,
        } = self.deploy_uncached(client_id, &account, request);
        self.stats.compile_ns += compile_ns;
        self.stats.check_ns += check_ns;
        self.stats.analysis_ns += analysis_ns;
        self.stats.fastpath_hits += fastpath_hits;
        self.stats.fastpath_fallbacks += fastpath_fallbacks;
        self.stats.lint_rejects += u64::from(lint_rejected);
        self.stats.lint_cache_hits += u64::from(lint_cache_hit);
        self.stats.hop_cap_bailouts += check.hop_cap_bailouts;
        self.stats.visit_cap_bailouts += check.visit_cap_bailouts;
        self.stats.summary_cache_hits += check.summary_cache_hits;
        self.stats.summary_cache_misses += check.summary_cache_misses;
        self.stats.summary_chain_nodes += check.summary_chain_nodes;
        self.stats.stage_lint_ns += stage.lint;
        self.stats.stage_fastpath_ns += stage.fastpath;
        self.stats.stage_symbolic_ns += stage.symbolic;
        self.stats.stage_placement_ns += stage.placement;
        if let Some(m) = &self.metrics {
            m.compile_ns_total.add(compile_ns);
            m.check_ns_total.add(check_ns);
            m.compile_ns.observe(compile_ns);
            m.check_ns.observe(check_ns);
            m.analysis_ns_total.add(analysis_ns);
            m.analysis_ns.observe(analysis_ns);
            m.fastpath_hits.add(fastpath_hits);
            m.fastpath_fallbacks.add(fastpath_fallbacks);
            if lint_rejected {
                m.lint_rejects.inc();
            }
            if lint_cache_hit {
                m.lint_cache_hits.inc();
            }
            m.symbolic_bailouts
                .with("hop_cap")
                .add(check.hop_cap_bailouts);
            m.symbolic_bailouts
                .with("visit_cap")
                .add(check.visit_cap_bailouts);
            m.summary_cache_hits.add(check.summary_cache_hits);
            m.summary_cache_misses.add(check.summary_cache_misses);
            m.summary_chain_nodes.add(check.summary_chain_nodes);
            m.stage_lint_ns.observe(stage.lint);
            m.stage_fastpath_ns.observe(stage.fastpath);
            m.stage_symbolic_ns.observe(stage.symbolic);
            m.stage_placement_ns.observe(stage.placement);
        }
        match &result {
            Ok(resp) => {
                self.stats.accepted += 1;
                if let Some(m) = &self.metrics {
                    m.accepted.inc();
                    let verdict = if resp.sandboxed { "sandbox" } else { "accept" };
                    m.verdicts.with(verdict).inc();
                }
            }
            Err(e) => {
                self.stats.rejected += 1;
                if let Some(m) = &self.metrics {
                    m.rejected.inc();
                    m.verdicts.with("reject").inc();
                }
                self.note_placement_rejects(e);
            }
        }

        let outcome = match &result {
            Ok(resp) => Some(CachedOutcome::Accept {
                platform: resp.platform.clone(),
                sandboxed: resp.sandboxed,
            }),
            // Not verdicts about the request itself — never memoized.
            Err(DeployError::UnknownClient(_)) | Err(DeployError::NoSuchModule(_)) => None,
            // A placement that failed purely on capacity (platform full,
            // no address pool) is a property of current occupancy, not of
            // the request — occupancy changes on every commit and `kill`
            // without an epoch bump, so memoizing it would keep replaying
            // the reject after space frees up. Verdict-class rejects
            // (security, lint, policy, requirements) stay memoized.
            Err(DeployError::NoFeasiblePlacement { reasons })
                if reasons
                    .iter()
                    .all(|(_, why)| RejectReason::classify(why).is_capacity()) =>
            {
                None
            }
            Err(e) => Some(CachedOutcome::Reject(e.clone())),
        };
        if let Some(outcome) = outcome {
            self.verdicts
                .write()
                .insert(epoch, key, CachedVerdict { outcome, check_ns });
        }
        result
    }

    /// The full (uncached) admission pipeline, run as four explicit
    /// stages — lint → abstract fast path → compositional symbolic →
    /// placement — with per-stage wall time recorded in [`StageNs`] (and,
    /// via the caller, in the `innet_ctl_stage_*_ns` histograms). Returns
    /// the outcome plus per-phase timings and analysis counters; the
    /// caller owns all statistics accounting.
    fn deploy_uncached(
        &mut self,
        client_id: &str,
        account: &ClientAccount,
        request: ClientRequest,
    ) -> UncachedOutcome {
        let mut compile_ns = 0u64;
        let mut check_ns = 0u64;
        let mut analysis_ns = 0u64;
        let mut fastpath_hits = 0u64;
        let mut fastpath_fallbacks = 0u64;
        let mut check = CheckStats::default();
        let mut stage = StageNs::default();
        let mut reasons: Vec<(String, String)> = Vec::new();

        // Stage 1: lint. Structural rules are address-independent, so one
        // pass covers every candidate platform; `$SELF` is bound to a
        // documentation address purely so argument parsing succeeds.
        let t_lint = Instant::now();
        let lint_cfg = Controller::materialize_config(&request.config, Ipv4Addr::new(192, 0, 2, 1));
        // Lint is a pure function of (configuration, registry), so a
        // report memoized under the configuration's canonical text is an
        // exact replay — the stock chains a fleet redeploys under fresh
        // module names lint once.
        let lint_key = lint_cfg.canonical_text();
        let memoized = self.lint_memo.read().get(&lint_key).cloned();
        let lint_cache_hit = memoized.is_some();
        let lint_report = match memoized {
            Some(report) => report,
            None => {
                let report = innet_analysis::lint(&lint_cfg, &self.registry);
                self.lint_memo.write().insert(lint_key, report.clone());
                report
            }
        };
        let lint_ns = t_lint.elapsed().as_nanos() as u64;
        analysis_ns += lint_ns;
        stage.lint += lint_ns;
        if lint_report.has_errors() {
            return UncachedOutcome {
                result: Err(DeployError::Lint(lint_report)),
                compile_ns,
                check_ns,
                analysis_ns,
                fastpath_hits,
                fastpath_fallbacks,
                lint_rejected: true,
                lint_cache_hit,
                check,
                stage,
            };
        }

        // Stage 2 is only sound when nothing the analyzer cannot see
        // influences the outcome: requirements and operator policy need a
        // compiled network model, and the UDP-reflection ban inspects
        // symbolic egress flows.
        let fastpath_eligible = self.analysis_enabled
            && request.requirements.is_empty()
            && self.operator_policy.is_empty()
            && !self.hardening.ban_udp_reflection;

        let result = 'search: {
            // Candidates in placement-preference order: client latency,
            // residual capacity, link headroom (see `PlacementContext`).
            // On figure-3-scale topologies with uniform links this
            // degenerates to the paper's declaration-order iteration.
            let platforms = self.placement.rank(&self.topology, &self.occupancy());
            for platform in platforms {
                let platform_name = self.topology.node(platform).name.clone();

                // Placement: capacity check and tentative address
                // assignment on this platform.
                let t_place = Instant::now();
                let NodeKind::Platform(spec) = &self.topology.node(platform).kind else {
                    continue;
                };
                let installed_here = self
                    .modules
                    .iter()
                    .filter(|m| m.platform == platform)
                    .count();
                if installed_here >= spec.capacity {
                    stage.placement += t_place.elapsed().as_nanos() as u64;
                    reasons.push((platform_name, "platform full".to_string()));
                    continue;
                }

                let Some(addr) = self.allocate_addr(platform) else {
                    stage.placement += t_place.elapsed().as_nanos() as u64;
                    reasons.push((platform_name, "no address pool".to_string()));
                    continue;
                };

                // Materialize the configuration (stock modules need the
                // assigned address; Click configurations may reference
                // the not-yet-known module address as `$SELF`).
                let raw_cfg = Controller::materialize_config(&request.config, addr);
                stage.placement += t_place.elapsed().as_nanos() as u64;

                let ctx = SecurityContext {
                    assigned_addr: addr,
                    registered: account.registered.clone(),
                    class: account.class,
                };

                // Stage 2: field-effect abstract interpretation. A
                // conclusive answer provably agrees with what symbolic
                // execution would decide (see innet-analysis), so both
                // the security check and the model compile are skipped.
                let mut fast = None;
                if fastpath_eligible {
                    let t = Instant::now();
                    fast = innet_analysis::abstract_verdict(&raw_cfg, &ctx, &self.registry);
                    let fast_ns = t.elapsed().as_nanos() as u64;
                    analysis_ns += fast_ns;
                    stage.fastpath += fast_ns;
                    if fast.is_some() {
                        fastpath_hits += 1;
                    } else {
                        fastpath_fallbacks += 1;
                    }
                }
                let fast_path = fast.is_some();
                let report = match fast {
                    Some(a) => SecurityReport {
                        verdict: a.verdict,
                        flows_checked: a.flows_checked,
                        violations: a.violations,
                        unknowns: a.unknowns,
                        egress_flows: Vec::new(),
                    },
                    None => {
                        // Stage 3: compositional symbolic security check
                        // (per requester class). The summary walk replays
                        // memoized chain summaries from the fleet-wide
                        // cache; disabled, the whole-graph oracle runs.
                        let t0 = Instant::now();
                        let outcome = if self.summaries_enabled {
                            let source = SharedSummaries::new(&self.summaries, &self.models);
                            check_module_summarized(&raw_cfg, &ctx, &self.registry, Some(&source))
                        } else {
                            check_module_with_stats(&raw_cfg, &ctx, &self.registry)
                        };
                        let (mut report, check_stats) = match outcome {
                            Ok(v) => v,
                            Err(e) => break 'search Err(DeployError::BadConfig(e)),
                        };
                        check.absorb(check_stats);
                        let sym_ns = t0.elapsed().as_nanos() as u64;
                        check_ns += sym_ns;
                        stage.symbolic += sym_ns;

                        // §7 hardening: the UDP-reflection (amplification)
                        // ban (fast-path-ineligible, so only seen here).
                        if self.hardening.ban_udp_reflection {
                            let (hardened, offenders) = apply_udp_reflection_ban(
                                account.class,
                                &report.egress_flows,
                                &report,
                            );
                            report.verdict = hardened;
                            report.violations.extend(offenders);
                        }
                        report
                    }
                };

                let (run_cfg, sandboxed) = match report.verdict {
                    Verdict::Reject => {
                        break 'search Err(DeployError::SecurityReject(Arc::new(report)));
                    }
                    Verdict::SafeWithSandbox => (
                        wrap_with_enforcer(&raw_cfg, addr, &account.registered),
                        true,
                    ),
                    Verdict::Safe => (raw_cfg.into_owned(), false),
                };

                // Pretend the module is installed here.
                let candidate = InstalledModule {
                    id: self.next_id,
                    name: request.module_name.clone(),
                    platform,
                    addr,
                    config: run_cfg,
                    sandboxed,
                    owner: client_id.to_string(),
                };
                // A fast-path verdict only fires when the requirement and
                // policy sets are empty, so the network model would have
                // nothing to check — skip compiling it.
                if !fast_path {
                    // Stage 4: placement verification — compile the
                    // network model with the candidate installed and
                    // check operator policy and client requirements
                    // against it (summary-walked where the entry chains
                    // allow).
                    let mut world = self.modules.clone();
                    world.push(candidate.clone());

                    let t1 = Instant::now();
                    let mut model = match compile(&self.topology, &world, &self.registry) {
                        Ok(m) => m,
                        Err(e) => break 'search Err(DeployError::BadConfig(e)),
                    };
                    model.ingress_filtering = self.hardening.ingress_filtering;
                    let model_ns = t1.elapsed().as_nanos() as u64;
                    compile_ns += model_ns;
                    stage.placement += model_ns;

                    // Operator policy and client requirements must all hold.
                    let t2 = Instant::now();
                    let mut ok = true;
                    let mut why = String::new();
                    let mut failure: Option<VerifyError> = None;
                    for rule in &self.operator_policy {
                        match check_requirement_summarized(&model, rule, self.summaries_enabled) {
                            Ok((true, cs)) => check.absorb(cs),
                            Ok((false, cs)) => {
                                check.absorb(cs);
                                ok = false;
                                why = format!("operator policy violated: {rule}");
                                break;
                            }
                            Err(e) => {
                                failure = Some(e);
                                break;
                            }
                        }
                    }
                    if ok && failure.is_none() {
                        for rule in &request.requirements {
                            match check_requirement_summarized(&model, rule, self.summaries_enabled)
                            {
                                Ok((true, cs)) => check.absorb(cs),
                                Ok((false, cs)) => {
                                    check.absorb(cs);
                                    ok = false;
                                    why = format!("client requirement unsatisfied: {rule}");
                                    break;
                                }
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                    let req_ns = t2.elapsed().as_nanos() as u64;
                    check_ns += req_ns;
                    stage.placement += req_ns;
                    if let Some(e) = failure {
                        break 'search Err(DeployError::Verify(e));
                    }

                    if !ok {
                        reasons.push((platform_name, why));
                        continue;
                    }
                }

                // Commit.
                let id = self.next_id;
                self.next_id += 1;
                self.flow_rules.push(FlowRule {
                    platform: platform_name.clone(),
                    dst: addr,
                    module: id,
                });
                self.modules.push(candidate);
                break 'search Ok(DeployResponse {
                    module_id: id,
                    module_name: request.module_name,
                    public_addr: addr,
                    platform: platform_name,
                    sandboxed,
                    compile_ns,
                    check_ns,
                });
            }

            Err(DeployError::NoFeasiblePlacement { reasons })
        };
        UncachedOutcome {
            result,
            compile_ns,
            check_ns,
            analysis_ns,
            fastpath_hits,
            fastpath_fallbacks,
            lint_rejected: false,
            lint_cache_hit,
            check,
            stage,
        }
    }

    /// Installs a request whose verdict was already established — either
    /// by a `deploy_batch` shard against an equivalent snapshot, or by a
    /// verdict-cache hit: allocates a fresh address, materializes the
    /// configuration, and commits without re-running the symbolic checks.
    /// The caller must have established that `platform_name` still has
    /// room.
    fn commit_unchecked(
        &mut self,
        client_id: &str,
        account: &ClientAccount,
        request: ClientRequest,
        platform_name: &str,
        sandboxed: bool,
    ) -> Result<DeployResponse, DeployError> {
        let platform = match self.topology.index_of(platform_name) {
            Some(p) => p,
            None => {
                let err = DeployError::NoFeasiblePlacement {
                    reasons: vec![(platform_name.to_string(), "unknown platform".to_string())],
                };
                self.note_placement_rejects(&err);
                return Err(err);
            }
        };
        let addr = match self.allocate_addr(platform) {
            Some(a) => a,
            None => {
                let err = DeployError::NoFeasiblePlacement {
                    reasons: vec![(platform_name.to_string(), "not a platform".to_string())],
                };
                self.note_placement_rejects(&err);
                return Err(err);
            }
        };
        let raw_cfg = Controller::materialize_config(&request.config, addr);
        let run_cfg = if sandboxed {
            wrap_with_enforcer(&raw_cfg, addr, &account.registered)
        } else {
            raw_cfg.into_owned()
        };
        let id = self.next_id;
        self.next_id += 1;
        self.flow_rules.push(FlowRule {
            platform: platform_name.to_string(),
            dst: addr,
            module: id,
        });
        self.modules.push(InstalledModule {
            id,
            name: request.module_name.clone(),
            platform,
            addr,
            config: run_cfg,
            sandboxed,
            owner: client_id.to_string(),
        });
        self.stats.accepted += 1;
        if let Some(m) = &self.metrics {
            m.accepted.inc();
        }
        Ok(DeployResponse {
            module_id: id,
            module_name: request.module_name,
            public_addr: addr,
            platform: platform_name.to_string(),
            sandboxed,
            compile_ns: 0,
            check_ns: 0,
        })
    }

    /// Commits a deployment that a shard already verified against an
    /// equivalent snapshot (same topology, same modules, an address from
    /// the same pool). Only `deploy_batch` may call this, and only when no
    /// conflicting commit landed in between.
    pub(crate) fn commit_verified(
        &mut self,
        client_id: &str,
        request: ClientRequest,
        platform_name: &str,
        sandboxed: bool,
    ) -> Result<DeployResponse, DeployError> {
        // No `requests` bump here: the shard that verified this proposal
        // already counted the request, and its statistics are folded into
        // this controller's by `fold_shard_stats` — counting again would
        // make batch deployments report more requests than they served.
        let account = self
            .clients
            .get(client_id)
            .cloned()
            .ok_or_else(|| DeployError::UnknownClient(client_id.to_string()))?;
        self.commit_unchecked(client_id, &account, request, platform_name, sandboxed)
    }

    /// A verification-only copy of this controller: same topology, policy,
    /// accounts, installed modules, and hardening — with independent
    /// statistics and allocators, and the *shared* verdict cache (built by
    /// direct field access so construction never bumps the cache epoch).
    pub(crate) fn verification_clone(&self) -> Controller {
        Controller {
            topology: self.topology.clone(),
            registry: Registry::standard(),
            operator_policy: self.operator_policy.clone(),
            clients: self.clients.clone(),
            modules: self.modules.clone(),
            flow_rules: Vec::new(),
            next_id: self
                .modules
                .iter()
                .map(|m| m.id + 1)
                .max()
                .unwrap_or(self.next_id),
            addr_cursor: HashMap::new(),
            hardening: self.hardening,
            analysis_enabled: self.analysis_enabled,
            summaries_enabled: self.summaries_enabled,
            verdicts: Arc::clone(&self.verdicts),
            summaries: Arc::clone(&self.summaries),
            models: Arc::clone(&self.models),
            lint_memo: Arc::clone(&self.lint_memo),
            placement: Arc::clone(&self.placement),
            stats: ControllerStats::default(),
            metrics: None,
        }
    }

    /// Folds a verification shard's statistics into this controller's.
    ///
    /// The destructuring is deliberately exhaustive (no `..`): adding a
    /// field to [`ControllerStats`] without deciding its folding policy
    /// is a compile error here, not a silently lost statistic — exactly
    /// the bug this replaces, where `deploy_batch` folded three fields
    /// and dropped the rest.
    pub(crate) fn fold_shard_stats(&mut self, shard: ControllerStats) {
        let ControllerStats {
            requests,
            // A shard counts a proposal it verified as `accepted`, but
            // acceptance is only real once the serial commit phase lands
            // it (or re-verifies it on conflict) — the live controller
            // counts it there, so the shard's figure is dropped.
            accepted: _,
            rejected,
            compile_ns,
            check_ns,
            cache_hits,
            cache_misses,
            cache_invalidations,
            check_ns_saved,
            fastpath_hits,
            fastpath_fallbacks,
            lint_rejects,
            lint_cache_hits,
            analysis_ns,
            hop_cap_bailouts,
            visit_cap_bailouts,
            summary_cache_hits,
            summary_cache_misses,
            summary_chain_nodes,
            // Shards never bump the shared caches' epochs (invalidation
            // requires `&mut` access to the live controller), so a
            // shard's figure is always zero; folding it keeps the
            // destructure honest.
            summary_invalidations,
            stage_lint_ns,
            stage_fastpath_ns,
            stage_symbolic_ns,
            stage_placement_ns,
            placement_rejects,
        } = shard;
        self.stats.requests += requests;
        self.stats.rejected += rejected;
        self.stats.compile_ns += compile_ns;
        self.stats.check_ns += check_ns;
        self.stats.cache_hits += cache_hits;
        self.stats.cache_misses += cache_misses;
        self.stats.cache_invalidations += cache_invalidations;
        self.stats.check_ns_saved += check_ns_saved;
        self.stats.fastpath_hits += fastpath_hits;
        self.stats.fastpath_fallbacks += fastpath_fallbacks;
        self.stats.lint_rejects += lint_rejects;
        self.stats.lint_cache_hits += lint_cache_hits;
        self.stats.analysis_ns += analysis_ns;
        self.stats.hop_cap_bailouts += hop_cap_bailouts;
        self.stats.visit_cap_bailouts += visit_cap_bailouts;
        self.stats.summary_cache_hits += summary_cache_hits;
        self.stats.summary_cache_misses += summary_cache_misses;
        self.stats.summary_chain_nodes += summary_chain_nodes;
        self.stats.summary_invalidations += summary_invalidations;
        self.stats.stage_lint_ns += stage_lint_ns;
        self.stats.stage_fastpath_ns += stage_fastpath_ns;
        self.stats.stage_symbolic_ns += stage_symbolic_ns;
        self.stats.stage_placement_ns += stage_placement_ns;
        // Shards have no metrics attached, so their per-reason label
        // split is not recoverable here — the total still folds.
        self.stats.placement_rejects += placement_rejects;
        if let Some(m) = &self.metrics {
            m.requests.add(requests);
            m.rejected.add(rejected);
            m.compile_ns_total.add(compile_ns);
            m.check_ns_total.add(check_ns);
            m.cache_hits.add(cache_hits);
            m.cache_misses.add(cache_misses);
            m.cache_invalidations.add(cache_invalidations);
            m.check_ns_saved.add(check_ns_saved);
            m.fastpath_hits.add(fastpath_hits);
            m.fastpath_fallbacks.add(fastpath_fallbacks);
            m.lint_rejects.add(lint_rejects);
            m.lint_cache_hits.add(lint_cache_hits);
            m.analysis_ns_total.add(analysis_ns);
            m.symbolic_bailouts.with("hop_cap").add(hop_cap_bailouts);
            m.symbolic_bailouts
                .with("visit_cap")
                .add(visit_cap_bailouts);
            m.summary_cache_hits.add(summary_cache_hits);
            m.summary_cache_misses.add(summary_cache_misses);
            m.summary_chain_nodes.add(summary_chain_nodes);
            m.summary_invalidations.add(summary_invalidations);
        }
    }

    /// Stops a module and removes its flow rules (§4.3 `kill`).
    ///
    /// Removing a module changes the installed topology, so all cached
    /// verdicts are invalidated: a placement that was infeasible
    /// ("platform full") or a requirement that failed against the old
    /// module set may now succeed.
    pub fn kill(&mut self, id: ModuleId) -> Result<(), DeployError> {
        let before = self.modules.len();
        self.modules.retain(|m| m.id != id);
        if self.modules.len() == before {
            return Err(DeployError::NoSuchModule(id));
        }
        self.flow_rules.retain(|r| r.module != id);
        self.invalidate_verdicts();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::StockModule;

    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;

    fn controller() -> Controller {
        let mut c = Controller::new(Topology::figure3());
        c.register_client(
            "mobile-7",
            RequesterClass::Client,
            vec![Ipv4Addr::new(172, 16, 15, 133)],
        );
        c.register_client(
            "cdn-corp",
            RequesterClass::ThirdParty,
            vec![Ipv4Addr::new(198, 51, 100, 1)],
        );
        c
    }

    #[test]
    fn unifying_example_deploys_on_platform3() {
        // §4.5: "only Platform 3 applies, since Platforms 1 and 2 are not
        // reachable from the outside."
        let mut c = controller();
        let req = ClientRequest::parse(FIG4).unwrap();
        let resp = c.deploy("mobile-7", req).unwrap();
        assert_eq!(resp.platform, "platform3");
        assert!(!resp.sandboxed);
        assert_eq!(c.modules().len(), 1);
        assert_eq!(c.flow_rules().len(), 1);
        assert_eq!(c.flow_rules()[0].dst, resp.public_addr);
    }

    #[test]
    fn unknown_client_rejected() {
        let mut c = controller();
        let req = ClientRequest::parse(FIG4).unwrap();
        assert!(matches!(
            c.deploy("stranger", req),
            Err(DeployError::UnknownClient(_))
        ));
    }

    #[test]
    fn spoofing_module_rejected() {
        let mut c = controller();
        let req = ClientRequest::parse(
            "module evil:\nFromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();\n\
             reach from internet -> client",
        )
        .unwrap();
        assert!(matches!(
            c.deploy("cdn-corp", req),
            Err(DeployError::SecurityReject(_))
        ));
        assert_eq!(c.modules().len(), 0);
    }

    #[test]
    fn x86_stock_is_sandboxed() {
        let mut c = controller();
        let req = ClientRequest::parse("stock vm: x86-vm").unwrap();
        let resp = c.deploy("cdn-corp", req).unwrap();
        assert!(resp.sandboxed);
        let m = &c.modules()[0];
        assert!(!m.config.elements_of_class("ChangeEnforcer").is_empty());
    }

    #[test]
    fn unsatisfiable_requirement_finds_no_placement() {
        let mut c = controller();
        // Require TCP delivery *through* a module that filters it out.
        let req = ClientRequest::parse(
            "module strict:\nFromNetfront() -> IPFilter(allow udp dst port 9) \
             -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> d :: ToNetfront();\n\
             reach from internet tcp -> strict:d:0 tcp -> client",
        )
        .unwrap();
        assert!(matches!(
            c.deploy("mobile-7", req),
            Err(DeployError::NoFeasiblePlacement { .. })
        ));
    }

    #[test]
    fn kill_removes_module_and_rules() {
        let mut c = controller();
        let resp = c
            .deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .unwrap();
        c.kill(resp.module_id).unwrap();
        assert!(c.modules().is_empty());
        assert!(c.flow_rules().is_empty());
        assert!(matches!(
            c.kill(resp.module_id),
            Err(DeployError::NoSuchModule(_))
        ));
    }

    #[test]
    fn operator_policy_is_enforced() {
        let mut c = controller();
        // An absurd operator rule nothing can satisfy: all traffic to
        // clients must arrive as ICMP from the batcher module, which does
        // not exist — any deployment that lets traffic reach clients in
        // another way is fine; this rule itself fails verification, so
        // every placement is refused.
        c.add_operator_policy(
            Requirement::parse("reach from internet icmp src port 1 -> client").unwrap(),
        );
        let req = ClientRequest::parse(FIG4).unwrap();
        assert!(matches!(
            c.deploy("mobile-7", req),
            Err(DeployError::NoFeasiblePlacement { .. })
        ));
    }

    #[test]
    fn stock_dns_deploys_unsandboxed() {
        let mut c = controller();
        let req = ClientRequest::parse("stock dns: geo-dns").unwrap();
        let resp = c.deploy("cdn-corp", req).unwrap();
        assert!(!resp.sandboxed);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = controller();
        let _ = c.deploy("mobile-7", ClientRequest::parse(FIG4).unwrap());
        assert_eq!(c.stats().requests, 1);
        assert_eq!(c.stats().accepted, 1);
        assert!(c.stats().compile_ns > 0);
        assert!(c.stats().check_ns > 0);
        // Pipeline stage timings: FIG4 carries requirements, so the fast
        // path is ineligible and the symbolic + placement stages run.
        assert!(c.stats().stage_lint_ns > 0);
        assert_eq!(c.stats().stage_fastpath_ns, 0);
        assert!(c.stats().stage_symbolic_ns > 0);
        assert!(c.stats().stage_placement_ns > 0);
        // A requirement-free stock request rides the fast path instead.
        let _ = c.deploy(
            "mobile-7",
            ClientRequest::parse("stock dns: geo-dns").unwrap(),
        );
        assert!(c.stats().stage_fastpath_ns > 0);
    }

    #[test]
    fn summary_cache_warms_across_requests() {
        let mut c = controller();
        c.deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .unwrap();
        let s1 = c.stats();
        assert!(
            s1.summary_cache_misses > 0,
            "first check computes summaries"
        );
        assert!(s1.summary_chain_nodes > 0, "chain elements were replayed");
        assert!(c.cached_summaries() > 0);
        // A renamed module with the same chain is a verdict-cache miss
        // (the module name is part of the verdict key) but a summary hit.
        let mut req2 = ClientRequest::parse(FIG4).unwrap();
        req2.module_name = "batcher2".to_string();
        c.deploy("mobile-7", req2).unwrap();
        let s2 = c.stats();
        assert!(s2.summary_cache_hits > s1.summary_cache_hits);
        assert_eq!(s2.summary_cache_misses, s1.summary_cache_misses);
    }

    #[test]
    fn invalidation_flushes_summary_cache() {
        let mut c = controller();
        let resp = c
            .deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .unwrap();
        assert!(c.cached_summaries() > 0);
        // `kill` bumps the shared epoch: verdicts and summaries flush
        // together.
        c.kill(resp.module_id).unwrap();
        assert_eq!(c.cached_summaries(), 0);
        assert_eq!(c.cached_verdicts(), 0);
        assert!(c.stats().summary_invalidations > 0);

        // The policy and hardening paths flush too.
        c.deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .unwrap();
        assert!(c.cached_summaries() > 0);
        c.add_operator_policy(Requirement::parse("reach from client -> internet").unwrap());
        assert_eq!(c.cached_summaries(), 0);
    }

    #[test]
    fn summaries_toggle_agrees_with_whole_graph_oracle() {
        let accept = ClientRequest::parse(FIG4).unwrap();
        let reject = ClientRequest::parse(
            "module evil:\nFromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();\n\
             reach from internet -> client",
        )
        .unwrap();
        let mut with = controller();
        let mut without = controller();
        without.set_summaries_enabled(false);
        assert!(!without.summaries_enabled());
        for req in [accept, reject] {
            let a = with.deploy("mobile-7", req.clone());
            let b = without.deploy("mobile-7", req);
            assert_eq!(a.is_ok(), b.is_ok(), "compositional verdict diverged");
        }
        assert_eq!(
            without.stats().summary_chain_nodes,
            0,
            "oracle mode replays nothing"
        );
        assert!(with.stats().summary_chain_nodes > 0);
    }

    #[test]
    fn second_module_gets_distinct_address() {
        let mut c = controller();
        let r1 = c
            .deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .unwrap();
        let mut req2 = ClientRequest::parse(FIG4).unwrap();
        req2.module_name = "batcher2".to_string();
        let r2 = c.deploy("mobile-7", req2).unwrap();
        assert_ne!(r1.public_addr, r2.public_addr);
        assert_eq!(c.modules().len(), 2);
    }

    #[test]
    fn self_placeholder_bound_at_deploy() {
        let mut c = controller();
        // A tunnel endpoint cannot know its address in advance: `$SELF`
        // is bound by the controller per candidate platform.
        let req = ClientRequest::parse(
            "module tun:\n\
             FromNetfront(0) -> UDPTunnelEncap($SELF, 7000, 172.16.15.133, 7001) \
             -> ToNetfront(1);\n\
             FromNetfront(1) -> UDPTunnelDecap() -> ToNetfront(0);",
        )
        .unwrap();
        let resp = c.deploy("mobile-7", req).unwrap();
        // The installed configuration carries the concrete address.
        let m = &c.modules()[0];
        let encap = m
            .config
            .elements
            .iter()
            .find(|e| e.class == "UDPTunnelEncap")
            .unwrap();
        assert_eq!(encap.args[0], resp.public_addr.to_string());
        assert!(!resp.sandboxed, "client tunnels verify cleanly");
    }

    #[test]
    fn udp_ban_rejects_third_party_dns() {
        use crate::hardening::HardeningPolicy;
        let mut c = controller();
        c.set_hardening(HardeningPolicy {
            ingress_filtering: true,
            ban_udp_reflection: true,
        });
        // Without the ban this deploys (Table 1: DNS is Safe); with it,
        // the amplification vector is refused for third parties…
        let req = ClientRequest::parse("stock dns: geo-dns").unwrap();
        assert!(matches!(
            c.deploy("cdn-corp", req),
            Err(DeployError::SecurityReject(_))
        ));
        // …while the operator's own clients remain exempt.
        let req = ClientRequest::parse("stock dns: geo-dns").unwrap();
        assert!(c.deploy("mobile-7", req).is_ok());
    }

    #[test]
    fn stock_reverse_proxy_for_third_party() {
        let mut c = controller();
        let req = ClientRequest::parse(
            "stock edge: reverse-proxy\n\nreach from internet tcp dst port 80 -> edge",
        )
        .unwrap();
        let resp = c.deploy("cdn-corp", req).unwrap();
        assert!(!resp.sandboxed, "turn-around proxies verify cleanly");
        let _ = StockModule::ReverseHttpProxy;
    }
}
