//! Property-based tests for the Click substrate.

use innet_click::{ClickConfig, Registry, Router};
use innet_packet::{PacketBuilder, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Strategy: a random well-formed configuration built through the builder
/// API (linear pipelines with a classifier branch).
fn arb_config() -> impl Strategy<Value = ClickConfig> {
    let stage = prop_oneof![
        Just(("Counter", vec![])),
        Just(("DecIPTTL", vec![])),
        Just(("CheckIPHeader", vec![])),
        Just(("IPFilter", vec!["allow udp".to_string()])),
        Just((
            "IPFilter",
            vec!["allow tcp".to_string(), "allow udp".to_string()]
        )),
        Just(("FlowMeter", vec![])),
    ];
    proptest::collection::vec(stage, 0..6).prop_map(|stages| {
        let mut cfg = ClickConfig::new();
        cfg.add_element("src", "FromNetfront", &[]);
        cfg.add_element("snk", "ToNetfront", &[]);
        let mut prev = "src".to_string();
        for (class, args) in stages {
            let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            let name = cfg.add_anon(class, &refs);
            cfg.connect(&prev, 0, &name, 0);
            prev = name;
        }
        cfg.connect(&prev, 0, "snk", 0);
        cfg
    })
}

proptest! {
    /// Any builder-produced configuration serializes to text that parses
    /// back to the same declarations and connections.
    #[test]
    fn config_text_roundtrip(cfg in arb_config()) {
        let text = cfg.to_text();
        let reparsed = ClickConfig::parse(&text).unwrap();
        prop_assert_eq!(&cfg.elements, &reparsed.elements);
        prop_assert_eq!(&cfg.connections, &reparsed.connections);
    }

    /// Any builder-produced configuration instantiates and never panics,
    /// loops, or duplicates packets when fed traffic: every input packet is
    /// either transmitted once or dropped.
    #[test]
    fn pipelines_conserve_packets(
        cfg in arb_config(),
        n_packets in 1usize..50,
        is_tcp in any::<bool>(),
    ) {
        let mut router = Router::from_config(&cfg, &Registry::standard()).unwrap();
        for i in 0..n_packets {
            let b = if is_tcp {
                PacketBuilder::tcp().flags(TcpFlags::SYN)
            } else {
                PacketBuilder::udp()
            };
            let pkt = b
                .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i as u16)
                .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
                .ttl(64)
                .build();
            router.deliver(0, pkt, i as u64 * 1000).unwrap();
        }
        let tx = router.take_tx();
        let dropped = router.stats.dropped_unconnected;
        prop_assert!(tx.len() <= n_packets);
        prop_assert_eq!(router.stats.delivered, n_packets as u64);
        // Conservation: transmitted + filter-dropped = delivered. Filters
        // absorb internally, so we only bound from above here plus check
        // unconnected drops stayed zero (everything is wired).
        prop_assert_eq!(dropped, 0);
    }

    /// The NAT is bijective: N distinct outbound flows get N distinct
    /// external ports, and each reply maps back to exactly its origin.
    #[test]
    fn nat_bijective(sports in proptest::collection::hash_set(1u16.., 1..40)) {
        use innet_click::elements::IpNat;
        use innet_click::{ConfigArgs, Context, Element, VecSink};

        let public = Ipv4Addr::new(203, 0, 113, 1);
        let mut nat =
            IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1")).unwrap();
        let mut sink = VecSink::new();
        let server = Ipv4Addr::new(8, 8, 8, 8);
        let sports: Vec<u16> = sports.into_iter().collect();
        for &sp in &sports {
            let pkt = PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 1), sp)
                .dst(server, 53)
                .build();
            nat.push(0, pkt, &Context::default(), &mut sink);
        }
        let ext_ports: Vec<u16> = sink
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        let mut uniq = ext_ports.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), sports.len(), "distinct flows, distinct ports");

        // Replies come back to the right internal port.
        for (i, &ext) in ext_ports.iter().enumerate() {
            let mut sink2 = VecSink::new();
            let reply = PacketBuilder::udp().src(server, 53).dst(public, ext).build();
            nat.push(1, reply, &Context::default(), &mut sink2);
            let back = sink2.only(1).unwrap();
            prop_assert_eq!(back.udp().unwrap().dst_port(), sports[i]);
        }
    }

    /// The configuration parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = ClickConfig::parse(&text);
    }

    /// Parsing the serialization of any parse is a fixed point.
    #[test]
    fn parse_serialize_fixed_point(cfg in arb_config()) {
        let once = ClickConfig::parse(&cfg.to_text()).unwrap();
        let twice = ClickConfig::parse(&once.to_text()).unwrap();
        prop_assert_eq!(once.elements, twice.elements);
        prop_assert_eq!(once.connections, twice.connections);
    }

    /// IPClassifier and IPFilter agree: a packet passes
    /// `IPFilter(allow EXPR)` iff it matches output 0 of
    /// `IPClassifier(EXPR, -)`.
    #[test]
    fn filter_classifier_agree(
        dport in any::<u16>(),
        proto_tcp in any::<bool>(),
        rule in prop_oneof![
            Just("udp"),
            Just("tcp"),
            Just("udp dst port 1500"),
            Just("dst portrange 1000-2000"),
            Just("dst net 10.0.0.0/8"),
        ],
    ) {
        use innet_click::elements::{IPClassifier, IPFilter};
        use innet_click::{ConfigArgs, Context, Element, VecSink};

        let pkt = if proto_tcp {
            PacketBuilder::tcp().dst(Ipv4Addr::new(10, 1, 1, 1), dport).build()
        } else {
            PacketBuilder::udp().dst(Ipv4Addr::new(10, 1, 1, 1), dport).build()
        };

        let mut f = IPFilter::from_args(&ConfigArgs::parse(
            "IPFilter",
            &format!("allow {rule}"),
        ))
        .unwrap();
        let mut c = IPClassifier::from_args(&ConfigArgs::parse(
            "IPClassifier",
            &format!("{rule}, -"),
        ))
        .unwrap();

        let mut sf = VecSink::new();
        let mut sc = VecSink::new();
        f.push(0, pkt.clone(), &Context::default(), &mut sf);
        c.push(0, pkt, &Context::default(), &mut sc);

        let filter_passed = !sf.pushed.is_empty();
        let classifier_port0 = sc.pushed.first().map(|(p, _)| *p) == Some(0);
        prop_assert_eq!(filter_passed, classifier_port0);
    }
}
