//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: value-generating strategies (no shrinking), the `proptest!`
//! macro, `prop_assert*` macros, `prop_oneof!`, `collection::{vec,
//! hash_set}`, `sample::{select, subsequence}`, simple string patterns,
//! and `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test seed so failures reproduce; set the failing
//! case number from the panic message to debug.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failure reports the generated inputs via
//!   `Debug`-free messages only; tests should print what they need.
//! - **String "regex" strategies** only understand the `\PC{lo,hi}`
//!   garbage-string form the workspace uses (arbitrary printable
//!   characters, length in `lo..=hi`); anything else falls back to
//!   arbitrary printable ASCII.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy combinators and core trait.
pub mod strategy {
    use super::*;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no shrinking tree: a strategy just
    /// produces a value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Default for Union<T> {
        fn default() -> Self {
            Union::new()
        }
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        pub fn new() -> Union<T> {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds an alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Union<T> {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// The workspace uses string literals like `"\PC{0,80}"` as
    /// garbage-string strategies; see the crate docs for the supported
    /// subset.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi) = parse_repeat_suffix(self).unwrap_or((0, 32));
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| random_printable(rng)).collect()
        }
    }

    fn parse_repeat_suffix(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let body = pattern.get(open + 1..pattern.len().checked_sub(1)?)?;
        if !pattern.ends_with('}') {
            return None;
        }
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn random_printable(rng: &mut StdRng) -> char {
        // Mostly ASCII printable, occasionally a multi-byte char, so the
        // parsers see non-trivial UTF-8 without control characters.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0xA1u32..0x24F)).unwrap_or('¶')
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }

        pub(crate) fn clamp_hi(&self, hi: usize) -> SizeRange {
            SizeRange {
                lo: self.lo.min(hi),
                hi: self.hi.min(hi),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet`s of values from `element`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Collisions shrink the set; give duplicates a bounded number
            // of retries so tiny domains still terminate.
            let mut budget = 16 * n + 16;
            while out.len() < n && budget > 0 {
                out.insert(self.element.generate(rng));
                budget -= 1;
            }
            out
        }
    }

    /// A hash set of `size` distinct elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::collection::SizeRange;
    use super::strategy::Strategy;
    use super::*;

    /// Strategy choosing one element of a vector.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// One uniformly chosen element of `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty vector");
        Select(values)
    }

    /// Strategy choosing an order-preserving subsequence.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let k = self.size.clamp_hi(self.values.len()).sample(rng);
            // Choose k distinct indices, then emit them in order.
            let mut picked = vec![false; self.values.len()];
            let mut chosen = 0usize;
            while chosen < k {
                let i = rng.gen_range(0..self.values.len());
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.values
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }

    /// An order-preserving subsequence of `values` with `size` elements.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number of cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property (default 256, like real proptest).
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic per-(test, case) seed (FNV-1a over the test name, mixed
/// with the case index).
#[doc(hidden)]
pub fn __seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Declares property tests. Each function body runs `cases` times with
/// freshly generated inputs; `prop_assert*` failures report the case
/// number and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (@run($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..(cfg.cases as u64) {
                    let seed = $crate::__seed_for(::std::stringify!($name), case);
                    let mut __rng = $crate::__new_rng(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {} (seed {:#x}):\n{}",
                            ::std::stringify!($name),
                            case,
                            seed,
                            msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(any::<u16>(), 2..5),
            set in crate::collection::hash_set(0u16.., 1..4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(!set.is_empty() && set.len() < 4);
        }

        #[test]
        fn subsequence_preserves_order(
            sub in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 1..5),
        ) {
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sub, &sorted);
        }

        #[test]
        fn string_pattern_lengths(s in "\\PC{0,10}") {
            prop_assert!(s.chars().count() <= 10);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_respected(_x in any::<bool>()) {
            prop_assert!(true);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(crate::__seed_for("t", 3), crate::__seed_for("t", 3));
        assert_ne!(crate::__seed_for("t", 3), crate::__seed_for("t", 4));
        assert_ne!(crate::__seed_for("a", 0), crate::__seed_for("b", 0));
    }
}
