//! A free-list packet-buffer pool.
//!
//! The batch path copies every source packet once per round (sources are
//! reused across rounds) and drops every transmitted packet after the
//! stats are read. Without a pool that is one allocation and one free per
//! packet per round; with it, buffers cycle between the working set and
//! the free list and the allocator drops out of the steady state.
//!
//! The pool is deliberately not thread-safe: the compiled runners keep
//! one pool per worker thread, so buffers never cross threads and no
//! locking is needed. The free list is bounded — recycling past the cap
//! simply frees the buffer — so a burst of jumbo frames cannot pin
//! unbounded memory.

use bytes::BytesMut;

use crate::Packet;

/// Default bound on the number of pooled free buffers.
pub const DEFAULT_POOL_BUFFERS: usize = 4096;

/// A bounded free-list of packet buffers (see the module docs).
#[derive(Debug)]
pub struct PacketPool {
    free: Vec<BytesMut>,
    cap: usize,
    allocations: u64,
    reuses: u64,
}

impl PacketPool {
    /// An empty pool holding at most [`DEFAULT_POOL_BUFFERS`] free buffers.
    pub fn new() -> PacketPool {
        PacketPool::with_capacity(DEFAULT_POOL_BUFFERS)
    }

    /// An empty pool holding at most `cap` free buffers.
    pub fn with_capacity(cap: usize) -> PacketPool {
        PacketPool {
            free: Vec::new(),
            cap: cap.max(1),
            allocations: 0,
            reuses: 0,
        }
    }

    /// A copy of `src` (bytes and metadata) backed by a pooled buffer
    /// when one is free, or a fresh allocation otherwise.
    pub fn copy_of(&mut self, src: &Packet) -> Packet {
        let mut buf = match self.free.pop() {
            Some(mut b) => {
                self.reuses += 1;
                b.clear();
                b
            }
            None => {
                self.allocations += 1;
                BytesMut::with_capacity(src.len())
            }
        };
        buf.extend_from_slice(src.bytes());
        let mut pkt = Packet::from_buf(buf);
        pkt.meta = src.meta.clone();
        pkt
    }

    /// Returns a packet's buffer to the free list (or frees it when the
    /// pool is full).
    pub fn recycle(&mut self, pkt: Packet) {
        if self.free.len() < self.cap {
            self.free.push(pkt.into_buf());
        }
    }

    /// Number of buffers currently on the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Buffers handed out that needed a fresh allocation.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Buffers handed out from the free list.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

impl Default for PacketPool {
    fn default() -> Self {
        PacketPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;
    use std::net::Ipv4Addr;

    fn sample() -> Packet {
        let mut p = PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 4242)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 53)
            .payload(b"pool")
            .build();
        p.meta.ingress = 3;
        p
    }

    #[test]
    fn copy_preserves_bytes_and_meta() {
        let src = sample();
        let mut pool = PacketPool::new();
        let copy = pool.copy_of(&src);
        assert_eq!(copy.bytes(), src.bytes());
        assert_eq!(copy.meta, src.meta);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let src = sample();
        let mut pool = PacketPool::new();
        let copy = pool.copy_of(&src);
        assert_eq!(pool.allocations(), 1);
        pool.recycle(copy);
        assert_eq!(pool.pooled(), 1);
        let again = pool.copy_of(&src);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(again.bytes(), src.bytes());
    }

    #[test]
    fn reuse_clears_stale_contents() {
        let mut pool = PacketPool::new();
        let big = Packet::from_bytes(vec![0xAA; 512]);
        let copy = pool.copy_of(&big);
        pool.recycle(copy);
        let small = Packet::from_bytes(vec![0x55; 16]);
        let reused = pool.copy_of(&small);
        assert_eq!(reused.len(), 16);
        assert_eq!(reused.bytes(), small.bytes());
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = PacketPool::with_capacity(2);
        for _ in 0..5 {
            let p = Packet::from_bytes(vec![0u8; 64]);
            pool.recycle(p);
        }
        assert_eq!(pool.pooled(), 2);
    }
}
