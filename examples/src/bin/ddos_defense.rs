//! DoS protection (§8): a web server under Slowloris attack instantiates
//! reverse-proxy stock modules on In-Net platforms and diverts traffic to
//! them by geolocation.
//!
//! Run with: `cargo run -p innet-examples --bin ddos_defense`

use innet::experiments::fig15_slowloris::{slowloris, SlowlorisParams};
use innet::prelude::*;

fn main() {
    // The content provider is an untrusted third party; its origin server
    // address is registered with the operator.
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "webshop-inc",
        RequesterClass::ThirdParty,
        vec!["198.51.100.1".parse().unwrap()],
    );

    // Under attack, the provider asks for reverse proxies. The stock
    // module verifies cleanly (responses go back to their requesters), so
    // no sandbox is needed.
    for i in 0..3 {
        let req = ClientRequest::parse(&format!(
            "stock edge{i}: reverse-proxy\n\nreach from internet tcp dst port 80 -> edge{i}"
        ))
        .unwrap();
        let resp = ctl.deploy("webshop-inc", req).expect("deployable");
        println!(
            "proxy edge{i} on {} at {} (sandboxed: {})",
            resp.platform, resp.public_addr, resp.sandboxed
        );
    }
    println!("flow rules installed: {}", ctl.flow_rules().len());

    // The timeline of Figure 15: valid requests per second, with and
    // without the In-Net defense.
    let samples = slowloris(&SlowlorisParams::default());
    println!(
        "\n{:>6}  {:>14}  {:>12}",
        "t (s)", "single server", "with In-Net"
    );
    for s in samples.iter().step_by(60) {
        println!(
            "{:>6}  {:>14.0}  {:>12.0}",
            s.t_s, s.single_server_rps, s.with_innet_rps
        );
    }

    let collapse = samples
        .iter()
        .filter(|s| (400..600).contains(&s.t_s))
        .map(|s| s.single_server_rps)
        .sum::<f64>()
        / 200.0;
    let defended = samples
        .iter()
        .filter(|s| (400..600).contains(&s.t_s))
        .map(|s| s.with_innet_rps)
        .sum::<f64>()
        / 200.0;
    println!(
        "\nmid-attack service rate: {collapse:.0} req/s alone vs {defended:.0} req/s \
         with In-Net proxies"
    );
}
