//! Figure 12: aggregate throughput of 1–100 middlebox VMs of four kinds
//! (NAT, IP router, firewall, flow meter) sharing one core.
//!
//! Measured natively: `n` router instances round-robined on one thread
//! (time-sliced exactly like n ClickOS VMs pinned to one vCPU). The
//! paper's point is that aggregate throughput stays high and flat
//! regardless of middlebox count and type.

use innet_packet::{Packet, PacketBuilder};
use innet_platform::{middlebox_config, NativeRunner, RunnerConfig};
use std::net::Ipv4Addr;
use std::time::Instant;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct MiddleboxPoint {
    /// Number of VMs sharing the core.
    pub vms: usize,
    /// Aggregate input rate, Mpps.
    pub mpps: f64,
    /// Aggregate throughput in Gbit/s at the test frame size.
    pub gbps: f64,
}

fn traffic(kind: &str, frame: usize) -> Vec<Packet> {
    (0..256)
        .map(|i| {
            let b = PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 2), 5000 + i as u16)
                .dst(Ipv4Addr::new(93, 184, 216, 34), 80)
                .ttl(64)
                .pad_to(frame);
            let _ = kind;
            b.build()
        })
        .collect()
}

/// Measures aggregate throughput for `kind` at each VM count on the
/// interpreted engine.
pub fn middlebox_sweep(kind: &str, vm_counts: &[usize], frame: usize) -> Vec<MiddleboxPoint> {
    middlebox_sweep_with(kind, vm_counts, frame, false)
}

/// Like [`middlebox_sweep`], with an explicit engine choice: `compiled`
/// runs each VM's configuration as a lowered flat plan
/// ([`RunnerConfig::compiled`]). The bench records both series so the
/// interpreted-vs-compiled trajectory is part of the committed snapshot.
pub fn middlebox_sweep_with(
    kind: &str,
    vm_counts: &[usize],
    frame: usize,
    compiled: bool,
) -> Vec<MiddleboxPoint> {
    vm_counts
        .iter()
        .map(|&n| {
            let mut runners: Vec<NativeRunner> = (0..n)
                .map(|_| {
                    let cfg = middlebox_config(kind).expect("known middlebox kind");
                    RunnerConfig::new()
                        .compiled(compiled)
                        .native(&cfg)
                        .expect("valid config")
                })
                .collect();
            let pkts = traffic(kind, frame);
            // Warm-up.
            for r in &mut runners {
                r.run(&pkts, 1);
            }
            // Round-robin the VMs on this one thread, like a vCPU
            // scheduler would, and time the aggregate.
            let rounds = (256 / n).max(4);
            let start = Instant::now();
            let mut packets = 0u64;
            for _ in 0..rounds {
                for r in &mut runners {
                    let s = r.run(&pkts, 1);
                    packets += s.packets;
                }
            }
            let elapsed = start.elapsed().as_nanos().max(1) as f64;
            let pps = packets as f64 / (elapsed / 1e9);
            MiddleboxPoint {
                vms: n,
                mpps: pps / 1e6,
                gbps: pps * frame as f64 * 8.0 / 1e9,
            }
        })
        .collect()
}

/// The four middlebox kinds of the figure.
pub const KINDS: [&str; 4] = ["nat", "iprouter", "firewall", "flowmeter"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_stays_flat_with_vm_count() {
        // The defining shape: total throughput does not collapse as VM
        // count grows (each VM does less, the sum stays put).
        let pts = middlebox_sweep("firewall", &[1, 16], 1472);
        let ratio = pts[1].mpps / pts[0].mpps;
        assert!(
            ratio > 0.5,
            "16 VMs retain most aggregate throughput: {ratio}"
        );
    }

    #[test]
    fn all_kinds_run() {
        for kind in KINDS {
            let pts = middlebox_sweep(kind, &[2], 512);
            assert!(pts[0].mpps > 0.0, "{kind}");
        }
    }

    #[test]
    fn all_kinds_run_compiled() {
        for kind in KINDS {
            let pts = middlebox_sweep_with(kind, &[2], 512, true);
            assert!(pts[0].mpps > 0.0, "{kind} (compiled)");
        }
    }
}
