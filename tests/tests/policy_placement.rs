//! The paper's §2.2 policy-compliance example:
//!
//! > "Consider the in-network cloud provider shown in Figure 3, whose
//! > policy dictates that all HTTP traffic follow the bottom path and be
//! > inspected by the HTTP middlebox. If a client's VM talks HTTP, it
//! > should be installed on Platform 2 so that that the traffic can be
//! > verified by the middlebox. Installing the client's VM on Platform 1
//! > would disobey the operator's policy."
//!
//! The controller must pick the policy-compliant platform even when a
//! non-compliant one comes first in iteration order.

use innet::prelude::*;
use innet::symnet::RequesterClass;
use innet::topology::{NodeKind, PlatformSpec};

/// A §2.2-shaped operator network: two directly reachable platforms, one
/// of them behind an HTTP optimizer.
///
/// ```text
/// internet ── border ──┬── platform1          (pool 192.0.2.0/24)
///                      ├── httpopt ── platform2  (pool 198.51.100.0/24)
///                      └── clients  (172.16.0.0/16)
/// ```
fn section22_topology() -> Topology {
    let mut t = Topology::new();
    let internet = t.add("internet", NodeKind::Internet).unwrap();
    let clients = t
        .add(
            "clients",
            NodeKind::ClientSubnet("172.16.0.0/16".parse().unwrap()),
        )
        .unwrap();
    let border = t
        .add(
            "border",
            NodeKind::Router(vec![
                ("192.0.2.0/24".parse().unwrap(), 1),
                ("198.51.100.0/24".parse().unwrap(), 2),
                ("172.16.0.0/16".parse().unwrap(), 3),
                (innet::packet::Cidr::ANY, 0),
            ]),
        )
        .unwrap();
    let http_opt = t
        .add(
            "HTTPOptimizer",
            NodeKind::Middlebox(
                ClickConfig::parse(
                    r#"
                    in :: FromNetfront(0);
                    c  :: IPClassifier(tcp src port 80 or tcp dst port 80, -);
                    opt :: SetTOS(46);
                    out :: ToNetfront(1);
                    rin :: FromNetfront(1);
                    rout :: ToNetfront(0);
                    in -> c; c[0] -> opt -> out; c[1] -> out;
                    rin -> rout;
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
    let p1 = t
        .add(
            "platform1",
            NodeKind::Platform(PlatformSpec {
                addr_pool: "192.0.2.0/24".parse().unwrap(),
                external: true,
                ..PlatformSpec::default()
            }),
        )
        .unwrap();
    let p2 = t
        .add(
            "platform2",
            NodeKind::Platform(PlatformSpec {
                addr_pool: "198.51.100.0/24".parse().unwrap(),
                external: true,
                ..PlatformSpec::default()
            }),
        )
        .unwrap();
    t.link_bidir(internet, 0, border, 0);
    t.link_bidir(border, 1, p1, 0);
    t.link_bidir(border, 2, http_opt, 0);
    t.link_bidir(http_opt, 1, p2, 0);
    t.link_bidir(border, 3, clients, 0);
    t
}

fn http_module_request() -> ClientRequest {
    // A module that receives web traffic and delivers it to the client —
    // "a client's VM [that] talks HTTP".
    ClientRequest::parse(
        r#"
        module webmod:
        FromNetfront()
          -> IPFilter(allow tcp src port 80)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> dst :: ToNetfront();

        reach from internet tcp src port 80
          -> webmod:dst:0
          -> client
        "#,
    )
    .unwrap()
}

#[test]
fn http_module_lands_on_platform2_under_policy() {
    let mut ctl = Controller::new(section22_topology());
    ctl.register_client(
        "websurfer",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    // The operator's policy: HTTP traffic reaching clients must have
    // passed the HTTP optimizer.
    ctl.add_operator_policy(
        Requirement::parse("reach from internet tcp src port 80 -> HTTPOptimizer -> client")
            .unwrap(),
    );

    let resp = ctl.deploy("websurfer", http_module_request()).unwrap();
    // Platform 1 is iterated first, is reachable, and satisfies the
    // *client's* requirement — but placing there leaves no HTTP path to
    // clients through the optimizer, so the operator policy fails and the
    // controller moves on: §2.2's conclusion.
    assert_eq!(resp.platform, "platform2");
}

#[test]
fn without_policy_platform1_wins() {
    let mut ctl = Controller::new(section22_topology());
    ctl.register_client(
        "websurfer",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    let resp = ctl.deploy("websurfer", http_module_request()).unwrap();
    assert_eq!(resp.platform, "platform1", "first feasible platform");
}

#[test]
fn non_http_module_unconstrained_by_http_policy() {
    let mut ctl = Controller::new(section22_topology());
    ctl.register_client(
        "websurfer",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    ctl.add_operator_policy(
        Requirement::parse("reach from internet tcp src port 80 -> HTTPOptimizer -> client")
            .unwrap(),
    );
    // Seed the network with a compliant web module so the operator policy
    // is satisfiable at all…
    ctl.deploy("websurfer", http_module_request()).unwrap();
    // …then a UDP-only module may land anywhere; platform1 is first.
    let udp = ClientRequest::parse(
        r#"
        module udpmod:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> dst :: ToNetfront();

        reach from internet udp -> udpmod:dst:0 -> client dst port 1500
        "#,
    )
    .unwrap();
    let resp = ctl.deploy("websurfer", udp).unwrap();
    assert_eq!(resp.platform, "platform1");
}
