//! Property-based tests for the packet layer.

use std::net::Ipv4Addr;

use innet_packet::{internet_checksum, Cidr, FlowKey, IpProto, Packet, PacketBuilder, TcpFlags};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    /// Any packet the builder emits decodes back to the fields it was
    /// built from, and carries a valid IP checksum.
    #[test]
    fn builder_decode_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        is_tcp in any::<bool>(),
    ) {
        let b = if is_tcp { PacketBuilder::tcp().flags(TcpFlags::SYN) } else { PacketBuilder::udp() };
        let pkt = b.src(src, sport).dst(dst, dport).ttl(ttl).payload(&payload).build();

        let ip = pkt.ipv4().unwrap();
        prop_assert_eq!(ip.src(), src);
        prop_assert_eq!(ip.dst(), dst);
        prop_assert_eq!(ip.ttl(), ttl);
        prop_assert!(ip.verify_checksum());

        let key = FlowKey::of(&pkt).unwrap();
        prop_assert_eq!(key.src_port, sport);
        prop_assert_eq!(key.dst_port, dport);
        prop_assert_eq!(key.proto, if is_tcp { IpProto::Tcp } else { IpProto::Udp });
        prop_assert_eq!(pkt.payload().unwrap(), &payload[..]);
    }

    /// The checksum update is a fixed point: updating twice equals once,
    /// and verification holds after any field mutation + update.
    #[test]
    fn checksum_update_fixed_point(
        src in arb_addr(),
        dst in arb_addr(),
        new_dst in arb_addr(),
    ) {
        let mut pkt = PacketBuilder::udp().src(src, 1).dst(dst, 2).build();
        {
            let mut ip = pkt.ipv4_mut().unwrap();
            ip.set_dst(new_dst);
            ip.update_checksum();
        }
        prop_assert!(pkt.ipv4().unwrap().verify_checksum());
        let before = pkt.bytes().to_vec();
        pkt.ipv4_mut().unwrap().update_checksum();
        prop_assert_eq!(pkt.bytes(), &before[..]);
    }

    /// Canonical flow tuples are direction-insensitive for all inputs.
    #[test]
    fn canonical_flow_symmetry(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let pkt = PacketBuilder::tcp().src(src, sport).dst(dst, dport).build();
        let k = FlowKey::of(&pkt).unwrap();
        prop_assert_eq!(k.canonical(), k.reversed().canonical());
    }

    /// CIDR parse/display round-trips and containment is consistent with
    /// the numeric range.
    #[test]
    fn cidr_roundtrip_and_range(addr in arb_addr(), len in 0u8..=32, probe in arb_addr()) {
        let c = Cidr::new(addr, len).unwrap();
        let reparsed: Cidr = c.to_string().parse().unwrap();
        prop_assert_eq!(c, reparsed);
        let inside = (c.first_u32()..=c.last_u32()).contains(&u32::from(probe));
        prop_assert_eq!(c.contains(probe), inside);
    }

    /// Raw-buffer packets never panic on header access, whatever the bytes.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let pkt = Packet::from_bytes(data);
        let _ = pkt.ether().map(|e| e.ethertype());
        let _ = pkt.ipv4().map(|ip| (ip.src(), ip.dst(), ip.proto(), ip.verify_checksum()));
        let _ = pkt.udp().map(|u| u.dst_port());
        let _ = pkt.tcp().map(|t| t.flags());
        let _ = pkt.icmp().map(|i| i.kind());
        let _ = pkt.payload();
        let _ = FlowKey::of(&pkt);
    }

    /// RFC 1071 invariant: appending the computed checksum to (even-length)
    /// data makes the whole buffer sum to zero.
    #[test]
    fn checksum_self_consistent(half in proptest::collection::vec(any::<u16>(), 1..32)) {
        let mut data: Vec<u8> = half.iter().flat_map(|w| w.to_be_bytes()).collect();
        let c = internet_checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
    }

    /// Differential test against the bit-at-a-time reference: arbitrary
    /// buffers, including odd lengths (tail padding).
    #[test]
    fn checksum_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(internet_checksum(&data), reference_checksum(&data));
    }

    /// Differential test on carry-heavy inputs: runs of 0xFF interleaved
    /// with arbitrary words force the multi-carry folding paths.
    #[test]
    fn checksum_matches_reference_carry_heavy(
        ff_run in 1usize..2048,
        words in proptest::collection::vec(any::<u16>(), 0..16),
        odd_tail in any::<bool>(),
    ) {
        let mut data = vec![0xFFu8; ff_run];
        for w in &words {
            data.extend_from_slice(&w.to_be_bytes());
        }
        if odd_tail {
            data.push(0xAB);
        }
        prop_assert_eq!(internet_checksum(&data), reference_checksum(&data));
    }
}

/// RFC 1071 computed the slow, obviously-correct way: each 16-bit word is
/// added with an immediate end-around carry, one word at a time. The
/// production implementation defers carry folding; this reference is the
/// differential oracle for it.
fn reference_checksum(data: &[u8]) -> u16 {
    let mut sum: u16 = 0;
    let mut add = |word: u16| {
        let (s, carried) = sum.overflowing_add(word);
        sum = s + u16::from(carried);
    };
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        add(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        add(u16::from_be_bytes([*last, 0]));
    }
    !sum
}

/// Deterministic edge cases the random strategies may not always land on.
#[test]
fn checksum_edge_cases() {
    // Empty buffer: sum 0, complemented.
    assert_eq!(internet_checksum(&[]), 0xFFFF);
    // Single odd byte pads to a zero low byte.
    assert_eq!(internet_checksum(&[0x12]), !0x1200);
    // All-0xFF buffers of every parity up to a few KiB: each word sums to
    // 0xFFFF (one's-complement zero), the maximal-carry pattern. An odd
    // tail adds 0xFF00.
    for len in [1usize, 2, 3, 1499, 1500, 65535, 65536, 131072, 131073] {
        let data = vec![0xFFu8; len];
        assert_eq!(
            internet_checksum(&data),
            reference_checksum(&data),
            "all-0xFF len {len}"
        );
    }
    // RFC 1071 §3 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
    // (before complement).
    let rfc = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
    assert_eq!(internet_checksum(&rfc), !0xddf2);
    assert_eq!(reference_checksum(&rfc), !0xddf2);
}
