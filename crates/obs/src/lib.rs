//! # innet-obs
//!
//! The unified observability layer for the In-Net workspace: a
//! lightweight, dependency-free metrics core shared by the controller,
//! the platform, the switch controller, the Click runtime, and the
//! discrete-event simulator.
//!
//! The paper's operator business case rests on accountability — "users
//! are charged for the resources they use" (§2.1) — which demands that
//! no packet is ever dropped *silently* and that time spent in each
//! subsystem is measurable. This crate provides the four instrument
//! kinds every layer records into:
//!
//! * [`Counter`] — monotone event counts (packets, boots, cache hits).
//! * [`Gauge`] — instantaneous levels (memory in use, live VMs).
//! * [`Histogram`] — log-linear latency distributions with monotone
//!   p50/p95/p99/max quantiles and an exact, sum-preserving total.
//! * [`LabeledCounter`] — counter families keyed by a label value; the
//!   canonical use is the **drop-reason counter**: every packet-drop
//!   path names its reason (`unknown_dst`, `mid_flow_no_vm`,
//!   `suspended`, `suspending`, `no_router`, `unconnected_port`), so
//!   `packets_in == delivered + buffered + Σ drops_by_reason` is a
//!   checkable invariant rather than a hope.
//!
//! Instruments are cheap `Arc`-backed handles created from (and
//! registered in) a [`Registry`]; asking for the same name twice
//! returns the same underlying instrument, so independently constructed
//! components that share a registry aggregate naturally. A
//! [`Registry::snapshot`] is exportable in both Prometheus text format
//! and JSON ([`Snapshot::to_prometheus`], [`Snapshot::to_json`]).
//!
//! Wall-clock spans are timed with [`Histogram::span`] (a drop guard);
//! virtual-time latencies (the platform's calibrated boot/suspend/resume
//! costs) are recorded directly with [`Histogram::observe`].
//!
//! ```
//! use innet_obs::Registry;
//!
//! let reg = Registry::new();
//! let packets = reg.counter("demo_packets_total");
//! let drops = reg.labeled_counter("demo_drops_total", "reason");
//! let lat = reg.histogram("demo_latency_ns");
//!
//! packets.inc();
//! drops.with("unknown_dst").inc();
//! lat.observe(1_500);
//!
//! let snap = reg.snapshot();
//! assert!(snap.to_prometheus().contains("demo_drops_total{reason=\"unknown_dst\"} 1"));
//! assert!(snap.to_json().contains("\"demo_packets_total\": 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod metrics;
mod registry;

pub use export::{Snapshot, SnapshotHistogram};
pub use hist::{Histogram, HistogramSnapshot, SpanGuard};
pub use metrics::{Counter, Gauge, LabeledCounter};
pub use registry::Registry;
