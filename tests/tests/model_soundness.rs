//! Model-soundness property tests: the symbolic models over-approximate
//! the concrete elements, so any packet the real router transmits must be
//! admitted by some symbolic egress flow class.
//!
//! This is the property the In-Net security argument rests on: if the
//! symbolic egress flows all satisfy the security rules, and every
//! concrete behaviour is covered by some symbolic flow, then no concrete
//! run can violate the rules.

use innet::prelude::*;
use innet::symnet::{build_sym_graph, ExecOptions, Field, SymPacket};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Whether the symbolic flow class admits this concrete packet at egress.
fn admits(flow: &SymPacket, pkt: &Packet) -> bool {
    let Ok(ip) = pkt.ipv4() else { return false };
    let mut f = flow.clone();
    let mut ok = f.constrain_eq(Field::IpSrc, u32::from(ip.src()) as u64)
        && f.constrain_eq(Field::IpDst, u32::from(ip.dst()) as u64)
        && f.constrain_eq(Field::Proto, ip.proto().number() as u64)
        && f.constrain_eq(Field::Ttl, ip.ttl() as u64)
        && f.constrain_eq(Field::Tos, ip.tos() as u64);
    if ok {
        if let Ok(u) = pkt.udp() {
            ok = f.constrain_eq(Field::SrcPort, u.src_port() as u64)
                && f.constrain_eq(Field::DstPort, u.dst_port() as u64);
        } else if let Ok(t) = pkt.tcp() {
            ok = f.constrain_eq(Field::SrcPort, t.src_port() as u64)
                && f.constrain_eq(Field::DstPort, t.dst_port() as u64)
                && f.constrain_eq(Field::TcpSyn, t.flags().is_initial_syn() as u64);
        }
    }
    ok
}

/// Configurations whose concrete and symbolic behaviour we compare.
fn arb_config() -> impl Strategy<Value = String> {
    let stage = prop_oneof![
        Just("-> Counter() ".to_string()),
        Just("-> DecIPTTL() ".to_string()),
        Just("-> CheckIPHeader() ".to_string()),
        Just("-> IPFilter(allow udp) ".to_string()),
        Just("-> IPFilter(allow tcp dst port 80, allow udp dst port 53) ".to_string()),
        Just("-> IPFilter(allow udp dst net 10.0.0.0/8, deny udp, allow tcp) ".to_string()),
        Just("-> SetIPDst(172.16.15.133) ".to_string()),
        Just("-> SetIPSrc(203.0.113.10) ".to_string()),
        Just("-> FlowMeter() ".to_string()),
        Just("-> IPRewriter(pattern - - 172.16.15.133 4242 0 0) ".to_string()),
        Just("-> UDPTunnelEncap(203.0.113.10, 7000, 198.51.100.1, 7001) ".to_string()),
        Just(
            "-> UDPTunnelEncap(203.0.113.10, 7000, 198.51.100.1, 7001) \
             -> UDPTunnelDecap() "
                .to_string(),
        ),
        Just("-> ICMPPingResponder() ".to_string()),
        Just("-> RateLimiter(1000000) ".to_string()),
    ];
    proptest::collection::vec(stage, 0..4).prop_map(|stages| {
        format!(
            "src :: FromNetfront(); snk :: ToNetfront(); src {} -> snk;",
            stages.concat()
        )
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        proptest::sample::select(vec![53u16, 80, 443, 1500, 9]),
        1u8..=255,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(src, dst, sport, dport, ttl, is_tcp, syn)| {
            let b = if is_tcp {
                PacketBuilder::tcp().flags(if syn {
                    innet::packet::TcpFlags::SYN
                } else {
                    innet::packet::TcpFlags::ACK
                })
            } else {
                PacketBuilder::udp()
            };
            b.src(Ipv4Addr::from(src), sport)
                .dst(Ipv4Addr::from(dst), dport)
                .ttl(ttl)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: concrete transmission ⇒ symbolic coverage.
    #[test]
    fn concrete_transmission_covered_by_symbolic_flow(
        cfg_text in arb_config(),
        packets in proptest::collection::vec(arb_packet(), 1..12),
    ) {
        let cfg = ClickConfig::parse(&cfg_text).unwrap();
        let registry = Registry::standard();

        // Symbolic egress flow classes.
        let graph = build_sym_graph(&cfg, &registry).unwrap();
        let sym = graph
            .run_named("src", 0, SymPacket::unconstrained(), &ExecOptions::default())
            .unwrap();

        // Concrete execution.
        let mut router = Router::from_config(&cfg, &registry).unwrap();
        for (i, pkt) in packets.iter().enumerate() {
            router.deliver(0, pkt.clone(), i as u64 * 1000).unwrap();
            for (_, out_pkt) in router.take_tx() {
                prop_assert!(
                    sym.egress.iter().any(|(_, flow)| admits(flow, &out_pkt)),
                    "transmitted packet not covered by any of {} symbolic flows\n\
                     config: {cfg_text}\npacket: {out_pkt:?}",
                    sym.egress.len()
                );
            }
        }
    }

    /// Completeness on filters: a packet the symbolic analysis proves
    /// *cannot* egress (no flow admits it at ingress either) is indeed
    /// dropped by the concrete router.
    #[test]
    fn symbolically_dead_traffic_is_dropped(
        packets in proptest::collection::vec(arb_packet(), 1..12),
    ) {
        // A filter whose symbolic egress is precisely "udp dst port 53".
        let cfg = ClickConfig::parse(
            "src :: FromNetfront(); snk :: ToNetfront(); \
             src -> IPFilter(allow udp dst port 53) -> snk;",
        )
        .unwrap();
        let registry = Registry::standard();
        let graph = build_sym_graph(&cfg, &registry).unwrap();
        let sym = graph
            .run_named("src", 0, SymPacket::unconstrained(), &ExecOptions::default())
            .unwrap();
        let mut router = Router::from_config(&cfg, &registry).unwrap();
        for (i, pkt) in packets.iter().enumerate() {
            let covered = sym.egress.iter().any(|(_, f)| admits(f, pkt));
            router.deliver(0, pkt.clone(), i as u64).unwrap();
            let transmitted = !router.take_tx().is_empty();
            prop_assert_eq!(
                covered, transmitted,
                "symbolic and concrete disagree for {:?}", pkt
            );
        }
    }
}
