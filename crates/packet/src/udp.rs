//! UDP header view.

use crate::{PacketError, Result};

/// Length in bytes of a UDP header.
pub const UDP_HDR_LEN: usize = 8;

/// A typed view of a UDP header over a byte buffer that begins at the first
/// byte of the UDP header.
#[derive(Debug)]
pub struct UdpView<T> {
    buf: T,
}

impl<T: AsRef<[u8]>> UdpView<T> {
    /// Validates the buffer length and wraps it.
    pub fn new(buf: T) -> Result<Self> {
        let have = buf.as_ref().len();
        if have < UDP_HDR_LEN {
            return Err(PacketError::Truncated {
                what: "UDP header",
                need: UDP_HDR_LEN,
                have,
            });
        }
        Ok(UdpView { buf })
    }

    fn b(&self) -> &[u8] {
        self.buf.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// UDP length field (header + payload).
    pub fn len_field(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// UDP checksum field (0 means "not computed", which is legal for IPv4).
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpView<T> {
    /// Validates and wraps the buffer for mutation.
    pub fn new_mut(buf: T) -> Result<Self> {
        UdpView::new(buf)
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buf.as_mut()
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.bm()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.bm()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the UDP length field.
    pub fn set_len_field(&mut self, l: u16) {
        self.bm()[4..6].copy_from_slice(&l.to_be_bytes());
    }

    /// Sets the UDP checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        self.bm()[6..8].copy_from_slice(&c.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; UDP_HDR_LEN];
        let mut v = UdpView::new_mut(&mut buf[..]).unwrap();
        v.set_src_port(1234);
        v.set_dst_port(53);
        v.set_len_field(8);
        assert_eq!(v.src_port(), 1234);
        assert_eq!(v.dst_port(), 53);
        assert_eq!(v.len_field(), 8);
        assert_eq!(v.checksum(), 0);
    }

    #[test]
    fn short_rejected() {
        assert!(UdpView::new(&[0u8; 7][..]).is_err());
    }
}
