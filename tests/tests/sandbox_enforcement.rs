//! Integration tests for the sandbox path: what static analysis cannot
//! prove, the `ChangeEnforcer` must contain at runtime.

use innet::controller::wrap_with_enforcer;
use innet::prelude::*;
use std::net::Ipv4Addr;

const MODULE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
const PEER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const VICTIM: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 66);

/// A tunnel decapsulator is the paper's canonical sandbox case: inner
/// destinations are unknown at verify time. At runtime, the enforcer
/// lets decapsulated traffic reach white-listed destinations and blocks
/// the rest.
#[test]
fn sandboxed_tunnel_contained_at_runtime() {
    let cfg = ClickConfig::parse("FromNetfront() -> UDPTunnelDecap() -> ToNetfront();").unwrap();
    let wrapped = wrap_with_enforcer(&cfg, MODULE, &[PEER]);
    let mut router = Router::from_config(&wrapped, &Registry::standard()).unwrap();

    // An encapsulated packet whose inner destination is the white-listed
    // peer — but whose inner SOURCE is not the module: blocked as spoofed.
    let inner_spoof = PacketBuilder::udp()
        .src(Ipv4Addr::new(6, 6, 6, 6), 1)
        .dst(PEER, 80)
        .build();
    let outer = encapsulate(&inner_spoof);
    router.deliver(0, outer, 0).unwrap();
    assert!(
        router.take_tx().is_empty(),
        "spoofed inner source must not escape"
    );

    // Inner traffic correctly sourced at the module, to the peer: passes.
    let inner_ok = PacketBuilder::udp().src(MODULE, 7000).dst(PEER, 80).build();
    router.deliver(0, encapsulate(&inner_ok), 1).unwrap();
    let tx = router.take_tx();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].1.ipv4().unwrap().dst(), PEER);

    // Inner traffic to an unauthorized victim: blocked.
    let inner_bad = PacketBuilder::udp()
        .src(MODULE, 7000)
        .dst(VICTIM, 80)
        .build();
    router.deliver(0, encapsulate(&inner_bad), 2).unwrap();
    assert!(router.take_tx().is_empty());
}

fn encapsulate(inner: &Packet) -> Packet {
    use innet::click::{ConfigArgs, Context, Element, VecSink};
    let mut enc = innet::click::elements::UdpTunnelEncap::from_args(&ConfigArgs::parse(
        "UDPTunnelEncap",
        "8.8.8.8, 7000, 203.0.113.10, 7001",
    ))
    .unwrap();
    let mut sink = VecSink::new();
    enc.push(0, inner.clone(), &Context::default(), &mut sink);
    sink.pushed.pop().unwrap().1
}

/// Implicit authorizations expire: the paper's §7 time-based caveat is
/// bounded by the enforcer's idle timeout.
#[test]
fn implicit_authorization_expires_in_sandbox() {
    let cfg = ClickConfig::parse("FromNetfront() -> StockX86VM() -> ToNetfront();").unwrap();
    // The StockX86VM has no runtime implementation (it is opaque); swap
    // in a concrete stand-in with the same wiring for the runtime test.
    let runtime_cfg =
        ClickConfig::parse("FromNetfront() -> ICMPPingResponder() -> ToNetfront();").unwrap();
    let _ = cfg;
    let wrapped = wrap_with_enforcer(&runtime_cfg, MODULE, &[]);
    let mut router = Router::from_config(&wrapped, &Registry::standard()).unwrap();

    let ping = |seq: u16| {
        PacketBuilder::icmp_echo_request(9, seq)
            .src_addr(Ipv4Addr::new(8, 8, 4, 4))
            .dst_addr(MODULE)
            .build()
    };
    // Within the window: request → reply passes.
    router.deliver(0, ping(1), 0).unwrap();
    assert_eq!(router.take_tx().len(), 1);

    // ~10 minutes later, the module tries to reply *again* without a new
    // request (simulated by injecting straight into the responder's
    // output path): since no fresh ingress renewed the authorization, the
    // enforcer must block. We exercise it by sending a packet from the
    // module side via the enforcer's module→world input.
    let stale_reply = PacketBuilder::icmp_echo_reply(9, 2)
        .src_addr(MODULE)
        .dst_addr(Ipv4Addr::new(8, 8, 4, 4))
        .build();
    router
        .inject("__enforcer0", 1, stale_reply.clone(), 700_000_000_000)
        .unwrap();
    assert!(
        router.take_tx().is_empty(),
        "authorization expired after the idle timeout"
    );

    // A fresh request re-authorizes.
    router.deliver(0, ping(3), 700_000_000_001).unwrap();
    assert_eq!(router.take_tx().len(), 1);
    router
        .inject("__enforcer0", 1, stale_reply, 700_000_000_002)
        .unwrap();
    assert_eq!(router.take_tx().len(), 1, "renewed by the new request");
}

/// The controller's end-to-end sandbox decision: an x86 module deploys
/// sandboxed and its runtime config actually contains the enforcer.
#[test]
fn controller_sandbox_roundtrip() {
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client("cdn", RequesterClass::ThirdParty, vec![PEER]);
    let resp = ctl
        .deploy("cdn", ClientRequest::parse("stock cache: x86-vm").unwrap())
        .unwrap();
    assert!(resp.sandboxed);
    let module = &ctl.modules()[0];
    let enforcers = module.config.elements_of_class("ChangeEnforcer");
    assert!(!enforcers.is_empty());
    // The enforcer is configured with the module's own address.
    let decl = module.config.element(enforcers[0]).unwrap();
    assert_eq!(decl.args[0], resp.public_addr.to_string());
}
