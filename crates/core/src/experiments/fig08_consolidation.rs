//! Figure 8: cumulative throughput when a single ClickOS VM handles the
//! consolidated configurations of many clients.
//!
//! Measured natively: one `IPClassifier` demultiplexer with a `dst host`
//! rule per client, per-client firewalls behind it, one thread (one
//! vCPU). The linear demux scan is why the curve eventually bends; the
//! netfront ring's fixed per-packet cost is why it stays flat at first.

use innet_packet::{Packet, PacketBuilder};
use innet_platform::{consolidated_config, NativeRunner};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::Ipv4Addr;

/// One sweep point: measured throughput at a tenant count.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationPoint {
    /// Number of client configurations sharing the VM.
    pub configs: usize,
    /// Measured input rate in packets/second.
    pub pps: f64,
    /// Measured throughput in Gbit/s at the test frame size.
    pub gbps: f64,
    /// Fraction of packets that matched a client and were forwarded.
    pub delivery: f64,
}

fn client_addrs(n: usize) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(10, 50, (i / 250) as u8, (1 + i % 250) as u8))
        .collect()
}

/// Builds a uniform traffic mix across the clients (HTTP-like frames).
fn traffic(clients: &[Ipv4Addr], frame: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1024)
        .map(|_| {
            let dst = clients[rng.gen_range(0..clients.len())];
            PacketBuilder::tcp()
                .src(Ipv4Addr::new(198, 51, 100, 9), rng.gen())
                .dst(dst, 80)
                .pad_to(frame)
                .build()
        })
        .collect()
}

/// Measures throughput at each tenant count (the paper sweeps 24–252).
pub fn consolidation_sweep(
    counts: &[usize],
    frame: usize,
    rounds: usize,
) -> Vec<ConsolidationPoint> {
    counts
        .iter()
        .map(|&n| {
            let clients = client_addrs(n);
            let cfg = consolidated_config(&clients);
            let mut runner = NativeRunner::new(&cfg).expect("valid config");
            let pkts = traffic(&clients, frame, n as u64);
            // Warm-up round.
            runner.run(&pkts, 1);
            let stats = runner.run(&pkts, rounds);
            ConsolidationPoint {
                configs: n,
                pps: stats.pps(),
                gbps: stats.gbps(frame),
                delivery: stats.transmitted as f64 / stats.packets as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_traffic_delivered() {
        let pts = consolidation_sweep(&[8, 32], 512, 3);
        for p in &pts {
            assert!(
                (p.delivery - 1.0).abs() < 1e-9,
                "every packet targets a tenant: {p:?}"
            );
        }
    }

    #[test]
    fn throughput_flat_then_bounded_droop() {
        // The compiled demux keeps the plateau flat; many tenants may
        // cost some throughput but never an order of magnitude (and never
        // a gain beyond noise).
        let lo: f64 = (0..3)
            .map(|_| consolidation_sweep(&[4], 512, 5)[0].pps)
            .sum::<f64>()
            / 3.0;
        let hi: f64 = (0..3)
            .map(|_| consolidation_sweep(&[252], 512, 5)[0].pps)
            .sum::<f64>()
            / 3.0;
        assert!(
            hi > lo * 0.3 && hi < lo * 1.3,
            "252 tenants vs 4 tenants: {hi} vs {lo}"
        );
    }
}
