//! # innet-controller
//!
//! The In-Net controller (paper §4.3): receives processing requests from
//! clients, statically verifies them against a snapshot of the operator's
//! network, picks a platform, and installs the processing module.
//!
//! Verification has three parts, all driven by `innet-symnet`:
//!
//! 1. **Security rules** (§2.1, §4.4) — anti-spoofing, the
//!    ownership/no-transit rule, and default-off, evaluated per requester
//!    class; unprovable-at-install-time modules are wrapped with the
//!    `ChangeEnforcer` sandbox.
//! 2. **Operator policy** — the operator's own `reach` requirements must
//!    still hold after the candidate installation.
//! 3. **Client requirements** — the client's `reach` statements must hold
//!    with the module placed on the candidate platform.
//!
//! The controller iterates over the platforms, *pretends* the module is
//! installed on each, and commits to the first placement where everything
//! verifies (§4.5's unifying example walks through exactly this flow).
//!
//! ## Example
//!
//! ```
//! use innet_controller::{ClientRequest, Controller, ModuleConfig};
//! use innet_symnet::RequesterClass;
//! use innet_topology::Topology;
//!
//! let mut ctl = Controller::new(Topology::figure3());
//! ctl.register_client(
//!     "mobile-7",
//!     RequesterClass::Client,
//!     vec!["172.16.15.133".parse().unwrap()],
//! );
//!
//! // The paper's Figure 4 request.
//! let req = ClientRequest::parse(r#"
//!     module batcher:
//!     FromNetfront()
//!       -> IPFilter(allow udp dst port 1500)
//!       -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
//!       -> TimedUnqueue(120, 100)
//!       -> dst :: ToNetfront();
//!
//!     reach from internet udp
//!       -> batcher:dst:0 dst 172.16.15.133
//!       -> client dst port 1500
//!       const proto && dst port && payload
//! "#).unwrap();
//!
//! let resp = ctl.deploy("mobile-7", req).unwrap();
//! // Only Platform 3 is reachable from the Internet (Figure 3).
//! assert_eq!(resp.platform, "platform3");
//! assert!(!resp.sandboxed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod consolidate;
mod controller;
mod fleet_hooks;
mod hardening;
mod netmodel;
mod parallel;
mod placement;
mod request;
mod sandbox;
mod stock;
mod summaries;
mod verdicts;
mod verify;

pub use consolidate::{
    consolidated_vm_config, is_stateful, plan, plan_fleet, ConsolidationPlan,
    FleetConsolidationPlan,
};
pub use controller::{
    ClientAccount, Controller, ControllerStats, DeployError, DeployResponse, FlowRule, ModuleId,
};
pub use fleet_hooks::ControllerHooks;
pub use hardening::{apply_udp_reflection_ban, internal_prefixes, HardeningPolicy};
pub use netmodel::{compile, InstalledModule, NetworkModel};
pub use placement::{PlacementContext, RejectReason};
pub use request::{ClientRequest, ModuleConfig, RequestParseError, StockModule};
pub use sandbox::wrap_with_enforcer;
pub use stock::stock_config;
pub use verdicts::{table1_catalog, table1_matrix, Table1Row};
pub use verify::{check_requirement, VerifyError};
