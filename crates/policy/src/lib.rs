//! # innet-policy
//!
//! The In-Net requirements API (paper §4.2): the language both operators
//! and clients use to express how traffic must flow — reachability via
//! way-points, per-hop flow specifications, and `const` header-field
//! invariants — without either side revealing its topology or policy to
//! the other.
//!
//! ## Grammar
//!
//! ```text
//! requirement := "reach" "from" node [flow]
//!                ("->" node [flow] ["const" fields])+
//! node        := "internet" | "client"
//!              | ADDR | CIDR                      -- an address or subnet
//!              | NAME                             -- a named network node
//!              | NAME ":" NAME [":" PORT]         -- module:element[:port]
//! flow        := tcpdump-subset expression (see innet-packet::pattern)
//! fields      := field ("&&" field)*
//! field       := "proto" | "src port" | "dst port" | "src host"
//!              | "dst host" | "ttl" | "tos" | "payload"
//! ```
//!
//! ## Example — the paper's Figure 4 requirement
//!
//! ```
//! use innet_policy::{Requirement, NodeRef, ConstField};
//!
//! let r = Requirement::parse(
//!     "reach from internet udp \
//!      -> batcher:dst:0 dst 172.16.15.133 \
//!      -> client dst port 1500 const proto && dst port && payload",
//! ).unwrap();
//!
//! assert_eq!(r.from, NodeRef::Internet);
//! assert_eq!(r.hops.len(), 2);
//! assert_eq!(r.hops[1].node, NodeRef::Client);
//! assert_eq!(
//!     r.hops[1].const_fields,
//!     vec![ConstField::Proto, ConstField::DstPort, ConstField::Payload],
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod types;

pub use parse::PolicyParseError;
pub use types::{ConstField, HopSpec, NodeRef, Requirement};
