//! A builder that constructs well-formed Ethernet/IPv4/L4 packets.

use std::net::Ipv4Addr;

use bytes::BytesMut;

use crate::{
    ether::{EtherType, MacAddr, ETHER_HDR_LEN},
    icmp::{IcmpKind, ICMP_HDR_LEN},
    ip::{IpProto, Ipv4View, IPV4_HDR_LEN},
    tcp::{TcpFlags, TCP_HDR_LEN},
    udp::UDP_HDR_LEN,
    Packet,
};

/// Builds Ethernet/IPv4 packets with a chosen transport header.
///
/// All fields have sensible defaults so tests only set what they assert on.
/// The builder always emits a valid IPv4 header checksum and consistent
/// length fields.
///
/// # Examples
///
/// ```
/// use innet_packet::{PacketBuilder, TcpFlags};
/// use std::net::Ipv4Addr;
///
/// let syn = PacketBuilder::tcp()
///     .src(Ipv4Addr::new(10, 0, 0, 1), 43210)
///     .dst(Ipv4Addr::new(93, 184, 216, 34), 80)
///     .flags(TcpFlags::SYN)
///     .build();
/// assert!(syn.tcp().unwrap().flags().is_initial_syn());
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    proto: IpProto,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_addr: Ipv4Addr,
    dst_addr: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    tos: u8,
    ident: u16,
    tcp_flags: TcpFlags,
    tcp_seq: u32,
    tcp_ack: u32,
    icmp_kind: IcmpKind,
    icmp_ident: u16,
    icmp_seq: u16,
    payload: Vec<u8>,
    pad_to: Option<usize>,
}

impl PacketBuilder {
    fn base(proto: IpProto) -> PacketBuilder {
        PacketBuilder {
            proto,
            src_mac: MacAddr::from_host_id(1),
            dst_mac: MacAddr::from_host_id(2),
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1024,
            dst_port: 80,
            ttl: 64,
            tos: 0,
            ident: 0,
            tcp_flags: TcpFlags::default(),
            tcp_seq: 0,
            tcp_ack: 0,
            icmp_kind: IcmpKind::EchoRequest,
            icmp_ident: 0,
            icmp_seq: 0,
            payload: Vec::new(),
            pad_to: None,
        }
    }

    /// Starts a UDP packet.
    pub fn udp() -> PacketBuilder {
        PacketBuilder::base(IpProto::Udp)
    }

    /// Starts a TCP packet.
    pub fn tcp() -> PacketBuilder {
        PacketBuilder::base(IpProto::Tcp)
    }

    /// Starts an ICMP echo request with the given identifier and sequence.
    pub fn icmp_echo_request(ident: u16, seq: u16) -> PacketBuilder {
        let mut b = PacketBuilder::base(IpProto::Icmp);
        b.icmp_kind = IcmpKind::EchoRequest;
        b.icmp_ident = ident;
        b.icmp_seq = seq;
        b
    }

    /// Starts an ICMP echo reply with the given identifier and sequence.
    pub fn icmp_echo_reply(ident: u16, seq: u16) -> PacketBuilder {
        let mut b = PacketBuilder::base(IpProto::Icmp);
        b.icmp_kind = IcmpKind::EchoReply;
        b.icmp_ident = ident;
        b.icmp_seq = seq;
        b
    }

    /// Starts a packet with an arbitrary transport protocol number and no
    /// L4 header (the payload directly follows the IP header).
    pub fn raw(proto: IpProto) -> PacketBuilder {
        PacketBuilder::base(proto)
    }

    /// Sets the source address and port.
    pub fn src(mut self, addr: Ipv4Addr, port: u16) -> Self {
        self.src_addr = addr;
        self.src_port = port;
        self
    }

    /// Sets the destination address and port.
    pub fn dst(mut self, addr: Ipv4Addr, port: u16) -> Self {
        self.dst_addr = addr;
        self.dst_port = port;
        self
    }

    /// Sets only the source address.
    pub fn src_addr(mut self, addr: Ipv4Addr) -> Self {
        self.src_addr = addr;
        self
    }

    /// Sets only the destination address.
    pub fn dst_addr(mut self, addr: Ipv4Addr) -> Self {
        self.dst_addr = addr;
        self
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the IP TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the DSCP/ECN byte.
    pub fn tos(mut self, tos: u8) -> Self {
        self.tos = tos;
        self
    }

    /// Sets the IP identification field.
    pub fn ident(mut self, id: u16) -> Self {
        self.ident = id;
        self
    }

    /// Sets TCP flags (TCP packets only; ignored otherwise).
    pub fn flags(mut self, f: TcpFlags) -> Self {
        self.tcp_flags = f;
        self
    }

    /// Sets TCP sequence and acknowledgment numbers.
    pub fn seq_ack(mut self, seq: u32, ack: u32) -> Self {
        self.tcp_seq = seq;
        self.tcp_ack = ack;
        self
    }

    /// Sets the L4 payload bytes.
    pub fn payload(mut self, p: &[u8]) -> Self {
        self.payload = p.to_vec();
        self
    }

    /// Pads the final frame (with zero bytes of payload) to exactly `len`
    /// bytes — useful for packet-size sweeps like the paper's Figure 11.
    ///
    /// Shorter targets than the header stack are ignored.
    pub fn pad_to(mut self, len: usize) -> Self {
        self.pad_to = Some(len);
        self
    }

    /// The length of the L4 header this builder will emit.
    fn l4_len(&self) -> usize {
        match self.proto {
            IpProto::Udp => UDP_HDR_LEN,
            IpProto::Tcp => TCP_HDR_LEN,
            IpProto::Icmp => ICMP_HDR_LEN,
            _ => 0,
        }
    }

    /// Builds the packet.
    pub fn build(mut self) -> Packet {
        let headers = ETHER_HDR_LEN + IPV4_HDR_LEN + self.l4_len();
        if let Some(target) = self.pad_to {
            if target > headers + self.payload.len() {
                self.payload.resize(target - headers, 0);
            }
        }
        let total = headers + self.payload.len();
        let mut buf = BytesMut::zeroed(total);

        // Ethernet header.
        buf[0..6].copy_from_slice(&self.dst_mac.0);
        buf[6..12].copy_from_slice(&self.src_mac.0);
        buf[12..14].copy_from_slice(&EtherType::IPV4.0.to_be_bytes());

        // IPv4 header.
        buf[ETHER_HDR_LEN] = 0x45;
        {
            let ip_buf = &mut buf[ETHER_HDR_LEN..];
            let mut ip = Ipv4View::new_mut(ip_buf).expect("builder sizes are valid");
            ip.set_tos(self.tos);
            ip.set_total_len((IPV4_HDR_LEN + self.l4_len() + self.payload.len()) as u16);
            ip.set_ident(self.ident);
            ip.set_ttl(self.ttl);
            ip.set_proto(self.proto);
            ip.set_src(self.src_addr);
            ip.set_dst(self.dst_addr);
            ip.update_checksum();
        }

        // L4 header.
        let l4 = ETHER_HDR_LEN + IPV4_HDR_LEN;
        match self.proto {
            IpProto::Udp => {
                buf[l4..l4 + 2].copy_from_slice(&self.src_port.to_be_bytes());
                buf[l4 + 2..l4 + 4].copy_from_slice(&self.dst_port.to_be_bytes());
                let ulen = (UDP_HDR_LEN + self.payload.len()) as u16;
                buf[l4 + 4..l4 + 6].copy_from_slice(&ulen.to_be_bytes());
            }
            IpProto::Tcp => {
                buf[l4..l4 + 2].copy_from_slice(&self.src_port.to_be_bytes());
                buf[l4 + 2..l4 + 4].copy_from_slice(&self.dst_port.to_be_bytes());
                buf[l4 + 4..l4 + 8].copy_from_slice(&self.tcp_seq.to_be_bytes());
                buf[l4 + 8..l4 + 12].copy_from_slice(&self.tcp_ack.to_be_bytes());
                buf[l4 + 12] = 5 << 4;
                buf[l4 + 13] = self.tcp_flags.0;
                buf[l4 + 14..l4 + 16].copy_from_slice(&0xffffu16.to_be_bytes());
            }
            IpProto::Icmp => {
                buf[l4] = self.icmp_kind.number();
                buf[l4 + 4..l4 + 6].copy_from_slice(&self.icmp_ident.to_be_bytes());
                buf[l4 + 6..l4 + 8].copy_from_slice(&self.icmp_seq.to_be_bytes());
            }
            _ => {}
        }

        // Payload.
        let pstart = l4 + self.l4_len();
        buf[pstart..].copy_from_slice(&self.payload);

        Packet::from_buf(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_lengths_consistent() {
        let pkt = PacketBuilder::udp().payload(b"xyz").build();
        let ip = pkt.ipv4().unwrap();
        assert_eq!(
            usize::from(ip.total_len()),
            pkt.len() - ETHER_HDR_LEN,
            "IP total length covers everything after Ethernet"
        );
        assert_eq!(pkt.udp().unwrap().len_field(), (UDP_HDR_LEN + 3) as u16);
    }

    #[test]
    fn pad_to_sets_frame_size() {
        for size in [64usize, 128, 512, 1472] {
            let pkt = PacketBuilder::udp().pad_to(size).build();
            assert_eq!(pkt.len(), size);
            assert!(pkt.ipv4().unwrap().verify_checksum());
        }
    }

    #[test]
    fn pad_to_smaller_than_headers_ignored() {
        let pkt = PacketBuilder::tcp().pad_to(10).build();
        assert_eq!(pkt.len(), ETHER_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN);
    }

    #[test]
    fn raw_proto_packet() {
        let pkt = PacketBuilder::raw(IpProto::Sctp).payload(b"chunk").build();
        assert_eq!(pkt.ip_proto().unwrap(), IpProto::Sctp);
        assert_eq!(pkt.payload().unwrap(), b"chunk");
    }

    #[test]
    fn icmp_reply_kind() {
        let pkt = PacketBuilder::icmp_echo_reply(1, 2).build();
        assert_eq!(pkt.icmp().unwrap().kind(), IcmpKind::EchoReply);
    }
}
