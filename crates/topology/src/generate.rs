//! Random operator-network growth.
//!
//! Two generators live here:
//!
//! * [`generate`] — the controller-scalability topology (paper Figure 10:
//!   "we randomly add more routers and platforms to the topology shown in
//!   figure 3"), a chain grown off the border router.
//! * [`generate_fleet`] — a seeded capacitated WAN/DC fleet: PoPs on a
//!   wide-area core ring, each with an aggregation layer, platforms with
//!   per-platform memory/slot capacity, and client subnets, every link
//!   carrying bandwidth and latency. This is the substrate for the
//!   multi-host placement and live-migration experiments.
//!
//! Both are deterministic given the seed, across platforms: the only
//! randomness source is the seeded [`StdRng`], and all derived arithmetic
//! is done in explicitly sized integers (`u32`/`u64`) with modular
//! bounds, never in `usize` — so a 32-bit host generates the same
//! topology, bit for bit, as a 64-bit one.

use innet_click::ClickConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::graph::{NodeKind, PlatformSpec, Topology};

/// Parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct GenerateParams {
    /// Number of middlebox nodes to add (the x-axis of Figure 10).
    pub middleboxes: usize,
    /// Add one platform per this many middleboxes.
    pub platform_every: usize,
    /// RNG seed (growth is deterministic given the seed).
    pub seed: u64,
}

impl Default for GenerateParams {
    fn default() -> Self {
        GenerateParams {
            middleboxes: 15,
            platform_every: 4,
            seed: 42,
        }
    }
}

fn random_middlebox(rng: &mut StdRng, idx: usize) -> ClickConfig {
    // A rotating mix of the operator middlebox shapes the paper deploys.
    let text = match rng.gen_range(0..4) {
        0 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            fw :: StatefulFirewall(allow tcp, allow udp);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> [0]fw; fw[0] -> out;
            rin -> [1]fw; fw[1] -> rout;
            "#
        }
        1 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            m :: FlowMeter();
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> m -> out; rin -> rout;
            "#
        }
        2 => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            r :: RateLimiter(100000);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> r -> out; rin -> rout;
            "#
        }
        _ => {
            r#"
            in :: FromNetfront(0); rin :: FromNetfront(1);
            c :: IPClassifier(tcp src port 80 or tcp dst port 80, -);
            opt :: SetTOS(46);
            out :: ToNetfront(1); rout :: ToNetfront(0);
            in -> c; c[0] -> opt -> out; c[1] -> out;
            rin -> rout;
            "#
        }
    };
    let _ = idx;
    ClickConfig::parse(text).expect("valid literal config")
}

/// A `10.s.t.0/24` pool for generated platform `index`, with both octets
/// modularly bounded so no index — however large — can overflow an octet
/// or produce an unparsable literal.
fn pool_for(index: u64) -> innet_packet::Cidr {
    let second = 1 + (index / 250) % 200; // 1..=200, u64 arithmetic only.
    let third = index % 250; // 0..=249.
    format!("10.{second}.{third}.0/24")
        .parse()
        .expect("bounded octets form a valid literal")
}

/// Grows the Figure 3 topology with `params.middleboxes` extra
/// router+middlebox pairs (and platforms sprinkled in), chained off the
/// border router — the setup used to measure controller request latency
/// versus network size.
pub fn generate(params: &GenerateParams) -> Topology {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut t = Topology::figure3();
    let border = t.index_of("border").expect("figure3 has a border router");
    // Steer a dedicated aggregate into the chain so that verification
    // walks every added middlebox: the border's port 5 leads into the
    // generated region (10.0.0.0/8).
    if let NodeKind::Router(routes) = &mut t.nodes[border].kind {
        let default = routes.pop().expect("figure3 border has a default route");
        routes.push(("10.0.0.0/8".parse().expect("valid literal"), 5));
        routes.push(default);
    }
    let mut attach = border;
    let mut attach_port = 5usize;

    for i in 0..params.middleboxes {
        let mbox = t
            .add(
                format!("mbox{i}"),
                NodeKind::Middlebox(random_middlebox(&mut rng, i)),
            )
            .expect("generated names are unique");
        let pool = pool_for(i as u64);
        // Chain router: port 0 back toward the core, port 1 a local
        // platform (when present), port 2 deeper into the chain.
        let mut routes = vec![(pool, 1)];
        routes.push(("10.0.0.0/8".parse().expect("valid literal"), 2));
        routes.push((innet_packet::Cidr::ANY, 0));
        let router = t
            .add(format!("router{i}"), NodeKind::Router(routes))
            .expect("generated names are unique");
        t.link_bidir(attach, attach_port, mbox, 0);
        t.link_bidir(mbox, 1, router, 0);

        if params.platform_every > 0 && i % params.platform_every == 0 {
            let p = t
                .add(
                    format!("gplatform{i}"),
                    NodeKind::Platform(PlatformSpec {
                        addr_pool: pool,
                        external: rng.gen_bool(0.5),
                        ..PlatformSpec::default()
                    }),
                )
                .expect("generated names are unique");
            t.link_bidir(router, 1, p, 0);
        }
        attach = router;
        attach_port = 2;
    }
    t
}

/// Parameters for [`generate_fleet`].
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Number of points of presence on the wide-area core ring.
    pub pops: u32,
    /// Processing platforms per PoP.
    pub platforms_per_pop: u32,
    /// Client subnets per PoP.
    pub clients_per_pop: u32,
    /// RNG seed (the fleet is deterministic given the seed).
    pub seed: u64,
}

impl Default for FleetParams {
    fn default() -> Self {
        // 1 internet + 200 × (core + agg + 2 platforms + 1 subnet)
        // = 1001 nodes: the thousand-node fleet of the bench.
        FleetParams {
            pops: 200,
            platforms_per_pop: 2,
            clients_per_pop: 1,
            seed: 42,
        }
    }
}

impl FleetParams {
    /// Total node count this parameterization produces.
    pub fn node_count(&self) -> u64 {
        1 + u64::from(self.pops)
            * (2 + u64::from(self.platforms_per_pop) + u64::from(self.clients_per_pop))
    }
}

/// Generates a seeded capacitated WAN/DC fleet topology.
///
/// ```text
/// internet ── core0 ── core1 ── … ── core(P-1) ── core0   (WAN ring)
///              │
///             agg0 ──┬── pop0-platform0 …
///                    ├── pop0-platform1 …
///                    └── pop0-clients0  (10.x.y.0/24)
/// ```
///
/// Every link carries seeded bandwidth/latency in its class's band
/// (WAN core: 40–100 Gb/s at 1–10 ms; core→agg: 10–40 Gb/s at
/// 100–500 µs; agg→platform: 10 Gb/s at 10–50 µs; agg→clients:
/// 1–10 Gb/s at 50–500 µs), and every platform gets a seeded
/// [`PlatformSpec`] — module slots, memory, cores, and a unique
/// `10.x.y.0/24` address pool. External reachability is seeded at 30%.
///
/// All drawn values are integers and all derived arithmetic is
/// `u32`/`u64` with modular bounds: the same seed produces the same
/// topology on every platform, and no parameter choice can overflow.
pub fn generate_fleet(params: &FleetParams) -> Topology {
    const MS: u64 = 1_000_000;
    const US: u64 = 1_000;
    const GBPS: u64 = 1_000_000_000;

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut t = Topology::new();
    let internet = t.add("internet", NodeKind::Internet).expect("fresh");

    let pops = params.pops.max(1);
    let mut cores = Vec::with_capacity(pops as usize);
    let mut platform_index: u64 = 0;

    for pop in 0..pops {
        // Core router: port 0 ring-prev (or internet at pop 0),
        // port 1 ring-next, port 2 the PoP's aggregation router.
        let core = t
            .add(
                format!("core{pop}"),
                NodeKind::Router(vec![
                    ("10.0.0.0/8".parse().expect("valid literal"), 2),
                    (innet_packet::Cidr::ANY, 1),
                ]),
            )
            .expect("generated names are unique");
        cores.push(core);

        // Aggregation router: port 0 up to the core, ports 1.. fan out
        // to platforms then client subnets.
        let mut agg_routes = Vec::new();
        let first_platform_port = 1usize;
        for p in 0..params.platforms_per_pop {
            agg_routes.push((
                pool_for(platform_index + u64::from(p)),
                first_platform_port + p as usize,
            ));
        }
        agg_routes.push((innet_packet::Cidr::ANY, 0));
        let agg = t
            .add(format!("agg{pop}"), NodeKind::Router(agg_routes))
            .expect("generated names are unique");

        let core_agg_bw = u64::from(rng.gen_range(10u32..=40)) * GBPS;
        let core_agg_lat = u64::from(rng.gen_range(100u32..=500)) * US;
        t.link_bidir_with(core, 2, agg, 0, core_agg_bw, core_agg_lat);

        for p in 0..params.platforms_per_pop {
            let pool = pool_for(platform_index);
            // Seeded per-platform capacity: slot count, memory, cores.
            // Values are drawn as u32 and widened — never narrowed — so
            // they are identical on every host width.
            let capacity = rng.gen_range(8u32..=64);
            let mem_mb = u64::from(rng.gen_range(4u32..=64)) * 1024;
            let cores_n = rng.gen_range(2u32..=16);
            let external = rng.gen_bool(0.3);
            let plat = t
                .add(
                    format!("pop{pop}-platform{p}"),
                    NodeKind::Platform(PlatformSpec {
                        addr_pool: pool,
                        external,
                        capacity: capacity as usize,
                        mem_mb,
                        cores: cores_n,
                    }),
                )
                .expect("generated names are unique");
            let plat_lat = u64::from(rng.gen_range(10u32..=50)) * US;
            t.link_bidir_with(agg, 1 + p as usize, plat, 0, 10 * GBPS, plat_lat);
            platform_index += 1;
        }

        for c in 0..params.clients_per_pop {
            // Client subnets draw from 172.16.0.0/12: a flat index over
            // (pop, c) keeps pools distinct across PoPs, bounded modularly.
            let idx = u64::from(pop) * u64::from(params.clients_per_pop) + u64::from(c);
            let second = 16 + (idx / 250) % 16;
            let third = idx % 250;
            let subnet = t
                .add(
                    format!("pop{pop}-clients{c}"),
                    NodeKind::ClientSubnet(
                        format!("172.{second}.{third}.0/24")
                            .parse()
                            .expect("bounded octets form a valid literal"),
                    ),
                )
                .expect("generated names are unique");
            let cl_bw = u64::from(rng.gen_range(1u32..=10)) * GBPS;
            let cl_lat = u64::from(rng.gen_range(50u32..=500)) * US;
            t.link_bidir_with(
                agg,
                1 + params.platforms_per_pop as usize + c as usize,
                subnet,
                0,
                cl_bw,
                cl_lat,
            );
        }
    }

    // The wide-area ring, plus the internet feed into core0 (port 3 on
    // each core is ring-prev's return side; ports 0/1 are prev/next).
    for pop in 0..pops {
        let next = (pop + 1) % pops;
        if pops > 1 || pop == 0 {
            let bw = u64::from(rng.gen_range(40u32..=100)) * GBPS;
            let lat = u64::from(rng.gen_range(1u32..=10)) * MS;
            if pops > 1 {
                t.link_bidir_with(cores[pop as usize], 1, cores[next as usize], 0, bw, lat);
            }
        }
    }
    t.link_bidir_with(internet, 0, cores[0], 3, 100 * GBPS, 5 * MS);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Link;

    #[test]
    fn generates_requested_size() {
        for n in [1usize, 7, 31] {
            let t = generate(&GenerateParams {
                middleboxes: n,
                ..GenerateParams::default()
            });
            // Figure 3 contributes 3 middleboxes of its own.
            assert_eq!(t.middlebox_count(), n + 3);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let p = GenerateParams {
            middleboxes: 10,
            ..GenerateParams::default()
        };
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a, b);
        let c = generate(&GenerateParams { seed: 1, ..p });
        // Different seed, same structure size.
        assert_eq!(a.middlebox_count(), c.middlebox_count());
    }

    #[test]
    fn chain_is_connected() {
        let t = generate(&GenerateParams {
            middleboxes: 5,
            ..GenerateParams::default()
        });
        // Every generated middlebox has links on both sides.
        for i in 0..5 {
            let m = t.index_of(&format!("mbox{i}")).unwrap();
            assert!(t.out_link(m, 0).is_some());
            assert!(t.out_link(m, 1).is_some());
        }
    }

    #[test]
    fn pools_stay_valid_at_any_index() {
        // The old formula overflowed the second octet past index 63749;
        // the bounded one must parse for arbitrarily large indices.
        for i in [0u64, 249, 250, 63_749, 63_750, u64::MAX - 1, u64::MAX] {
            let _ = pool_for(i);
        }
        // Adjacent indices still get distinct pools.
        assert_ne!(pool_for(0), pool_for(1));
    }

    /// FNV-1a over a canonical rendering of the topology: node names and
    /// kinds, link tuples with attributes. Any cross-platform divergence
    /// in generation shows up as a digest mismatch.
    fn digest(t: &Topology) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for n in &t.nodes {
            eat(n.name.as_bytes());
            eat(format!("{:?}", n.kind).as_bytes());
        }
        for l in &t.links {
            let Link {
                from,
                from_port,
                to,
                to_port,
                bandwidth_bps,
                latency_ns,
            } = *l;
            eat(&(from as u64).to_le_bytes());
            eat(&(from_port as u64).to_le_bytes());
            eat(&(to as u64).to_le_bytes());
            eat(&(to_port as u64).to_le_bytes());
            eat(&bandwidth_bps.to_le_bytes());
            eat(&latency_ns.to_le_bytes());
        }
        h
    }

    #[test]
    fn fleet_thousand_nodes_deterministic_across_runs() {
        let p = FleetParams::default();
        assert!(p.node_count() >= 1000, "default fleet is thousand-node");
        let a = generate_fleet(&p);
        let b = generate_fleet(&p);
        assert_eq!(a.nodes.len() as u64, p.node_count());
        assert_eq!(a, b, "same seed, same fleet");
        assert_eq!(digest(&a), digest(&b));
        // Pinned: any change to the vendored RNG, the generator's draw
        // order, or platform-dependent arithmetic breaks this constant.
        assert_eq!(digest(&a), 0x0c89_9955_e98a_f47c);
        // A different seed moves the digest (the structure is seeded,
        // not just the node count).
        let c = generate_fleet(&FleetParams {
            seed: 7,
            ..FleetParams::default()
        });
        assert_ne!(digest(&a), digest(&c));
        assert_eq!(a.nodes.len(), c.nodes.len());
    }

    #[test]
    fn fleet_shape_and_capacities() {
        let p = FleetParams {
            pops: 4,
            platforms_per_pop: 2,
            clients_per_pop: 1,
            seed: 1,
        };
        let t = generate_fleet(&p);
        assert_eq!(t.platforms().len(), 8);
        // Every platform has a bounded seeded spec and a unique pool.
        let mut pools = std::collections::HashSet::new();
        for id in t.platforms() {
            let NodeKind::Platform(spec) = &t.node(id).kind else {
                unreachable!()
            };
            assert!((8..=64).contains(&spec.capacity));
            assert!((4 * 1024..=64 * 1024).contains(&spec.mem_mb));
            assert!(pools.insert(spec.addr_pool), "pools must not collide");
        }
        // Links carry class-banded attributes; all reverse links exist.
        for l in &t.links {
            assert!(l.bandwidth_bps >= 1_000_000_000);
            assert!(l.latency_ns >= 10_000);
            assert!(t
                .links
                .iter()
                .any(|m| m.from == l.to && m.to == l.from && m.latency_ns == l.latency_ns));
        }
        // Every platform is reachable from the internet over the fabric.
        let internet = t.index_of("internet").unwrap();
        let paths = t.paths_from(internet);
        for id in t.platforms() {
            let attrs = paths[id].expect("platform reachable");
            assert!(attrs.latency_ns > 0);
            assert!(attrs.bandwidth_bps > 0);
        }
    }
}
