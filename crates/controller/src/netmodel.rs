//! Compiling a topology snapshot plus installed processing modules into
//! one flat symbolic graph.
//!
//! This is the "compile" phase of the controller (Figure 10 reports its
//! cost separately from the checking phase): every router becomes an LPM
//! branching model, every operator middlebox and every installed module is
//! flattened element-by-element, and every platform gets a vswitch demux
//! node that steers traffic by module address — mirroring the OpenFlow
//! rules the controller installs at runtime.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_click::{ClickConfig, Registry};
use innet_packet::Cidr;
use innet_symnet::{model_for, AnyOutputModel, EgressModel, IdentityModel, SymError, SymGraph};
use innet_topology::{NodeId, NodeKind, Topology};

/// A processing module the controller has committed to a platform.
#[derive(Debug, Clone)]
pub struct InstalledModule {
    /// Controller-unique id.
    pub id: u64,
    /// Unique module name (referenced by `module:element:port`
    /// way-points).
    pub name: String,
    /// Platform hosting the module.
    pub platform: NodeId,
    /// Address assigned to the module.
    pub addr: Ipv4Addr,
    /// The (possibly sandbox-wrapped) configuration that runs.
    pub config: ClickConfig,
    /// Whether a sandbox was injected.
    pub sandboxed: bool,
    /// Owner (client id).
    pub owner: String,
}

/// The compiled network model plus the name maps requirement verification
/// needs.
pub struct NetworkModel {
    /// The flat symbolic graph.
    pub graph: SymGraph,
    /// Injection node for Internet-originated traffic.
    pub internet_src: usize,
    /// Egress sink for traffic leaving toward the Internet.
    pub internet_dst: usize,
    /// Per client subnet: (subnet, injection node, egress sink).
    pub client_edges: Vec<(Cidr, usize, usize)>,
    /// `(module name, element name)` → graph node.
    pub module_elements: HashMap<(String, String), usize>,
    /// Topology middlebox name → its entry (FromNetfront) nodes.
    pub middlebox_entries: HashMap<String, Vec<usize>>,
    /// Platform name → its vswitch demux node.
    pub platform_switches: HashMap<String, usize>,
    /// Module name → its ingress fan node.
    pub module_ingress: HashMap<String, usize>,
    /// Operator-internal prefixes (platform pools + client subnets).
    pub internal_prefixes: Vec<Cidr>,
    /// When set, Internet-sourced symbolic traffic is constrained to
    /// sources *outside* the internal prefixes (§7 ingress filtering).
    pub ingress_filtering: bool,
}

fn iface_of(args: &[String]) -> u16 {
    args.first()
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or(0)
}

/// Where flattened configs expose their boundary ports.
struct FlatConfig {
    /// iface → (node, in port 0) accepting external delivery.
    entries: HashMap<u16, usize>,
    /// iface → (node emitting on out port 0) for external transmission.
    exits: HashMap<u16, usize>,
}

/// Flattens `cfg` into `graph` with names prefixed `prefix/`.
/// `FromNetfront(i)`/`ToNetfront(i)` become identity boundary nodes
/// recorded in the returned [`FlatConfig`].
fn flatten_config(
    graph: &mut SymGraph,
    prefix: &str,
    cfg: &ClickConfig,
    registry: &Registry,
) -> Result<FlatConfig, SymError> {
    let mut flat = FlatConfig {
        entries: HashMap::new(),
        exits: HashMap::new(),
    };
    for decl in &cfg.elements {
        let name = format!("{prefix}/{}", decl.name);
        let idx = match decl.class.as_str() {
            "FromNetfront" | "FromDevice" => {
                let idx = graph.add_node(&name, Box::new(IdentityModel("FromNetfront")))?;
                flat.entries.insert(iface_of(&decl.args), idx);
                idx
            }
            "ToNetfront" | "ToDevice" => {
                let idx = graph.add_node(&name, Box::new(IdentityModel("ToNetfront")))?;
                flat.exits.insert(iface_of(&decl.args), idx);
                idx
            }
            other => graph.add_node(&name, model_for(other, &decl.args, registry)?)?,
        };
        let _ = idx;
    }
    for c in &cfg.connections {
        graph.connect_names(
            &format!("{prefix}/{}", c.from.element),
            c.from.port,
            &format!("{prefix}/{}", c.to.element),
            c.to.port,
        )?;
    }
    Ok(flat)
}

/// Compiles the topology and installed modules into a [`NetworkModel`].
pub fn compile(
    topo: &Topology,
    modules: &[InstalledModule],
    registry: &Registry,
) -> Result<NetworkModel, SymError> {
    let mut graph = SymGraph::new();
    // (topo node, port) → (sym node, sym out port) and (sym node, in port).
    let mut out_map: HashMap<(NodeId, usize), (usize, usize)> = HashMap::new();
    let mut in_map: HashMap<(NodeId, usize), (usize, usize)> = HashMap::new();

    let mut internet_src = None;
    let mut internet_dst = None;
    let mut client_edges = Vec::new();
    let mut internal_prefixes = Vec::new();
    let mut module_elements = HashMap::new();
    let mut middlebox_entries = HashMap::new();
    let mut platform_switches = HashMap::new();
    let mut module_ingress = HashMap::new();

    let ports_used = |topo: &Topology, id: NodeId| -> Vec<usize> {
        let mut ports: Vec<usize> = topo
            .links
            .iter()
            .flat_map(|l| {
                let mut v = Vec::new();
                if l.from == id {
                    v.push(l.from_port);
                }
                if l.to == id {
                    v.push(l.to_port);
                }
                v
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    };

    for (id, node) in topo.nodes.iter().enumerate() {
        match &node.kind {
            NodeKind::Internet => {
                let src = graph.add_node(
                    format!("{}.src", node.name),
                    Box::new(IdentityModel("Edge")),
                )?;
                let dst = graph.add_node(
                    format!("{}.dst", node.name),
                    Box::new(EgressModel(id as u16)),
                )?;
                internet_src = Some(src);
                internet_dst = Some(dst);
                for p in ports_used(topo, id) {
                    out_map.insert((id, p), (src, 0));
                    in_map.insert((id, p), (dst, 0));
                }
            }
            NodeKind::ClientSubnet(cidr) => {
                internal_prefixes.push(*cidr);
                let src = graph.add_node(
                    format!("{}.src", node.name),
                    Box::new(IdentityModel("Edge")),
                )?;
                let dst = graph.add_node(
                    format!("{}.dst", node.name),
                    Box::new(EgressModel(id as u16)),
                )?;
                client_edges.push((*cidr, src, dst));
                for p in ports_used(topo, id) {
                    out_map.insert((id, p), (src, 0));
                    in_map.insert((id, p), (dst, 0));
                }
            }
            NodeKind::Router(routes) => {
                let args: Vec<String> = routes.iter().map(|(c, p)| format!("{c} {p}")).collect();
                let idx =
                    graph.add_node(&node.name, model_for("StaticIPLookup", &args, registry)?)?;
                for p in ports_used(topo, id) {
                    out_map.insert((id, p), (idx, p));
                    in_map.insert((id, p), (idx, 0));
                }
            }
            NodeKind::Middlebox(cfg) => {
                let flat = flatten_config(&mut graph, &node.name, cfg, registry)?;
                middlebox_entries
                    .insert(node.name.clone(), flat.entries.values().copied().collect());
                for (&iface, &entry) in &flat.entries {
                    in_map.insert((id, iface as usize), (entry, 0));
                }
                for (&iface, &exit) in &flat.exits {
                    out_map.insert((id, iface as usize), (exit, 0));
                }
            }
            NodeKind::Platform(spec) => {
                internal_prefixes.push(spec.addr_pool);
                let local: Vec<&InstalledModule> =
                    modules.iter().filter(|m| m.platform == id).collect();
                // The vswitch demux: one `dst host <addr>` rule per module
                // (mirroring the installed OpenFlow rules).
                let switch = if local.is_empty() {
                    // No tenants: all traffic entering the platform drops.
                    graph.add_node(
                        format!("{}/switch", node.name),
                        Box::new(innet_symnet::DropModel("EmptyPlatform")),
                    )?
                } else {
                    let rules: Vec<String> = local
                        .iter()
                        .map(|m| format!("dst host {}", m.addr))
                        .collect();
                    graph.add_node(
                        format!("{}/switch", node.name),
                        model_for("IPClassifier", &rules, registry)?,
                    )?
                };
                let out = graph.add_node(
                    format!("{}/out", node.name),
                    Box::new(IdentityModel("PlatformUplink")),
                )?;
                platform_switches.insert(node.name.clone(), switch);
                for p in ports_used(topo, id) {
                    in_map.insert((id, p), (switch, 0));
                    out_map.insert((id, p), (out, 0));
                }

                for (mi, module) in local.iter().enumerate() {
                    // Graph node names must be unique, but module names may
                    // repeat across deployments — the id disambiguates.
                    // Way-point lookups still go through the name-keyed
                    // maps below (later instances win on a name clash).
                    let prefix = format!("{}/{}#{}", node.name, module.name, module.id);
                    let flat = flatten_config(&mut graph, &prefix, &module.config, registry)?;
                    for decl in &module.config.elements {
                        let idx = graph.node_index(&format!("{prefix}/{}", decl.name))?;
                        module_elements.insert((module.name.clone(), decl.name.clone()), idx);
                    }
                    // Fan external deliveries to every module interface.
                    let ingress = graph.add_node(
                        format!("{prefix}/__ingress"),
                        Box::new(AnyOutputModel {
                            name: "ModuleIngress",
                            n: flat.entries.len().max(1),
                        }),
                    )?;
                    module_ingress.insert(module.name.clone(), ingress);
                    graph.connect(switch, mi, ingress, 0);
                    for (fan, (_iface, entry)) in flat.entries.iter().enumerate() {
                        graph.connect(ingress, fan, *entry, 0);
                    }
                    // Every module exit feeds the platform uplink.
                    for (_iface, exit) in flat.exits {
                        graph.connect(exit, 0, out, 0);
                    }
                }
            }
        }
    }

    // Wire topology links.
    for l in &topo.links {
        let Some(&(sn, sp)) = out_map.get(&(l.from, l.from_port)) else {
            continue;
        };
        let Some(&(tn, tp)) = in_map.get(&(l.to, l.to_port)) else {
            continue;
        };
        graph.connect(sn, sp, tn, tp);
    }

    Ok(NetworkModel {
        graph,
        internet_src: internet_src
            .ok_or_else(|| SymError::Config("topology has no internet edge".to_string()))?,
        internet_dst: internet_dst
            .ok_or_else(|| SymError::Config("topology has no internet edge".to_string()))?,
        client_edges,
        module_elements,
        middlebox_entries,
        platform_switches,
        module_ingress,
        internal_prefixes,
        ingress_filtering: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_symnet::{ExecOptions, Field, SymPacket};

    #[test]
    fn compiles_figure3() {
        let topo = Topology::figure3();
        let model = compile(&topo, &[], &Registry::standard()).unwrap();
        assert!(model.graph.len() > 10);
        assert_eq!(model.client_edges.len(), 1);
        assert_eq!(model.platform_switches.len(), 3);
        assert!(model.middlebox_entries.contains_key("HTTPOptimizer"));
    }

    #[test]
    fn traffic_reaches_installed_module() {
        let topo = Topology::figure3();
        let p3 = topo.index_of("platform3").unwrap();
        let module = InstalledModule {
            id: 1,
            name: "batcher".to_string(),
            platform: p3,
            addr: Ipv4Addr::new(203, 0, 113, 10),
            config: ClickConfig::parse(
                "FromNetfront() -> IPFilter(allow udp dst port 1500) \
                 -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();",
            )
            .unwrap(),
            sandboxed: false,
            owner: "c1".to_string(),
        };
        let model = compile(&topo, &[module], &Registry::standard()).unwrap();
        let res = model.graph.run(
            model.internet_src,
            0,
            SymPacket::unconstrained(),
            &ExecOptions::default(),
        );
        // Some flow must exit at the client edge with the rewritten
        // destination.
        let client_sink_iface = topo.index_of("clients").unwrap() as u16;
        let delivered: Vec<_> = res
            .egress
            .iter()
            .filter(|(iface, flow)| {
                *iface == client_sink_iface
                    && flow.provably_eq(
                        Field::IpDst,
                        u32::from(Ipv4Addr::new(172, 16, 15, 133)) as u64,
                    )
            })
            .collect();
        assert!(
            !delivered.is_empty(),
            "internet UDP flow reaches the client via the module; egress count = {}",
            res.egress.len()
        );
    }

    #[test]
    fn empty_platform_blackholes() {
        let topo = Topology::figure3();
        let model = compile(&topo, &[], &Registry::standard()).unwrap();
        let res = model.graph.run(
            model.internet_src,
            0,
            SymPacket::unconstrained(),
            &ExecOptions::default(),
        );
        // Without modules, nothing can come back out of a platform: all
        // egress flows exit at the internet or client edges only.
        for (iface, _) in &res.egress {
            let name = topo.node(*iface as usize).name.as_str();
            assert!(name == "internet" || name == "clients", "egress at {name}");
        }
    }
}
