//! The unified observability layer end to end: one shared registry wired
//! through the controller, the host, the switch controller, and the VMs'
//! Click routers, driven by a flow storm with idle reclamation, then
//! exported in both Prometheus text format and JSON.
//!
//! The closing invariant is the point of the exercise: every packet the
//! storm sent is delivered, buffered, or counted under a named drop
//! reason — nothing disappears silently.
//!
//! Run with: `cargo run -p innet-examples --bin metrics`

use std::net::Ipv4Addr;

use innet::obs;
use innet::platform::{ClientEntry, Host, SwitchController};
use innet::prelude::*;

const SEC: u64 = 1_000_000_000;

fn main() {
    let reg = obs::Registry::new();

    // Control plane: a controller verifying deployments, instrumented.
    let mut ctl = Controller::new(Topology::figure3());
    ctl.attach_metrics(&reg);
    ctl.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    let request = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;
    ctl.deploy("mobile-7", ClientRequest::parse(request).unwrap())
        .expect("deployable");
    ctl.deploy("mobile-7", ClientRequest::parse(request).unwrap())
        .expect("cache hit deploys too");

    // Data plane: a host and switch controller sharing the registry.
    let mut host = Host::with_obs(16 * 1024, &reg);
    let mut sw = SwitchController::new();
    sw.attach_metrics(&reg);
    let tenants: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
    for (i, &addr) in tenants.iter().enumerate() {
        sw.register(ClientEntry {
            addr,
            config: ClickConfig::parse(
                "FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();",
            )
            .unwrap(),
            stateful: i % 2 == 0,
        });
    }

    // The flow storm: bursts to every tenant, strangers mixed in, idle
    // reclamation sweeping between bursts so VMs suspend and resume.
    let mut now = 0;
    for round in 0..400u64 {
        now = round * SEC / 8;
        let tenant = tenants[(round % tenants.len() as u64) as usize];
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 40_000 + round as u16)
            .dst(tenant, 1500)
            .pad_to(128)
            .build();
        sw.on_packet(&mut host, pkt, now).expect("switch accepts");
        if round % 5 == 0 {
            let stranger = PacketBuilder::udp()
                .dst(Ipv4Addr::new(9, 9, 9, round as u8), 1)
                .build();
            sw.on_packet(&mut host, stranger, now).expect("drops count");
        }
        if round % 16 == 15 {
            sw.reclaim_idle(&mut host, now, 2 * SEC);
        }
        host.advance(now);
    }

    // The storm pauses: idle reclamation suspends the stateful tenants
    // and destroys the stateless ones.
    now += 10 * SEC;
    sw.reclaim_idle(&mut host, now, 2 * SEC);
    host.advance(now);

    // A second wave: suspended tenants resume, destroyed ones re-boot,
    // and a mid-flow TCP ACK to a reclaimed tenant has nowhere to go.
    let ack = PacketBuilder::tcp()
        .dst(tenants[1], 80)
        .flags(innet::packet::TcpFlags::ACK)
        .build();
    sw.on_packet(&mut host, ack, now).expect("drop counted");
    for (i, &tenant) in tenants.iter().enumerate() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 50_000 + i as u16)
            .dst(tenant, 1500)
            .pad_to(128)
            .build();
        now += SEC / 8;
        sw.on_packet(&mut host, pkt, now).expect("switch accepts");
    }
    host.advance(now + 30 * SEC);

    let snap = reg.snapshot();
    println!("==== Prometheus text exposition ====");
    print!("{}", snap.to_prometheus());
    println!();
    println!("==== JSON ====");
    print!("{}", snap.to_json());

    // The zero-silent-drops invariant, straight from the registry.
    let s = sw.stats();
    let drops = reg.labeled_counter("innet_switch_drops_total", "reason");
    println!();
    println!(
        "invariant: {} packets in == {} delivered + {} buffered + {} dropped ({})",
        s.packets,
        s.delivered,
        s.buffered,
        s.dropped,
        drops
            .cells()
            .iter()
            .map(|(reason, n)| format!("{reason}={n}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    assert_eq!(s.packets, s.delivered + s.buffered + s.dropped);
    assert_eq!(drops.total(), s.dropped);
    println!("invariant holds: no silent packet loss");
}
