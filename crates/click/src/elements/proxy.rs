//! `TransparentProxy` — interception of HTTP traffic toward a proxy.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::{FlowKey, IpProto, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `TransparentProxy(PROXY_ADDR, PROXY_PORT[, INTERCEPT_PORT])`.
///
/// Input 0 (client → server): TCP packets whose destination port is
/// `INTERCEPT_PORT` (default 80) are redirected to the proxy — destination
/// address/port rewritten, original destination remembered. Other traffic
/// passes untouched. Output 0.
///
/// Input 1 (proxy → client): the reverse rewrite restores the original
/// server as the apparent source. Output 1.
///
/// This element intercepts traffic *addressed to someone else* and emits
/// packets whose source is the (spoofed) original server — which is why
/// Table 1 marks the transparent proxy as unsafe for third parties and
/// clients, and acceptable only for the operator itself.
#[derive(Debug)]
pub struct TransparentProxy {
    proxy: Ipv4Addr,
    proxy_port: u16,
    intercept_port: u16,
    /// proxy-side flow key -> original (server addr, server port).
    restore: HashMap<FlowKey, (Ipv4Addr, u16)>,
    redirected: u64,
    passed: u64,
}

impl TransparentProxy {
    /// Parses `TransparentProxy(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<TransparentProxy, ElementError> {
        args.expect_len_range(2, 3)?;
        Ok(TransparentProxy {
            proxy: args.addr_at(0)?,
            proxy_port: args.parse_at(1)?,
            intercept_port: args.parse_or(2, 80)?,
            restore: HashMap::new(),
            redirected: 0,
            passed: 0,
        })
    }

    /// Counters: (redirected, passed untouched).
    pub fn counters(&self) -> (u64, u64) {
        (self.redirected, self.passed)
    }

    /// The configured redirect target: (proxy addr, proxy port,
    /// intercepted destination port).
    pub fn params(&self) -> (Ipv4Addr, u16, u16) {
        (self.proxy, self.proxy_port, self.intercept_port)
    }
}

impl Element for TransparentProxy {
    fn class_name(&self) -> &'static str {
        "TransparentProxy"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(2, 2)
    }

    fn push(&mut self, port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        match port {
            0 => {
                let intercept = pkt.ip_proto() == Ok(IpProto::Tcp)
                    && pkt
                        .tcp()
                        .map(|t| t.dst_port() == self.intercept_port)
                        .unwrap_or(false);
                if intercept {
                    let key = FlowKey::of(&pkt).expect("TCP packet has a key");
                    let orig = (key.dst, key.dst_port);
                    let new_key = FlowKey {
                        dst: self.proxy,
                        dst_port: self.proxy_port,
                        ..key
                    };
                    // A reply from the proxy arrives with the reversed
                    // proxy-side tuple.
                    self.restore.insert(new_key.reversed(), orig);
                    if let Ok(mut ip) = pkt.ipv4_mut() {
                        ip.set_dst(self.proxy);
                        ip.update_checksum();
                    }
                    if let Ok(mut t) = pkt.tcp_mut() {
                        t.set_dst_port(self.proxy_port);
                    }
                    self.redirected += 1;
                } else {
                    self.passed += 1;
                }
                out.push(0, pkt);
            }
            _ => {
                if let Ok(key) = FlowKey::of(&pkt) {
                    if let Some(&(addr, p)) = self.restore.get(&key) {
                        if let Ok(mut ip) = pkt.ipv4_mut() {
                            ip.set_src(addr);
                            ip.update_checksum();
                        }
                        if let Ok(mut t) = pkt.tcp_mut() {
                            t.set_src_port(p);
                        }
                    }
                }
                out.push(1, pkt);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    const PROXY: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 80);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn tp() -> TransparentProxy {
        TransparentProxy::from_args(&ConfigArgs::parse("TransparentProxy", "192.0.2.80, 3128"))
            .unwrap()
    }

    #[test]
    fn http_redirected_to_proxy() {
        let mut p = tp();
        let mut s = VecSink::new();
        let req = PacketBuilder::tcp()
            .src(CLIENT, 5000)
            .dst(SERVER, 80)
            .build();
        p.push(0, req, &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        assert_eq!(out.ipv4().unwrap().dst(), PROXY);
        assert_eq!(out.tcp().unwrap().dst_port(), 3128);
    }

    #[test]
    fn non_http_passes() {
        let mut p = tp();
        let mut s = VecSink::new();
        let ssh = PacketBuilder::tcp()
            .src(CLIENT, 5000)
            .dst(SERVER, 22)
            .build();
        p.push(0, ssh, &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        assert_eq!(out.ipv4().unwrap().dst(), SERVER);
        assert_eq!(p.counters(), (0, 1));
    }

    #[test]
    fn reply_spoofs_original_server() {
        let mut p = tp();
        let mut s = VecSink::new();
        p.push(
            0,
            PacketBuilder::tcp()
                .src(CLIENT, 5000)
                .dst(SERVER, 80)
                .build(),
            &Context::default(),
            &mut s,
        );
        let reply = PacketBuilder::tcp()
            .src(PROXY, 3128)
            .dst(CLIENT, 5000)
            .build();
        p.push(1, reply, &Context::default(), &mut s);
        let out = &s.pushed[1].1;
        assert_eq!(out.ipv4().unwrap().src(), SERVER, "proxy is invisible");
        assert_eq!(out.tcp().unwrap().src_port(), 80);
    }
}
