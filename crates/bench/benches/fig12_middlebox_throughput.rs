//! Figure 12: aggregate throughput of many middlebox VMs of four kinds
//! on a single core. Measured natively.

use innet::experiments::fig12_middleboxes::{middlebox_sweep, KINDS};
use innet_bench::{quick_mode, Report};

fn main() {
    let counts: Vec<usize> = if quick_mode() {
        vec![1, 10, 40]
    } else {
        vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    };
    let frame = 1472;
    let mut r = Report::new(
        "fig12_middlebox_throughput",
        "Figure 12: aggregate throughput (Gbit/s) vs VM count, one core",
    );
    let header = format!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "VMs", KINDS[0], KINDS[1], KINDS[2], KINDS[3]
    );
    r.line(&header);
    let sweeps: Vec<Vec<_>> = KINDS
        .iter()
        .map(|kind| middlebox_sweep(kind, &counts, frame))
        .collect();
    for (i, &n) in counts.iter().enumerate() {
        r.line(&format!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            n, sweeps[0][i].gbps, sweeps[1][i].gbps, sweeps[2][i].gbps, sweeps[3][i].gbps
        ));
    }
    r.blank();
    r.line(
        "paper: high, flat aggregate regardless of middlebox count and \
         type (their testbed tops at ~10 Gbit/s)",
    );
    r.finish();
}
