//! A deploy storm through the staged admission pipeline: a fleet of
//! tenants installs alpha-renamed copies of one stock chain, and
//! compositional chain summaries make every admission after the first
//! replay a memoized transfer function instead of re-executing the
//! whole graph symbolically.
//!
//! The verdict cache never helps here — every module name is unique, so
//! each request is a fresh verification. What *does* repeat is the
//! chain itself: the summary cache keys on the name-free canonical
//! slice, which all alpha-renamed copies share.
//!
//! Run with: `cargo run -p innet-examples --bin deploy_storm`

use innet::prelude::*;
use std::time::Instant;

const TENANTS: usize = 16;

/// One stock chain, deployed over and over under different module (and
/// thus element) names. Chain-safe end to end, so a single summary
/// covers it.
const STOCK: &str = "FromNetfront() -> CheckIPHeader() -> DecIPTTL() \
     -> IPFilter(allow udp dst port 1500) -> SetTOS(12) -> Counter() \
     -> Paint(7) -> DecIPTTL() -> Counter() -> SetTOS(30) \
     -> SetIPDst(172.16.15.133) -> ToNetfront();";

fn controller() -> Controller {
    let mut ctl = Controller::new(Topology::figure3());
    for i in 0..TENANTS {
        ctl.register_client(
            format!("tenant{i}"),
            RequesterClass::Client,
            vec!["172.16.15.133".parse().unwrap()],
        );
    }
    // Force the symbolic stage: the abstract-interpretation fast path
    // would admit these configs without touching the engines compared.
    ctl.set_analysis_enabled(false);
    ctl
}

/// Deploys `2 * TENANTS` uniquely named copies of the stock chain and
/// returns the elapsed time plus the controller for stats inspection.
fn storm(summaries: bool) -> (std::time::Duration, Controller) {
    let mut ctl = controller();
    ctl.set_summaries_enabled(summaries);
    let t = Instant::now();
    for i in 0..2 * TENANTS {
        let req = ClientRequest::parse(&format!("module m{i}:\n{STOCK}")).unwrap();
        ctl.deploy(&format!("tenant{}", i % TENANTS), req)
            .expect("stock chain is deployable");
    }
    (t.elapsed(), ctl)
}

fn main() {
    let n = 2 * TENANTS;

    // These deploys all commit, so total admission time is dominated by
    // placement; the stage the summaries accelerate is the symbolic
    // check, reported per mode below. (The deploy_storm *bench* isolates
    // uncached verification over 100k requests instead.)
    let (_, ctl) = storm(false);
    let s = ctl.stats();
    assert_eq!(s.cache_hits, 0, "unique module names defeat verdict replay");
    let whole_symb = s.stage_symbolic_ns as f64 / n as f64 / 1e3;
    println!("whole-graph:   {n} uncached admissions, symbolic stage {whole_symb:.1} µs each");

    let (_, ctl) = storm(true);
    let s = ctl.stats();
    assert_eq!(s.cache_hits, 0, "unique module names defeat verdict replay");
    let comp_symb = s.stage_symbolic_ns as f64 / n as f64 / 1e3;
    println!("compositional: {n} uncached admissions, symbolic stage {comp_symb:.1} µs each");
    println!(
        "summary cache: {} hits, {} misses ({} chain elements replayed instead of re-executed)",
        s.summary_cache_hits, s.summary_cache_misses, s.summary_chain_nodes
    );
    println!(
        "stage means:   lint {:.1} µs | fast path {:.1} µs | symbolic {:.1} µs | placement {:.1} µs",
        s.stage_lint_ns as f64 / n as f64 / 1e3,
        s.stage_fastpath_ns as f64 / n as f64 / 1e3,
        s.stage_symbolic_ns as f64 / n as f64 / 1e3,
        s.stage_placement_ns as f64 / n as f64 / 1e3,
    );
    println!(
        "speedup:       {:.2}x lower symbolic-stage latency with summaries",
        whole_symb / comp_symb
    );

    // The fleet-wide caches that did the work: one summary per distinct
    // slice (every alpha-renamed copy shares it), plus the lint memo
    // shared by both modes.
    println!(
        "memo sizes:    {} chain summaries | {} lint memo hits",
        ctl.cached_summaries(),
        s.lint_cache_hits,
    );
}
