//! `ChangeEnforcer` — the In-Net sandbox element (paper §4.4, §7.2).
//!
//! When static analysis cannot prove a processing module safe, the
//! controller wraps it with a `ChangeEnforcer` on every netfront path. The
//! enforcer behaves like a stateful firewall around the module: traffic from
//! the world to the module always passes (and implicitly authorizes the
//! source as a response destination, with an idle timeout); traffic from the
//! module to the world passes only when it is not spoofed and its
//! destination is authorized (white-listed or implicitly authorized).

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// Default idle timeout for implicit authorizations (60 s, mirroring
/// typical stateful-firewall UDP timeouts).
pub const DEFAULT_AUTH_TIMEOUT_S: f64 = 60.0;

/// `ChangeEnforcer(MODULE_ADDR[, timeout SECS][, WHITELIST...])`.
///
/// Ports: input 0 = world → module (emitted on output 0); input 1 =
/// module → world (emitted on output 1 when conforming, dropped and counted
/// otherwise).
#[derive(Debug)]
pub struct ChangeEnforcer {
    module_addr: Ipv4Addr,
    whitelist: Vec<Ipv4Addr>,
    timeout_ns: u64,
    /// Implicitly authorized destinations -> last time they sent to us.
    authorized: HashMap<Ipv4Addr, u64>,
    passed_in: u64,
    passed_out: u64,
    blocked_spoof: u64,
    blocked_dst: u64,
}

impl ChangeEnforcer {
    /// Creates an enforcer for the module at `module_addr`.
    pub fn new(module_addr: Ipv4Addr, whitelist: Vec<Ipv4Addr>, timeout_ns: u64) -> Self {
        ChangeEnforcer {
            module_addr,
            whitelist,
            timeout_ns: timeout_ns.max(1),
            authorized: HashMap::new(),
            passed_in: 0,
            passed_out: 0,
            blocked_spoof: 0,
            blocked_dst: 0,
        }
    }

    /// Parses `ChangeEnforcer(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<ChangeEnforcer, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "ChangeEnforcer",
            message,
        };
        if args.is_empty() {
            return Err(bad("needs the module address".to_string()));
        }
        let module_addr = args.addr_at(0)?;
        let mut whitelist = Vec::new();
        let mut timeout_s = DEFAULT_AUTH_TIMEOUT_S;
        for arg in args.all().skip(1) {
            if let Some(rest) = arg.strip_prefix("timeout") {
                timeout_s = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad timeout '{arg}'")))?;
            } else {
                whitelist.push(
                    arg.parse()
                        .map_err(|_| bad(format!("bad white-list address '{arg}'")))?,
                );
            }
        }
        if timeout_s <= 0.0 {
            return Err(bad("timeout must be positive".to_string()));
        }
        Ok(ChangeEnforcer::new(
            module_addr,
            whitelist,
            (timeout_s * 1e9) as u64,
        ))
    }

    /// Counters: (inbound passed, outbound passed, blocked spoofed,
    /// blocked unauthorized destination).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.passed_in,
            self.passed_out,
            self.blocked_spoof,
            self.blocked_dst,
        )
    }

    /// The configured module address and white-list.
    pub fn params(&self) -> (Ipv4Addr, &[Ipv4Addr]) {
        (self.module_addr, &self.whitelist)
    }

    fn authorized_dst(&self, dst: Ipv4Addr, now_ns: u64) -> bool {
        if self.whitelist.contains(&dst) {
            return true;
        }
        self.authorized
            .get(&dst)
            .is_some_and(|&last| now_ns.saturating_sub(last) <= self.timeout_ns)
    }
}

impl Element for ChangeEnforcer {
    fn class_name(&self) -> &'static str {
        "ChangeEnforcer"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(2, 2)
    }

    fn push(&mut self, port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        match port {
            0 => {
                // World -> module: record the implicit authorization.
                if let Ok(ip) = pkt.ipv4() {
                    self.authorized.insert(ip.src(), ctx.now_ns);
                }
                self.passed_in += 1;
                out.push(0, pkt);
            }
            _ => {
                // Module -> world: anti-spoof then default-off.
                let Ok(ip) = pkt.ipv4() else {
                    self.blocked_spoof += 1;
                    return;
                };
                if ip.src() != self.module_addr {
                    self.blocked_spoof += 1;
                    return;
                }
                if !self.authorized_dst(ip.dst(), ctx.now_ns) {
                    self.blocked_dst += 1;
                    return;
                }
                self.passed_out += 1;
                out.push(1, pkt);
            }
        }
    }

    fn tick(&mut self, ctx: &Context, _out: &mut dyn Sink) {
        let timeout = self.timeout_ns;
        let now = ctx.now_ns;
        self.authorized
            .retain(|_, &mut last| now.saturating_sub(last) <= timeout);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    const MODULE: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);
    const VICTIM: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 66);
    const LISTED: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 5);

    fn enforcer() -> ChangeEnforcer {
        ChangeEnforcer::from_args(&ConfigArgs::parse(
            "ChangeEnforcer",
            "192.0.2.10, timeout 60, 203.0.113.5",
        ))
        .unwrap()
    }

    #[test]
    fn implicit_authorization_flow() {
        let mut e = enforcer();
        let mut s = VecSink::new();
        // Client sends to module -> implicit authorization recorded.
        e.push(
            0,
            PacketBuilder::udp().src(CLIENT, 1).dst(MODULE, 2).build(),
            &Context::at(0),
            &mut s,
        );
        assert_eq!(s.pushed.len(), 1);
        // Module replies to the client -> allowed.
        e.push(
            1,
            PacketBuilder::udp().src(MODULE, 2).dst(CLIENT, 1).build(),
            &Context::at(1_000),
            &mut s,
        );
        assert_eq!(s.pushed.len(), 2);
        assert_eq!(s.pushed[1].0, 1);
    }

    #[test]
    fn unauthorized_destination_blocked() {
        let mut e = enforcer();
        let mut s = VecSink::new();
        e.push(
            1,
            PacketBuilder::udp().src(MODULE, 2).dst(VICTIM, 1).build(),
            &Context::at(0),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(e.counters().3, 1);
    }

    #[test]
    fn whitelist_always_allowed() {
        let mut e = enforcer();
        let mut s = VecSink::new();
        e.push(
            1,
            PacketBuilder::udp().src(MODULE, 2).dst(LISTED, 1).build(),
            &Context::at(0),
            &mut s,
        );
        assert_eq!(s.pushed.len(), 1);
    }

    #[test]
    fn spoofed_source_blocked() {
        let mut e = enforcer();
        let mut s = VecSink::new();
        // Even to a white-listed destination, a spoofed source is blocked.
        e.push(
            1,
            PacketBuilder::udp().src(VICTIM, 2).dst(LISTED, 1).build(),
            &Context::at(0),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(e.counters().2, 1);
    }

    #[test]
    fn authorization_expires() {
        let mut e = enforcer(); // 60 s timeout.
        let mut s = VecSink::new();
        e.push(
            0,
            PacketBuilder::udp().src(CLIENT, 1).dst(MODULE, 2).build(),
            &Context::at(0),
            &mut s,
        );
        e.push(
            1,
            PacketBuilder::udp().src(MODULE, 2).dst(CLIENT, 1).build(),
            &Context::at(61_000_000_000),
            &mut s,
        );
        assert_eq!(s.pushed.len(), 1, "reply after timeout blocked");
    }

    #[test]
    fn tick_reaps() {
        let mut e = enforcer();
        let mut s = VecSink::new();
        e.push(
            0,
            PacketBuilder::udp().src(CLIENT, 1).dst(MODULE, 2).build(),
            &Context::at(0),
            &mut s,
        );
        assert_eq!(e.authorized.len(), 1);
        e.tick(&Context::at(120_000_000_000), &mut s);
        assert!(e.authorized.is_empty());
    }
}
