//! The execution engine behind a runner: interpreted or compiled.
//!
//! Both engines execute the same verified [`ClickConfig`] with identical
//! semantics (the compiled plan is differentially tested against the
//! interpreter, which remains the oracle — see DESIGN.md §13); they differ
//! only in speed. Runners hold an [`Engine`] and dispatch through it, so
//! the choice is a [`RunnerConfig::compiled`](crate::RunnerConfig::compiled)
//! flag rather than a separate runner type.

use innet_click::{BatchResult, ClickConfig, CompiledRouter, Registry, Router, RouterError};
use innet_packet::Packet;

/// One tenant configuration instantiated for execution.
pub enum Engine {
    /// The element-graph interpreter ([`Router`]): boxed elements, hashed
    /// edges, linear rule scans. The reference engine.
    Interpreted(Router),
    /// The flat compiled plan ([`CompiledRouter`]): specialized
    /// classifiers, fused header stages, flat edges.
    Compiled(CompiledRouter),
}

impl Engine {
    /// Instantiates `cfg`, compiled or interpreted.
    pub fn build(
        cfg: &ClickConfig,
        registry: &Registry,
        compiled: bool,
    ) -> Result<Engine, RouterError> {
        Ok(if compiled {
            Engine::Compiled(CompiledRouter::compile(cfg, registry)?)
        } else {
            Engine::Interpreted(Router::from_config(cfg, registry)?)
        })
    }

    /// Whether this is the compiled engine.
    pub fn is_compiled(&self) -> bool {
        matches!(self, Engine::Compiled(_))
    }

    /// The interpreted router, when that is the engine (counter
    /// inspection via `element_as` only works against the interpreter —
    /// the compiled plan consumes its elements).
    pub fn router(&self) -> Option<&Router> {
        match self {
            Engine::Interpreted(r) => Some(r),
            Engine::Compiled(_) => None,
        }
    }

    /// The compiled plan, when that is the engine.
    pub fn compiled(&self) -> Option<&CompiledRouter> {
        match self {
            Engine::Interpreted(_) => None,
            Engine::Compiled(c) => Some(c),
        }
    }

    /// Publishes the engine's `innet_click_*` counters into `registry`.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        match self {
            Engine::Interpreted(r) => r.attach_metrics(registry),
            Engine::Compiled(c) => c.attach_metrics(registry),
        }
    }

    /// Pushes a batch through the engine (see `Router::push_batch`).
    pub fn push_batch(&mut self, batch: Vec<Packet>, now_ns: u64, step_ns: u64) -> BatchResult {
        match self {
            Engine::Interpreted(r) => r.push_batch(batch, now_ns, step_ns),
            Engine::Compiled(c) => c.push_batch(batch, now_ns, step_ns),
        }
    }

    /// Drains transmitted packets into `out` without allocating.
    pub fn take_tx_into(&mut self, out: &mut Vec<(u16, Packet)>) {
        match self {
            Engine::Interpreted(r) => r.take_tx_into(out),
            Engine::Compiled(c) => c.take_tx_into(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::plain_firewall;

    #[test]
    fn engine_exposes_only_its_own_kind() {
        let cfg = plain_firewall();
        let reg = Registry::standard();
        let interp = Engine::build(&cfg, &reg, false).unwrap();
        assert!(!interp.is_compiled());
        assert!(interp.router().is_some() && interp.compiled().is_none());
        let comp = Engine::build(&cfg, &reg, true).unwrap();
        assert!(comp.is_compiled());
        assert!(comp.router().is_none() && comp.compiled().is_some());
    }
}
