//! Tunneling elements: UDP encapsulation/decapsulation and IP-in-IP.
//!
//! The protocol-tunneling use case (paper §8, Figure 14) runs SCTP over UDP
//! or TCP tunnels; Table 1 shows the tunnel as the interesting static-
//! analysis case — the inner destination is only known at decapsulation
//! time, so a third party's tunnel endpoint needs sandboxing.

use std::any::Any;
use std::net::Ipv4Addr;

use innet_packet::{
    EtherType, IpProto, Ipv4View, MacAddr, Packet, ETHER_HDR_LEN, IPV4_HDR_LEN, UDP_HDR_LEN,
};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

fn fresh_ether_header(ethertype: EtherType) -> [u8; ETHER_HDR_LEN] {
    let mut hdr = [0u8; ETHER_HDR_LEN];
    hdr[0..6].copy_from_slice(&MacAddr::from_host_id(2).0);
    hdr[6..12].copy_from_slice(&MacAddr::from_host_id(1).0);
    hdr[12..14].copy_from_slice(&ethertype.0.to_be_bytes());
    hdr
}

fn build_outer(proto: IpProto, src: Ipv4Addr, dst: Ipv4Addr, l4: &[u8], inner: &[u8]) -> Packet {
    let total = ETHER_HDR_LEN + IPV4_HDR_LEN + l4.len() + inner.len();
    let mut buf = vec![0u8; total];
    buf[..ETHER_HDR_LEN].copy_from_slice(&fresh_ether_header(EtherType::IPV4));
    buf[ETHER_HDR_LEN] = 0x45;
    {
        let mut ip = Ipv4View::new_mut(&mut buf[ETHER_HDR_LEN..]).expect("sized buffer");
        ip.set_total_len((IPV4_HDR_LEN + l4.len() + inner.len()) as u16);
        ip.set_ttl(64);
        ip.set_proto(proto);
        ip.set_src(src);
        ip.set_dst(dst);
        ip.update_checksum();
    }
    let l4_off = ETHER_HDR_LEN + IPV4_HDR_LEN;
    buf[l4_off..l4_off + l4.len()].copy_from_slice(l4);
    buf[l4_off + l4.len()..].copy_from_slice(inner);
    Packet::from_bytes(buf)
}

/// `UDPTunnelEncap(SRC, SPORT, DST, DPORT)` — wraps each packet's IP
/// portion as the payload of a new UDP datagram.
#[derive(Debug)]
pub struct UdpTunnelEncap {
    src: Ipv4Addr,
    sport: u16,
    dst: Ipv4Addr,
    dport: u16,
}

impl UdpTunnelEncap {
    /// Parses `UDPTunnelEncap(SRC, SPORT, DST, DPORT)`.
    pub fn from_args(args: &ConfigArgs) -> Result<UdpTunnelEncap, ElementError> {
        args.expect_len(4)?;
        Ok(UdpTunnelEncap {
            src: args.addr_at(0)?,
            sport: args.parse_at(1)?,
            dst: args.addr_at(2)?,
            dport: args.parse_at(3)?,
        })
    }

    /// The configured outer header: (src, sport, dst, dport).
    pub fn params(&self) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
        (self.src, self.sport, self.dst, self.dport)
    }
}

impl Element for UdpTunnelEncap {
    fn class_name(&self) -> &'static str {
        "UDPTunnelEncap"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let inner = &pkt.bytes()[pkt.l3_offset()..];
        let mut udp = [0u8; UDP_HDR_LEN];
        udp[0..2].copy_from_slice(&self.sport.to_be_bytes());
        udp[2..4].copy_from_slice(&self.dport.to_be_bytes());
        udp[4..6].copy_from_slice(&((UDP_HDR_LEN + inner.len()) as u16).to_be_bytes());
        let outer = build_outer(IpProto::Udp, self.src, self.dst, &udp, inner);
        out.push(0, outer);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `UDPTunnelDecap()` — extracts the IP packet carried in a UDP payload and
/// re-frames it with a fresh Ethernet header. Non-UDP or malformed packets
/// are dropped.
#[derive(Debug, Default)]
pub struct UdpTunnelDecap {
    dropped: u64,
}

impl UdpTunnelDecap {
    /// Creates a decapsulator.
    pub fn new() -> UdpTunnelDecap {
        UdpTunnelDecap::default()
    }

    /// Packets dropped as undecapsulatable.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for UdpTunnelDecap {
    fn class_name(&self) -> &'static str {
        "UDPTunnelDecap"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let Ok(inner) = pkt.payload() else {
            self.dropped += 1;
            return;
        };
        if pkt.ip_proto() != Ok(IpProto::Udp) || Ipv4View::new(inner).is_err() {
            self.dropped += 1;
            return;
        }
        let mut buf = Vec::with_capacity(ETHER_HDR_LEN + inner.len());
        buf.extend_from_slice(&fresh_ether_header(EtherType::IPV4));
        buf.extend_from_slice(inner);
        out.push(0, Packet::from_bytes(buf));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `IPEncap(SRC, DST)` — IP-in-IP encapsulation (protocol 4).
#[derive(Debug)]
pub struct IpEncap {
    src: Ipv4Addr,
    dst: Ipv4Addr,
}

impl IpEncap {
    /// Parses `IPEncap(SRC, DST)`.
    pub fn from_args(args: &ConfigArgs) -> Result<IpEncap, ElementError> {
        args.expect_len(2)?;
        Ok(IpEncap {
            src: args.addr_at(0)?,
            dst: args.addr_at(1)?,
        })
    }

    /// The configured outer endpoints: (src, dst).
    pub fn params(&self) -> (Ipv4Addr, Ipv4Addr) {
        (self.src, self.dst)
    }
}

impl Element for IpEncap {
    fn class_name(&self) -> &'static str {
        "IPEncap"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let inner = &pkt.bytes()[pkt.l3_offset()..];
        let outer = build_outer(IpProto::IpIp, self.src, self.dst, &[], inner);
        out.push(0, outer);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `IPDecap()` — removes an IP-in-IP outer header.
#[derive(Debug, Default)]
pub struct IpDecap {
    dropped: u64,
}

impl IpDecap {
    /// Creates a decapsulator.
    pub fn new() -> IpDecap {
        IpDecap::default()
    }
}

impl Element for IpDecap {
    fn class_name(&self) -> &'static str {
        "IPDecap"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let ok = pkt.ip_proto() == Ok(IpProto::IpIp);
        let inner_off = pkt.l4_offset().ok().filter(|_| ok);
        match inner_off {
            Some(off) if Ipv4View::new(&pkt.bytes()[off..]).is_ok() => {
                let mut buf = Vec::with_capacity(ETHER_HDR_LEN + pkt.len() - off);
                buf.extend_from_slice(&fresh_ether_header(EtherType::IPV4));
                buf.extend_from_slice(&pkt.bytes()[off..]);
                out.push(0, Packet::from_bytes(buf));
            }
            _ => self.dropped += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    fn inner_pkt() -> Packet {
        PacketBuilder::raw(IpProto::Sctp)
            .src(Ipv4Addr::new(10, 1, 1, 1), 0)
            .dst(Ipv4Addr::new(10, 2, 2, 2), 0)
            .payload(b"sctp-chunk")
            .build()
    }

    fn encap() -> UdpTunnelEncap {
        UdpTunnelEncap::from_args(&ConfigArgs::parse(
            "UDPTunnelEncap",
            "1.1.1.1, 7000, 2.2.2.2, 7001",
        ))
        .unwrap()
    }

    #[test]
    fn udp_encap_wraps() {
        let mut e = encap();
        let mut s = VecSink::new();
        e.push(0, inner_pkt(), &Context::default(), &mut s);
        let outer = s.only(0).unwrap();
        let ip = outer.ipv4().unwrap();
        assert_eq!(ip.proto(), IpProto::Udp);
        assert_eq!(ip.src(), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(ip.dst(), Ipv4Addr::new(2, 2, 2, 2));
        assert!(ip.verify_checksum());
        assert_eq!(outer.udp().unwrap().dst_port(), 7001);
    }

    #[test]
    fn encap_decap_roundtrip() {
        let original = inner_pkt();
        let mut e = encap();
        let mut d = UdpTunnelDecap::new();
        let mut s = VecSink::new();
        e.push(0, original.clone(), &Context::default(), &mut s);
        let outer = s.pushed.pop().unwrap().1;
        d.push(0, outer, &Context::default(), &mut s);
        let inner = s.pushed.pop().unwrap().1;
        // The IP-and-beyond bytes are identical to the original — the
        // paper's "payload travels unchanged" invariant.
        assert_eq!(
            &inner.bytes()[ETHER_HDR_LEN..],
            &original.bytes()[ETHER_HDR_LEN..]
        );
    }

    #[test]
    fn decap_rejects_garbage() {
        let mut d = UdpTunnelDecap::new();
        let mut s = VecSink::new();
        d.push(0, PacketBuilder::tcp().build(), &Context::default(), &mut s);
        d.push(
            0,
            PacketBuilder::udp().payload(b"ab").build(),
            &Context::default(),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(d.dropped(), 2);
    }

    #[test]
    fn ipip_roundtrip() {
        let original = inner_pkt();
        let mut e = IpEncap::from_args(&ConfigArgs::parse("IPEncap", "1.1.1.1, 2.2.2.2")).unwrap();
        let mut d = IpDecap::new();
        let mut s = VecSink::new();
        e.push(0, original.clone(), &Context::default(), &mut s);
        let outer = s.pushed.pop().unwrap().1;
        assert_eq!(outer.ip_proto().unwrap(), IpProto::IpIp);
        d.push(0, outer, &Context::default(), &mut s);
        let inner = s.pushed.pop().unwrap().1;
        assert_eq!(
            &inner.bytes()[ETHER_HDR_LEN..],
            &original.bytes()[ETHER_HDR_LEN..]
        );
    }
}
