//! Schema-validates `BENCH_*.json` snapshot files (CI's bench-snapshot
//! smoke step). Exits non-zero with a diagnostic on the first invalid
//! file.
//!
//! Two snapshot schemas exist: throughput rows ([`BenchSnapshot`]) and
//! admission-latency rows ([`AdmissionSnapshot`]). The validator tries
//! both and accepts a file that satisfies either; a file that satisfies
//! neither reports both diagnostics.

use innet_bench::{AdmissionSnapshot, BenchSnapshot};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_snapshot <BENCH_*.json>...");
        std::process::exit(2);
    }
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                std::process::exit(1);
            }
        };
        let bench_err = match BenchSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
                continue;
            }
            Err(e) => e,
        };
        match AdmissionSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} admission rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
            }
            Err(adm_err) => {
                eprintln!(
                    "{path}: schema violation: not a throughput snapshot \
                     ({bench_err}) and not an admission snapshot ({adm_err})"
                );
                std::process::exit(1);
            }
        }
    }
}
