//! Virtual machines and the host that runs them, in virtual time.
//!
//! The host model charges calibrated latencies (see [`crate::calib`]) for
//! boot, suspend, and resume, and real memory accounting; the packet
//! processing *inside* a ClickOS VM is the real `innet_click::Router`, so
//! data-plane behaviour is executed, not modelled.

use innet_click::{ClickConfig, Registry, Router, RouterError};
use innet_packet::Packet;

use crate::calib::{
    boot_latency_ns, resume_latency_ns, suspend_latency_ns, vm_mem_mb, VmTimingKind,
};

/// Identifier of a VM within one host.
pub type VmId = usize;

/// Why the platform dropped a packet.
///
/// Every packet-drop path in the platform names one of these reasons and
/// increments a reason-labeled drop counter (`innet_switch_drops_total` /
/// `innet_host_drops_total`), so
/// `packets_in == delivered + buffered + Σ drops_by_reason` is a
/// checkable invariant — no drop is ever silent. See DESIGN.md §9 for
/// the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The destination is not a registered client (or not IPv4).
    UnknownDst,
    /// A mid-flow packet arrived after its VM was reclaimed; it cannot
    /// start a new flow, so there is nothing to deliver it to.
    MidFlowNoVm,
    /// The packet reached a VM that is suspended (direct host delivery
    /// only; the switch controller resumes before delivering).
    Suspended,
    /// The packet reached a VM in its suspend window. Since the
    /// suspend-window fix this path buffers instead of dropping; the
    /// label remains in the taxonomy so a regression is visible as a
    /// non-zero counter rather than silence.
    Suspending,
    /// The packet reached a running VM with no packet processor (a
    /// plain Linux guest).
    NoRouter,
}

impl DropReason {
    /// The metric label for this reason.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::UnknownDst => "unknown_dst",
            DropReason::MidFlowNoVm => "mid_flow_no_vm",
            DropReason::Suspended => "suspended",
            DropReason::Suspending => "suspending",
            DropReason::NoRouter => "no_router",
        }
    }
}

/// What happened to a packet handed to [`Host::deliver_tracked`].
///
/// The switch controller uses this to bill tenants only for packets that
/// were actually delivered or buffered — dropped packets are never
/// charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Processed immediately by a running VM.
    Delivered,
    /// Queued while the VM boots, resumes, or finishes suspending;
    /// delivered when it becomes runnable.
    Buffered,
    /// Dropped, with the reason (also counted in the host's drop
    /// counter).
    Dropped(DropReason),
}

/// VM lifecycle state, with virtual-time transition deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Being created; ready at the embedded virtual time.
    Booting {
        /// When the VM becomes runnable.
        ready_at: u64,
    },
    /// Runnable and processing packets.
    Running,
    /// Being suspended; suspended at the embedded virtual time.
    Suspending {
        /// When the suspend completes.
        done_at: u64,
    },
    /// Suspended to memory: state retained, no processing.
    Suspended,
    /// Being resumed; runnable again at the embedded virtual time.
    Resuming {
        /// When the resume completes.
        ready_at: u64,
    },
    /// Destroyed (slot retained for id stability).
    Destroyed,
}

/// One virtual machine.
pub struct Vm {
    /// Guest kind (drives timing and memory).
    pub kind: VmTimingKind,
    /// Lifecycle state.
    pub state: VmState,
    /// The Click instance running inside (ClickOS guests only).
    pub router: Option<Router>,
    /// Packets that arrived while booting/resuming, delivered when the VM
    /// becomes runnable (the switch controller buffers the first packets
    /// of a flow while its VM boots).
    pub pending: Vec<(u16, Packet)>,
}

/// Errors from host operations.
#[derive(Debug, PartialEq)]
pub enum HostError {
    /// Not enough free memory for another VM.
    OutOfMemory {
        /// MB needed.
        need_mb: u64,
        /// MB free.
        free_mb: u64,
    },
    /// The VM id does not exist or is destroyed.
    NoSuchVm(VmId),
    /// The operation is invalid in the VM's current state.
    BadState(VmId, &'static str),
    /// The guest configuration failed to instantiate.
    Router(RouterError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::OutOfMemory { need_mb, free_mb } => {
                write!(f, "out of memory: need {need_mb} MB, {free_mb} MB free")
            }
            HostError::NoSuchVm(id) => write!(f, "no such VM {id}"),
            HostError::BadState(id, what) => write!(f, "VM {id}: cannot {what} in this state"),
            HostError::Router(e) => write!(f, "guest configuration: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<RouterError> for HostError {
    fn from(e: RouterError) -> Self {
        HostError::Router(e)
    }
}

/// The host's instruments in a shared [`innet_obs::Registry`]
/// (Prometheus namespace `innet_host_*`).
struct HostMetrics {
    boots: innet_obs::Counter,
    suspends: innet_obs::Counter,
    resumes: innet_obs::Counter,
    boot_ns: innet_obs::Histogram,
    suspend_ns: innet_obs::Histogram,
    resume_ns: innet_obs::Histogram,
    mem_used_mb: innet_obs::Gauge,
    live_vms: innet_obs::Gauge,
    running_vms: innet_obs::Gauge,
    delivered: innet_obs::Counter,
    buffered: innet_obs::Counter,
    drops: innet_obs::LabeledCounter,
}

impl HostMetrics {
    fn register(reg: &innet_obs::Registry) -> HostMetrics {
        HostMetrics {
            boots: reg.counter("innet_host_boots_total"),
            suspends: reg.counter("innet_host_suspends_total"),
            resumes: reg.counter("innet_host_resumes_total"),
            boot_ns: reg.histogram("innet_host_boot_latency_ns"),
            suspend_ns: reg.histogram("innet_host_suspend_latency_ns"),
            resume_ns: reg.histogram("innet_host_resume_latency_ns"),
            mem_used_mb: reg.gauge("innet_host_mem_used_mb"),
            live_vms: reg.gauge("innet_host_live_vms"),
            running_vms: reg.gauge("innet_host_running_vms"),
            delivered: reg.counter("innet_host_delivered_total"),
            buffered: reg.counter("innet_host_buffered_total"),
            drops: reg.labeled_counter("innet_host_drops_total", "reason"),
        }
    }
}

/// A physical platform host: memory pool plus a set of VMs.
pub struct Host {
    mem_mb: u64,
    mem_used_mb: u64,
    vms: Vec<Vm>,
    /// Ids of non-destroyed VMs, ascending. Destroyed slots stay in
    /// `vms` for id stability but are skipped by every scan, so flow
    /// churn cannot degrade [`Host::advance`] into an ever-growing
    /// dead-slot walk.
    active: Vec<VmId>,
    registry: Registry,
    obs: innet_obs::Registry,
    metrics: HostMetrics,
}

impl Host {
    /// Creates a host with the given physical memory and a private
    /// metrics registry (see [`Host::with_obs`] to share one).
    pub fn new(mem_mb: u64) -> Host {
        Host::with_obs(mem_mb, &innet_obs::Registry::new())
    }

    /// Creates a host publishing its metrics into `obs` (Prometheus
    /// namespace `innet_host_*`, plus `innet_click_*` for the routers
    /// inside its ClickOS guests). Sharing one registry between a host
    /// and its [`crate::SwitchController`] yields one unified snapshot.
    pub fn with_obs(mem_mb: u64, obs: &innet_obs::Registry) -> Host {
        Host {
            mem_mb,
            mem_used_mb: 0,
            vms: Vec::new(),
            active: Vec::new(),
            registry: Registry::standard(),
            obs: obs.clone(),
            metrics: HostMetrics::register(obs),
        }
    }

    /// The metrics registry this host publishes into.
    pub fn obs(&self) -> &innet_obs::Registry {
        &self.obs
    }

    /// Free memory in MB.
    pub fn free_mem_mb(&self) -> u64 {
        self.mem_mb - self.mem_used_mb
    }

    /// Number of VMs in any live state.
    pub fn live_vms(&self) -> usize {
        self.active.len()
    }

    /// Number of currently runnable VMs.
    pub fn running_vms(&self) -> usize {
        self.active
            .iter()
            .filter(|&&id| matches!(self.vms[id].state, VmState::Running))
            .count()
    }

    /// Refreshes the level gauges after a lifecycle change.
    fn refresh_gauges(&self) {
        self.metrics.mem_used_mb.set(self.mem_used_mb as i64);
        self.metrics.live_vms.set(self.live_vms() as i64);
        self.metrics.running_vms.set(self.running_vms() as i64);
    }

    /// Immutable access to a VM.
    pub fn vm(&self, id: VmId) -> Result<&Vm, HostError> {
        self.vms
            .get(id)
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .ok_or(HostError::NoSuchVm(id))
    }

    /// Mutable access to a VM.
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HostError> {
        self.vms
            .get_mut(id)
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .ok_or(HostError::NoSuchVm(id))
    }

    /// Boots a ClickOS VM running `config`, charging the calibrated boot
    /// latency. Returns the VM id; the VM is `Booting` until
    /// [`Host::advance`] passes its deadline.
    pub fn boot_clickos(&mut self, config: &ClickConfig, now_ns: u64) -> Result<VmId, HostError> {
        self.boot(VmTimingKind::ClickOs, Some(config), now_ns)
    }

    /// Boots a (router-less) Linux VM — the expensive baseline.
    pub fn boot_linux(&mut self, now_ns: u64) -> Result<VmId, HostError> {
        self.boot(VmTimingKind::Linux, None, now_ns)
    }

    fn boot(
        &mut self,
        kind: VmTimingKind,
        config: Option<&ClickConfig>,
        now_ns: u64,
    ) -> Result<VmId, HostError> {
        let need = vm_mem_mb(kind);
        if self.free_mem_mb() < need {
            return Err(HostError::OutOfMemory {
                need_mb: need,
                free_mb: self.free_mem_mb(),
            });
        }
        let router = match config {
            Some(cfg) => {
                let mut r = Router::from_config(cfg, &self.registry)?;
                r.attach_metrics(&self.obs);
                Some(r)
            }
            None => None,
        };
        self.mem_used_mb += need;
        let boot_ns = boot_latency_ns(kind, self.live_vms());
        let ready_at = now_ns + boot_ns;
        self.vms.push(Vm {
            kind,
            state: VmState::Booting { ready_at },
            router,
            pending: Vec::new(),
        });
        let id = self.vms.len() - 1;
        self.active.push(id);
        self.metrics.boots.inc();
        self.metrics.boot_ns.observe(boot_ns);
        self.refresh_gauges();
        Ok(id)
    }

    /// Starts suspending a running VM.
    pub fn suspend(&mut self, id: VmId, now_ns: u64) -> Result<u64, HostError> {
        let existing = self.live_vms();
        let vm = self.vm_mut(id)?;
        if !matches!(vm.state, VmState::Running) {
            return Err(HostError::BadState(id, "suspend"));
        }
        let suspend_ns = suspend_latency_ns(existing.saturating_sub(1));
        let done_at = now_ns + suspend_ns;
        vm.state = VmState::Suspending { done_at };
        self.metrics.suspends.inc();
        self.metrics.suspend_ns.observe(suspend_ns);
        self.refresh_gauges();
        Ok(done_at)
    }

    /// Starts resuming a suspended VM.
    pub fn resume(&mut self, id: VmId, now_ns: u64) -> Result<u64, HostError> {
        let existing = self.live_vms();
        let vm = self.vm_mut(id)?;
        if !matches!(vm.state, VmState::Suspended) {
            return Err(HostError::BadState(id, "resume"));
        }
        let resume_ns = resume_latency_ns(existing.saturating_sub(1));
        let ready_at = now_ns + resume_ns;
        vm.state = VmState::Resuming { ready_at };
        self.metrics.resumes.inc();
        self.metrics.resume_ns.observe(resume_ns);
        self.refresh_gauges();
        Ok(ready_at)
    }

    /// Destroys a VM, releasing its memory. Stateful guests lose their
    /// state (which is why stateful modules are suspended instead — §5).
    pub fn destroy(&mut self, id: VmId) -> Result<(), HostError> {
        let kind = self.vm(id)?.kind;
        self.mem_used_mb -= vm_mem_mb(kind);
        let vm = &mut self.vms[id];
        vm.state = VmState::Destroyed;
        vm.router = None;
        vm.pending.clear();
        // `retain` keeps `active` sorted (ids are never reused), so
        // `advance` stays deterministic in boot order.
        self.active.retain(|&a| a != id);
        self.refresh_gauges();
        Ok(())
    }

    /// Removes a *suspended* VM from this host for live migration,
    /// returning it (router state, buffered packets and all) and
    /// releasing its memory. The migration protocol is
    /// suspend → extract → transfer → [`Host::implant`] on the
    /// destination; extracting a VM in any other state is a
    /// [`HostError::BadState`], which forces callers through the
    /// suspend path and so through its buffering invariant.
    pub fn extract(&mut self, id: VmId) -> Result<Vm, HostError> {
        let kind = {
            let vm = self.vm(id)?;
            if !matches!(vm.state, VmState::Suspended) {
                return Err(HostError::BadState(id, "extract"));
            }
            vm.kind
        };
        self.mem_used_mb -= vm_mem_mb(kind);
        let vm = std::mem::replace(
            &mut self.vms[id],
            Vm {
                kind: VmTimingKind::ClickOs,
                state: VmState::Destroyed,
                router: None,
                pending: Vec::new(),
            },
        );
        self.active.retain(|&a| a != id);
        self.refresh_gauges();
        Ok(vm)
    }

    /// Installs a VM extracted from another host, charging the calibrated
    /// resume latency (the destination end of a live migration). The VM
    /// is `Resuming` until [`Host::advance`] passes `ready_at`; packets
    /// delivered in the window are buffered, preserving the
    /// suspend-window invariant across hosts. Returns the new id and the
    /// ready time.
    pub fn implant(&mut self, mut vm: Vm, now_ns: u64) -> Result<(VmId, u64), HostError> {
        let need = vm_mem_mb(vm.kind);
        if self.free_mem_mb() < need {
            return Err(HostError::OutOfMemory {
                need_mb: need,
                free_mb: self.free_mem_mb(),
            });
        }
        self.mem_used_mb += need;
        let resume_ns = resume_latency_ns(self.live_vms());
        let ready_at = now_ns + resume_ns;
        vm.state = VmState::Resuming { ready_at };
        if let Some(router) = vm.router.as_mut() {
            router.attach_metrics(&self.obs);
        }
        self.vms.push(vm);
        let id = self.vms.len() - 1;
        self.active.push(id);
        self.metrics.resumes.inc();
        self.metrics.resume_ns.observe(resume_ns);
        self.refresh_gauges();
        Ok((id, ready_at))
    }

    /// Advances virtual time: completes lifecycle transitions whose
    /// deadlines have passed and flushes packets buffered for VMs that
    /// just became runnable. Returns packets transmitted by those VMs as
    /// `(vm, iface, packet)`.
    ///
    /// A VM whose suspend completes with packets buffered in its suspend
    /// window resumes immediately (§5 "Suspend and resume"): the resume
    /// starts at the suspend's completion instant, and — because
    /// transitions are re-examined until a fixed point — a single
    /// `advance` far enough into the future carries it all the way back
    /// to `Running` and flushes the buffer.
    pub fn advance(&mut self, now_ns: u64) -> Vec<(VmId, u16, Packet)> {
        let mut out = Vec::new();
        loop {
            let mut changed = false;
            let live = self.active.len();
            for i in 0..self.active.len() {
                let id = self.active[i];
                let vm = &mut self.vms[id];
                match vm.state {
                    VmState::Booting { ready_at } | VmState::Resuming { ready_at }
                        if now_ns >= ready_at =>
                    {
                        vm.state = VmState::Running;
                        changed = true;
                        if let Some(router) = vm.router.as_mut() {
                            for (iface, pkt) in vm.pending.drain(..) {
                                let _ = router.deliver(iface, pkt, now_ns);
                            }
                            for (iface, pkt) in router.take_tx() {
                                out.push((id, iface, pkt));
                            }
                        }
                    }
                    VmState::Suspending { done_at } if now_ns >= done_at => {
                        changed = true;
                        if vm.pending.is_empty() {
                            vm.state = VmState::Suspended;
                        } else {
                            // Packets arrived during the suspend window:
                            // schedule the resume the moment the suspend
                            // completes, mirroring the boot-buffering
                            // path, so nothing is dropped.
                            let resume_ns = resume_latency_ns(live.saturating_sub(1));
                            vm.state = VmState::Resuming {
                                ready_at: done_at + resume_ns,
                            };
                            self.metrics.resumes.inc();
                            self.metrics.resume_ns.observe(resume_ns);
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        self.refresh_gauges();
        out
    }

    /// Delivers a packet to a VM at virtual time `now_ns`.
    ///
    /// Running VMs process immediately (returning any transmissions);
    /// booting, resuming, and *suspending* VMs buffer (a suspend-window
    /// arrival triggers a resume when the suspend completes); suspended
    /// and router-less (Linux) VMs drop — and every drop increments the
    /// host's reason-labeled drop counter.
    pub fn deliver(
        &mut self,
        id: VmId,
        iface: u16,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<Vec<(u16, Packet)>, HostError> {
        self.deliver_tracked(id, iface, pkt, now_ns)
            .map(|(_, out)| out)
    }

    /// Like [`Host::deliver`], but also reports what happened to the
    /// packet, so callers (the switch controller) can account and bill
    /// by outcome.
    pub fn deliver_tracked(
        &mut self,
        id: VmId,
        iface: u16,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<(Delivery, Vec<(u16, Packet)>), HostError> {
        // Field-level access (rather than `vm_mut`) so `self.metrics`
        // stays borrowable alongside the VM.
        let vm = self
            .vms
            .get_mut(id)
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .ok_or(HostError::NoSuchVm(id))?;
        match vm.state {
            VmState::Running => match vm.router.as_mut() {
                Some(router) => {
                    self.metrics.delivered.inc();
                    let _ = router.deliver(iface, pkt, now_ns);
                    Ok((Delivery::Delivered, router.take_tx()))
                }
                None => {
                    self.metrics.drops.with(DropReason::NoRouter.as_str()).inc();
                    Ok((Delivery::Dropped(DropReason::NoRouter), Vec::new()))
                }
            },
            VmState::Booting { .. } | VmState::Resuming { .. } | VmState::Suspending { .. } => {
                vm.pending.push((iface, pkt));
                self.metrics.buffered.inc();
                Ok((Delivery::Buffered, Vec::new()))
            }
            VmState::Suspended => {
                self.metrics
                    .drops
                    .with(DropReason::Suspended.as_str())
                    .inc();
                Ok((Delivery::Dropped(DropReason::Suspended), Vec::new()))
            }
            VmState::Destroyed => Err(HostError::NoSuchVm(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::PacketBuilder;

    fn firewall_cfg() -> ClickConfig {
        ClickConfig::parse("FromNetfront() -> IPFilter(allow udp, allow icmp) -> ToNetfront();")
            .unwrap()
    }

    #[test]
    fn boot_buffers_then_processes() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        // Packet arrives while booting: buffered.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 1_000_000)
            .unwrap();
        assert!(out.is_empty());
        // After the boot deadline the buffered packet flows out.
        let flushed = host.advance(60_000_000);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, vm);
        // Subsequent packets process synchronously.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 70_000_000)
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn memory_accounting_and_exhaustion() {
        // Host with room for exactly two ClickOS VMs.
        let mut host = Host::new(2 * vm_mem_mb(VmTimingKind::ClickOs));
        host.boot_clickos(&firewall_cfg(), 0).unwrap();
        host.boot_clickos(&firewall_cfg(), 0).unwrap();
        assert!(matches!(
            host.boot_clickos(&firewall_cfg(), 0),
            Err(HostError::OutOfMemory { .. })
        ));
        assert_eq!(host.free_mem_mb(), 0);
    }

    #[test]
    fn destroy_releases_memory() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        let free_before = host.free_mem_mb();
        host.destroy(vm).unwrap();
        assert!(host.free_mem_mb() > free_before);
        assert!(matches!(
            host.deliver(vm, 0, PacketBuilder::udp().build(), 0),
            Err(HostError::NoSuchVm(_))
        ));
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        host.advance(100_000_000);
        assert_eq!(host.running_vms(), 1);

        let done = host.suspend(vm, 100_000_000).unwrap();
        assert!(done > 100_000_000);
        host.advance(done);
        assert!(matches!(host.vm(vm).unwrap().state, VmState::Suspended));
        // Suspended VMs drop traffic.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), done + 1)
            .unwrap();
        assert!(out.is_empty());

        let ready = host.resume(vm, done + 1).unwrap();
        host.advance(ready);
        assert_eq!(host.running_vms(), 1);
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), ready + 1)
            .unwrap();
        assert_eq!(out.len(), 1, "state survived suspend/resume");
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        // Cannot suspend a booting VM.
        assert!(matches!(
            host.suspend(vm, 0),
            Err(HostError::BadState(_, "suspend"))
        ));
        host.advance(100_000_000);
        // Cannot resume a running VM.
        assert!(matches!(
            host.resume(vm, 100_000_000),
            Err(HostError::BadState(_, "resume"))
        ));
    }

    #[test]
    fn linux_vm_has_no_router() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_linux(0).unwrap();
        host.advance(1_000_000_000);
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 1_000_000_001)
            .unwrap();
        assert!(out.is_empty());
    }
}
