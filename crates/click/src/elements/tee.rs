//! Duplication elements: `Tee` and `IPMulticast`.

use std::any::Any;
use std::net::Ipv4Addr;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `Tee(N)` — copies each packet to all N output ports.
#[derive(Debug)]
pub struct Tee {
    n: usize,
}

impl Tee {
    /// Parses `Tee(N)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Tee, ElementError> {
        args.expect_len_range(0, 1)?;
        let n: usize = args.parse_or(0, 2)?;
        if n == 0 {
            return Err(ElementError::BadArgs {
                class: "Tee",
                message: "needs at least one output".to_string(),
            });
        }
        Ok(Tee { n })
    }
}

impl Element for Tee {
    fn class_name(&self) -> &'static str {
        "Tee"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.n)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        for i in 0..self.n - 1 {
            out.push(i, pkt.clone());
        }
        out.push(self.n - 1, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `IPMulticast(DST, DST, ...)` — emits one copy of each packet per
/// configured destination, with the destination address rewritten.
///
/// This is Table 1's "multicast" middlebox: it is statically safe for any
/// requester because the set of destinations it can emit to is a
/// compile-time constant that the controller checks against the
/// white-list.
#[derive(Debug)]
pub struct IpMulticast {
    dsts: Vec<Ipv4Addr>,
    replicated: u64,
}

impl IpMulticast {
    /// Parses `IPMulticast(DST, ...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<IpMulticast, ElementError> {
        if args.is_empty() {
            return Err(ElementError::BadArgs {
                class: "IPMulticast",
                message: "needs at least one destination".to_string(),
            });
        }
        let dsts = (0..args.len())
            .map(|i| args.addr_at(i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IpMulticast {
            dsts,
            replicated: 0,
        })
    }

    /// The configured replica destinations.
    pub fn destinations(&self) -> &[Ipv4Addr] {
        &self.dsts
    }
}

impl Element for IpMulticast {
    fn class_name(&self) -> &'static str {
        "IPMulticast"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        for dst in &self.dsts {
            let mut copy = pkt.clone();
            if let Ok(mut ip) = copy.ipv4_mut() {
                ip.set_dst(*dst);
                ip.update_checksum();
            }
            self.replicated += 1;
            out.push(0, copy);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn tee_duplicates_to_all_ports() {
        let mut t = Tee::from_args(&ConfigArgs::parse("Tee", "3")).unwrap();
        let mut s = VecSink::new();
        t.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        let ports: Vec<usize> = s.pushed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2]);
        assert_eq!(s.pushed[0].1.bytes(), s.pushed[2].1.bytes());
    }

    #[test]
    fn multicast_rewrites_each_copy() {
        let mut m =
            IpMulticast::from_args(&ConfigArgs::parse("IPMulticast", "1.1.1.1, 2.2.2.2")).unwrap();
        let mut s = VecSink::new();
        m.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 2);
        let dsts: Vec<Ipv4Addr> = s
            .pushed
            .iter()
            .map(|(_, p)| p.ipv4().unwrap().dst())
            .collect();
        assert_eq!(
            dsts,
            vec![Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)]
        );
        assert!(s
            .pushed
            .iter()
            .all(|(_, p)| p.ipv4().unwrap().verify_checksum()));
    }

    #[test]
    fn zero_outputs_rejected() {
        assert!(Tee::from_args(&ConfigArgs::parse("Tee", "0")).is_err());
        assert!(IpMulticast::from_args(&ConfigArgs::parse("IPMulticast", "")).is_err());
    }
}
