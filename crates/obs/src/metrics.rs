//! Scalar instruments: counters, gauges, and labeled counter families.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
///
/// Handles are cheap clones of a shared atomic; all clones observe the
/// same value. Hot paths should hold a handle rather than looking the
/// counter up by name each time.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move in both directions.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds to the level.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from the level.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A family of counters keyed by one label value — the instrument behind
/// reason-labeled drop accounting.
///
/// [`LabeledCounter::with`] returns the per-label [`Counter`] handle
/// (creating it on first use), so steady-state increments are a single
/// atomic add; hold the handle on hot paths.
#[derive(Clone, Debug, Default)]
pub struct LabeledCounter {
    cells: Arc<Mutex<BTreeMap<String, Counter>>>,
}

impl LabeledCounter {
    /// A fresh, unregistered family with no cells.
    pub fn new() -> LabeledCounter {
        LabeledCounter::default()
    }

    /// The counter for `label`, created at zero on first use.
    pub fn with(&self, label: &str) -> Counter {
        let mut cells = self.cells.lock().expect("labeled counter poisoned");
        cells.entry(label.to_string()).or_default().clone()
    }

    /// The current count for `label` (zero if never incremented).
    pub fn get(&self, label: &str) -> u64 {
        let cells = self.cells.lock().expect("labeled counter poisoned");
        cells.get(label).map(|c| c.get()).unwrap_or(0)
    }

    /// The sum across every label.
    pub fn total(&self) -> u64 {
        let cells = self.cells.lock().expect("labeled counter poisoned");
        cells.values().map(|c| c.get()).sum()
    }

    /// All `(label, count)` pairs, sorted by label.
    pub fn cells(&self) -> Vec<(String, u64)> {
        let cells = self.cells.lock().expect("labeled counter poisoned");
        cells.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Clones share the cell.
        let d = c.clone();
        d.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn labeled_counter_isolates_labels() {
        let d = LabeledCounter::new();
        d.with("suspended").inc();
        d.with("suspended").inc();
        d.with("no_router").inc();
        assert_eq!(d.get("suspended"), 2);
        assert_eq!(d.get("no_router"), 1);
        assert_eq!(d.get("never_seen"), 0);
        assert_eq!(d.total(), 3);
        assert_eq!(
            d.cells(),
            vec![("no_router".to_string(), 1), ("suspended".to_string(), 2)]
        );
    }

    #[test]
    fn labeled_handles_stay_live() {
        let d = LabeledCounter::new();
        let h = d.with("x");
        h.add(3);
        assert_eq!(d.get("x"), 3);
    }
}
