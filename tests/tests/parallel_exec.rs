//! Differential tests for flow-sharded parallel execution: for every
//! worker count, the `ParallelRunner` must produce, per flow, exactly the
//! byte sequence the single-threaded `NativeRunner` produces — sharding
//! is an implementation detail, not a semantic change.
//!
//! Also property-checks the dispatch invariant the ordering guarantee
//! rests on: the flow-hash dispatcher never splits one 5-tuple across
//! workers.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use innet::platform::consolidated_config;
use innet::prelude::*;
use proptest::prelude::*;

/// A reproducible multi-flow trace: `flows` distinct UDP 5-tuples,
/// `n` packets round-robined across them, payload lengths varied so
/// byte-level comparison is meaningful.
fn multi_flow_trace(n: usize, flows: usize, clients: &[Ipv4Addr]) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let f = i % flows;
            PacketBuilder::udp()
                .src(
                    Ipv4Addr::new(8, 8, (f / 200) as u8, (f % 200) as u8 + 1),
                    (4000 + f % 1000) as u16,
                )
                .dst(clients[f % clients.len()], 80)
                .pad_to(64 + (i % 7) * 16)
                .build()
        })
        .collect()
}

/// Groups transmitted packets per flow, preserving relative order. The
/// configurations used here never rewrite the 5-tuple, so the output
/// flow key is the input flow key.
fn by_flow(out: &[(u16, Packet)]) -> BTreeMap<String, Vec<(u16, Vec<u8>)>> {
    let mut groups: BTreeMap<String, Vec<(u16, Vec<u8>)>> = BTreeMap::new();
    for (egress, pkt) in out {
        let key = FlowKey::of(pkt)
            .expect("udp traffic has a flow key")
            .to_string();
        groups
            .entry(key)
            .or_default()
            .push((*egress, pkt.bytes().to_vec()));
    }
    groups
}

#[test]
fn parallel_output_matches_native_per_flow() {
    let clients: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let trace = multi_flow_trace(10_000, 64, &clients);

    // The single-threaded reference output.
    let mut native = RunnerConfig::new().native(&cfg).unwrap();
    let (native_stats, native_out) = native.run_collect(&trace, 1);
    assert_eq!(native_stats.transmitted, trace.len() as u64);
    let reference = by_flow(&native_out);

    for workers in [1usize, 2, 4, 8] {
        let mut parallel = RunnerConfig::new()
            .workers(workers)
            .batch(32)
            .parallel(&cfg)
            .unwrap();
        assert_eq!(parallel.effective_workers(), workers);
        let (stats, out) = parallel.run_collect(&trace, 1);
        assert_eq!(
            stats.transmitted, native_stats.transmitted,
            "{workers} workers"
        );
        assert_eq!(stats.dropped, 0, "{workers} workers");
        let sharded = by_flow(&out);
        // Per flow: byte-identical packets, in identical order, out the
        // identical egress ports.
        assert_eq!(sharded, reference, "{workers} workers");
    }
}

#[test]
fn stateful_config_runs_single_worker() {
    // A NAT keeps per-flow translation state: replicating it would give
    // different flows different public-port mappings depending on which
    // replica they hit. The registry flags it, and the runner degrades.
    let cfg =
        ClickConfig::parse("FromNetfront() -> [0]n :: IPNAT(203.0.113.1); n[0] -> ToNetfront();")
            .unwrap();
    let mut runner = RunnerConfig::new().workers(8).parallel(&cfg).unwrap();
    assert!(!runner.shardable());
    assert_eq!(runner.effective_workers(), 1);
    assert_eq!(runner.requested_workers(), 8);

    // And it still forwards correctly on that single worker.
    let pkts: Vec<Packet> = (0..100)
        .map(|i| {
            PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, (i % 9) as u8 + 1), 5000 + i as u16)
                .dst(Ipv4Addr::new(198, 51, 100, 7), 53)
                .build()
        })
        .collect();
    let stats = runner.run(&pkts, 1);
    assert_eq!(stats.workers, 1);
    assert_eq!(stats.transmitted, 100);
}

#[test]
fn batch_size_does_not_change_results() {
    let clients: Vec<Ipv4Addr> = (0..4).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let trace = multi_flow_trace(1_000, 17, &clients);
    let mut reference = RunnerConfig::new().native(&cfg).unwrap();
    let (_, native_out) = reference.run_collect(&trace, 1);
    let want = by_flow(&native_out);
    for batch in [1usize, 32, 256] {
        let mut runner = RunnerConfig::new()
            .workers(4)
            .batch(batch)
            .parallel(&cfg)
            .unwrap();
        let (_, out) = runner.run_collect(&trace, 1);
        assert_eq!(by_flow(&out), want, "batch {batch}");
    }
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(src, dst, sport, dport, is_tcp)| {
            let b = if is_tcp {
                PacketBuilder::tcp()
            } else {
                PacketBuilder::udp()
            };
            b.src(Ipv4Addr::from(src), sport)
                .dst(Ipv4Addr::from(dst), dport)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dispatch invariant behind the ordering guarantee: for any
    /// packet and worker count, every packet of one directed 5-tuple
    /// lands on exactly one worker.
    #[test]
    fn dispatcher_never_splits_a_flow(
        pkt in arb_packet(),
        workers in 1usize..=16,
    ) {
        let key = FlowKey::of(&pkt).unwrap();
        let shard = FlowKey::shard_of(&pkt, workers);
        prop_assert!(shard < workers);
        // Same 5-tuple, different packet contents: same shard.
        let sibling = PacketBuilder::udp()
            .src(key.src, key.src_port)
            .dst(key.dst, key.dst_port)
            .pad_to(900)
            .build();
        if key.proto == IpProto::Udp {
            prop_assert_eq!(FlowKey::shard_of(&sibling, workers), shard);
        }
        // The shard is a pure function of the key.
        prop_assert_eq!(key.shard(workers), shard);
        prop_assert_eq!(key.shard(workers), key.shard(workers));
    }
}
