//! Figure 14: SCTP over TCP versus UDP tunnels under random loss, plus
//! the §8 tunnel-selection probe comparison.

use innet::experiments::fig14_tunnel::{probe_comparison, tunnel_sweep};
use innet_bench::{quick_mode, Report};

fn main() {
    let losses = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
    let seeds = if quick_mode() { 3 } else { 11 };
    let series = tunnel_sweep(&losses, seeds);
    let mut r = Report::new(
        "fig14_sctp_tunnel",
        "Figure 14: SCTP goodput (Mb/s) over UDP vs TCP tunnels, 100 Mb/s / 20 ms RTT",
    );
    r.line(&format!(
        "{:>8} {:>12} {:>12} {:>8}",
        "loss", "UDP tunnel", "TCP tunnel", "ratio"
    ));
    for p in &series {
        let ratio = if p.tcp_mbps > 0.0 {
            p.udp_mbps / p.tcp_mbps
        } else {
            f64::INFINITY
        };
        r.line(&format!(
            "{:>7}% {:>12.1} {:>12.1} {:>7.1}x",
            p.loss_pct, p.udp_mbps, p.tcp_mbps, ratio
        ));
    }
    r.blank();
    r.line("paper: TCP tunneling gives 2–5x less throughput at 1–5% loss");

    let probe = probe_comparison(200.0);
    r.blank();
    r.line(&format!(
        "§8 tunnel selection: In-Net API probe ~{:.0} ms vs {:.0} ms \
         protocol-timeout fallback",
        probe.api_probe_ms, probe.timeout_fallback_ms
    ));
    r.finish();
}
