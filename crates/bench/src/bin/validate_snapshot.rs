//! Schema-validates `BENCH_*.json` snapshot files (CI's bench-snapshot
//! smoke step). Exits non-zero with a diagnostic on the first invalid
//! file.
//!
//! Four snapshot schemas exist: throughput rows ([`BenchSnapshot`]),
//! admission-latency rows ([`AdmissionSnapshot`]), fleet
//! placement/migration rows ([`FleetSnapshot`]), and scenario-engine
//! failover rows ([`ScenarioSnapshot`]). The validator tries each in
//! turn and accepts a file that satisfies any; a file that satisfies
//! none reports every diagnostic.

use innet_bench::{AdmissionSnapshot, BenchSnapshot, FleetSnapshot, ScenarioSnapshot};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_snapshot <BENCH_*.json>...");
        std::process::exit(2);
    }
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                std::process::exit(1);
            }
        };
        let bench_err = match BenchSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
                continue;
            }
            Err(e) => e,
        };
        let adm_err = match AdmissionSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} admission rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
                continue;
            }
            Err(e) => e,
        };
        let fleet_err = match FleetSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} fleet rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
                continue;
            }
            Err(e) => e,
        };
        match ScenarioSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} scenario rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
            }
            Err(scn_err) => {
                eprintln!(
                    "{path}: schema violation: not a throughput snapshot \
                     ({bench_err}), not an admission snapshot ({adm_err}), \
                     not a fleet snapshot ({fleet_err}), and not a \
                     scenario snapshot ({scn_err})"
                );
                std::process::exit(1);
            }
        }
    }
}
