//! Scenario events as data: regional failover, flash crowds, CDN
//! tiering, and executed consolidation (DESIGN.md §16).
//!
//! A [`Scenario`] is a named list of `(SimTime, ScenarioEvent)` pairs
//! applied by [`crate::FleetDriver`] at their scheduled instants:
//!
//! * [`ScenarioEvent::KillPop`] — every platform in the PoP dies. The
//!   traffic matrix re-points its ingress demands, in-flight fabric
//!   packets re-route (or are counted dead), and after a detection
//!   delay each stranded tenant is re-homed through ranked placement,
//!   producing one [`RehomeRecord`] per tenant.
//! * [`ScenarioEvent::FlashCrowd`] — a PoP's demand multiplies; the
//!   refreshed per-tenant load feeds demand-aware rebalancing.
//! * [`ScenarioEvent::ExecuteConsolidation`] — the hook plans
//!   fleet-wide stateless consolidation (the controller hook uses
//!   `plan_fleet`) and the moves are *executed* on the data plane via
//!   [`Fleet::migrate`], not just planned.
//! * [`ScenarioEvent::CdnTier`] — a stateless origin is replicated
//!   onto edge platforms; ingress then resolves to the nearest copy.
//!
//! Placement policy is pluggable through [`ScenarioHooks`] so the
//! engine does not depend on the controller crate: [`TopoHooks`] ranks
//! by topology alone, and `innet-controller` provides a hook backed by
//! its ranked placement and `plan_fleet`.

use std::net::Ipv4Addr;

use innet_sim::des::SimTime;
use innet_topology::{NodeId, NodeKind};

use crate::fleet::Fleet;
use crate::traffic::TrafficMatrix;

/// One scheduled fleet-level incident or operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioEvent {
    /// Kill every platform in a PoP (by `generate_fleet`'s `"pop{N}-"`
    /// naming); stranded tenants re-home after the detection delay.
    KillPop {
        /// The PoP index to kill.
        pop: usize,
    },
    /// Multiply the demand of every traffic-matrix flow originating in
    /// a PoP.
    FlashCrowd {
        /// The PoP whose subnets surge.
        pop: usize,
        /// Rate multiplier (values below 1 are clamped to 1).
        multiplier: u32,
    },
    /// Plan fleet-wide stateless consolidation through the hooks and
    /// execute the moves on the data plane via [`Fleet::migrate`].
    ExecuteConsolidation,
    /// Replicate a stateless origin tenant onto edge platforms.
    CdnTier {
        /// The tenant to replicate.
        origin: Ipv4Addr,
        /// Edge platforms to hold a copy.
        edges: Vec<NodeId>,
    },
}

/// A named, ordered list of scheduled events.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    name: String,
    events: Vec<(SimTime, ScenarioEvent)>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Schedules `event` at `at` (builder style).
    pub fn at(mut self, at: SimTime, event: ScenarioEvent) -> Scenario {
        self.events.push((at, event));
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(SimTime, ScenarioEvent)] {
        &self.events
    }
}

/// One tenant's failover outcome after its home platform died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RehomeRecord {
    /// The re-homed tenant.
    pub addr: Ipv4Addr,
    /// The dead platform it was homed on.
    pub from: NodeId,
    /// Where it landed, or `None` when no alive platform had room.
    pub to: Option<NodeId>,
    /// When the platform died.
    pub killed_at: SimTime,
    /// When the tenant was serving again (registration restored; the
    /// next packet boots the fresh VM).
    pub restored_at: SimTime,
    /// `restored_at - killed_at`: the tenant's blackout window.
    pub downtime_ns: SimTime,
    /// Wall-clock time the ranked placement decision took.
    pub decision_ns: u64,
}

/// Placement policy the scenario engine calls out to. The engine is in
/// the platform crate; the controller crate implements this trait on
/// top of its ranked placement and `plan_fleet` so scenarios exercise
/// the real control plane without a dependency cycle.
pub trait ScenarioHooks {
    /// Candidate platforms for re-homing `addr` off dead `dead`, best
    /// first. The engine skips dead or full candidates.
    fn rank_rehome(&mut self, fleet: &Fleet, addr: Ipv4Addr, dead: NodeId) -> Vec<NodeId>;

    /// Fleet-wide stateless consolidation moves as `(addr, from, to)`.
    /// The engine validates each against current tenant locations and
    /// executes the valid ones via [`Fleet::migrate`].
    fn plan_consolidation(&mut self, fleet: &Fleet) -> Vec<(Ipv4Addr, NodeId, NodeId)>;
}

/// Topology-only hooks: rank by proximity to the dead platform plus
/// occupancy, and consolidate stateless tenants onto the platform that
/// already hosts the most of them. The default when no controller hook
/// is attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoHooks;

impl ScenarioHooks for TopoHooks {
    fn rank_rehome(&mut self, fleet: &Fleet, _addr: Ipv4Addr, dead: NodeId) -> Vec<NodeId> {
        let topo = fleet.topology();
        let paths = topo.paths_from(dead);
        let mut scored: Vec<(u64, NodeId)> = fleet
            .alive_platforms()
            .into_iter()
            .map(|p| {
                // Same shape as the controller's placement score:
                // proximity (to the dead region's clients) dominates,
                // occupancy breaks congestion ties.
                let latency_us = paths
                    .get(p)
                    .copied()
                    .flatten()
                    .map(|a| a.latency_ns / 1_000)
                    .unwrap_or(u64::MAX / 32);
                let occupancy = fleet.tenants_at(p).len() as u64;
                (latency_us * 16 + occupancy * 4, p)
            })
            .collect();
        scored.sort_unstable();
        scored.into_iter().map(|(_, p)| p).collect()
    }

    fn plan_consolidation(&mut self, fleet: &Fleet) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        // Stateless tenants per alive platform.
        let mut groups: Vec<(NodeId, Vec<Ipv4Addr>)> = Vec::new();
        for p in fleet.alive_platforms() {
            let stateless: Vec<Ipv4Addr> = fleet
                .tenants_at(p)
                .into_iter()
                .filter(|&a| {
                    fleet
                        .switch(p)
                        .and_then(|s| s.client(a))
                        .is_some_and(|e| !e.stateful)
                })
                .collect();
            groups.push((p, stateless));
        }
        // Home: the platform already hosting the most stateless tenants
        // (ties to the lower id); everyone else moves there.
        let Some(&(home, _)) = groups
            .iter()
            .max_by_key(|(p, g)| (g.len(), std::cmp::Reverse(*p)))
        else {
            return Vec::new();
        };
        groups
            .into_iter()
            .filter(|&(p, _)| p != home)
            .flat_map(|(p, g)| g.into_iter().map(move |a| (a, p, home)))
            .collect()
    }
}

/// What applying one event did, for the driver's bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct EventOutcome {
    /// Tenants stranded by a kill, as `(addr, dead_platform)`.
    pub(crate) stranded: Vec<(Ipv4Addr, NodeId)>,
    /// Consolidation moves actually started.
    pub(crate) consolidation_moves: Vec<(Ipv4Addr, NodeId, NodeId)>,
    /// CDN replica registrations added.
    pub(crate) cdn_edges: usize,
    /// Traffic demands scaled by a flash crowd.
    pub(crate) scaled: usize,
    /// Whether the traffic matrix's demand weights changed.
    pub(crate) demand_changed: bool,
}

/// Applies one event to the fleet (and the traffic matrix, when one is
/// attached). Failover re-homes are *not* performed here — the driver
/// schedules them after its detection delay.
pub(crate) fn apply_event(
    fleet: &mut Fleet,
    traffic: &mut Option<TrafficMatrix>,
    hooks: &mut dyn ScenarioHooks,
    event: &ScenarioEvent,
    at: SimTime,
) -> EventOutcome {
    let mut outcome = EventOutcome::default();
    match event {
        ScenarioEvent::KillPop { pop } => {
            let topo = fleet.topology().clone();
            let victims: Vec<NodeId> = topo
                .pop_members(*pop)
                .into_iter()
                .filter(|&n| matches!(topo.node(n).kind, NodeKind::Platform(_)))
                .collect();
            for v in victims {
                let Ok(stranded) = fleet.kill_platform(v, at) else {
                    continue;
                };
                outcome
                    .stranded
                    .extend(stranded.into_iter().map(|a| (a, v)));
                if let Some(m) = traffic.as_mut() {
                    let alive = fleet.alive_platforms();
                    if m.reingress(&topo, v, &alive) > 0 {
                        outcome.demand_changed = true;
                    }
                }
            }
        }
        ScenarioEvent::FlashCrowd { pop, multiplier } => {
            if let Some(m) = traffic.as_mut() {
                let topo = fleet.topology().clone();
                outcome.scaled = m.scale_pop(&topo, *pop, *multiplier);
                outcome.demand_changed = outcome.scaled > 0;
            }
        }
        ScenarioEvent::ExecuteConsolidation => {
            for (addr, from, to) in hooks.plan_consolidation(fleet) {
                if fleet.location(addr) != Some(from) {
                    continue;
                }
                if fleet.migrate(addr, to, at).is_ok() {
                    outcome.consolidation_moves.push((addr, from, to));
                }
            }
        }
        ScenarioEvent::CdnTier { origin, edges } => {
            outcome.cdn_edges = fleet.add_replicas(*origin, edges).unwrap_or(0);
        }
    }
    outcome
}

/// Executes one scheduled failover re-home through the hooks' ranked
/// placement, skipping dead or full candidates.
pub(crate) fn rehome_tenant(
    fleet: &mut Fleet,
    hooks: &mut dyn ScenarioHooks,
    addr: Ipv4Addr,
    dead: NodeId,
    killed_at: SimTime,
    now: SimTime,
) -> RehomeRecord {
    let t0 = std::time::Instant::now();
    let candidates = hooks.rank_rehome(fleet, addr, dead);
    let topo = fleet.topology();
    let chosen = candidates.into_iter().find(|&c| {
        if !fleet.is_alive(c) || c == dead {
            return false;
        }
        let NodeKind::Platform(spec) = &topo.node(c).kind else {
            return false;
        };
        fleet.tenants_at(c).len() < spec.capacity
    });
    let decision_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let to = chosen.filter(|&c| fleet.rehome(addr, c).is_ok());
    RehomeRecord {
        addr,
        from: dead,
        to,
        killed_at,
        restored_at: now,
        downtime_ns: now.saturating_sub(killed_at),
        decision_ns,
    }
}
