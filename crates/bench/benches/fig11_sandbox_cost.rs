//! Figure 11: the cost of sandboxing, measured natively over the packet
//! size sweep.

use innet::experiments::fig11_sandbox::sandbox_cost;
use innet_bench::{quick_mode, Report};

fn main() {
    let frames = [64usize, 128, 256, 512, 1024, 1472];
    let rounds = if quick_mode() { 40 } else { 400 };
    let series = sandbox_cost(&frames, rounds);
    let mut r = Report::new(
        "fig11_sandbox_cost",
        "Figure 11: RX throughput with and without the ChangeEnforcer sandbox",
    );
    r.line(&format!(
        "{:>8} {:>14} {:>14} {:>8}",
        "bytes", "plain (Mpps)", "sandbox (Mpps)", "drop"
    ));
    for p in &series {
        r.line(&format!(
            "{:>8} {:>14.3} {:>14.3} {:>7.0}%",
            p.frame,
            p.plain_mpps,
            p.sandboxed_mpps,
            p.drop_fraction() * 100.0
        ));
    }
    r.blank();
    r.line(
        "paper: −1/3 at 64 B, −1/5 at 128 B, no measurable drop at larger \
         sizes; separate-VM sandboxing costs ~70%",
    );
    r.finish();
}
