//! CIDR prefixes, shared by the policy language, routing tables, and
//! white-lists.

use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IPv4 CIDR prefix such as `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    addr: Ipv4Addr,
    prefix_len: u8,
}

/// Error produced when parsing a CIDR string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CidrParseError(pub String);

impl std::fmt::Display for CidrParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid CIDR: {}", self.0)
    }
}

impl std::error::Error for CidrParseError {}

impl Cidr {
    /// Builds a prefix, normalizing the address by masking host bits.
    ///
    /// Returns `None` when `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Option<Cidr> {
        if prefix_len > 32 {
            return None;
        }
        let masked = u32::from(addr) & Cidr::mask_bits(prefix_len);
        Some(Cidr {
            addr: Ipv4Addr::from(masked),
            prefix_len,
        })
    }

    /// A /32 prefix for a single host.
    pub fn host(addr: Ipv4Addr) -> Cidr {
        Cidr {
            addr,
            prefix_len: 32,
        }
    }

    /// The zero-length prefix that matches everything.
    pub const ANY: Cidr = Cidr {
        addr: Ipv4Addr::UNSPECIFIED,
        prefix_len: 0,
    };

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// Network address (host bits zero).
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Whether `addr` falls within this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Cidr::mask_bits(self.prefix_len) == u32::from(self.addr)
    }

    /// Whether `other` is entirely contained in this prefix.
    pub fn covers(&self, other: &Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.addr)
    }

    /// Whether the two prefixes share at least one address.
    pub fn overlaps(&self, other: &Cidr) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// First address of the prefix as a 32-bit integer.
    pub fn first_u32(&self) -> u32 {
        u32::from(self.addr)
    }

    /// Last address of the prefix as a 32-bit integer.
    pub fn last_u32(&self) -> u32 {
        u32::from(self.addr) | !Cidr::mask_bits(self.prefix_len)
    }

    /// The `i`-th host address inside the prefix (wrapping within the
    /// prefix), convenient for synthetic topology generation.
    pub fn nth_host(&self, i: u32) -> Ipv4Addr {
        let span = self
            .last_u32()
            .wrapping_sub(self.first_u32())
            .wrapping_add(1);
        let off = if span == 0 { i } else { i % span };
        Ipv4Addr::from(self.first_u32().wrapping_add(off))
    }
}

impl FromStr for Cidr {
    type Err = CidrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = match s.split_once('/') {
            Some((a, l)) => (a, Some(l)),
            None => (s, None),
        };
        let addr: Ipv4Addr = addr_s.parse().map_err(|_| CidrParseError(s.to_string()))?;
        let prefix_len = match len_s {
            Some(l) => l.parse::<u8>().map_err(|_| CidrParseError(s.to_string()))?,
            None => 32,
        };
        Cidr::new(addr, prefix_len).ok_or_else(|| CidrParseError(s.to_string()))
    }
}

impl std::fmt::Display for Cidr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.prefix_len == 32 {
            write!(f, "{}", self.addr)
        } else {
            write!(f, "{}/{}", self.addr, self.prefix_len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let c: Cidr = "192.168.0.0/16".parse().unwrap();
        assert_eq!(c.prefix_len(), 16);
        assert_eq!(c.to_string(), "192.168.0.0/16");
        let h: Cidr = "10.1.2.3".parse().unwrap();
        assert_eq!(h.prefix_len(), 32);
        assert_eq!(h.to_string(), "10.1.2.3");
    }

    #[test]
    fn normalizes_host_bits() {
        let c: Cidr = "192.168.55.77/16".parse().unwrap();
        assert_eq!(c.network(), Ipv4Addr::new(192, 168, 0, 0));
    }

    #[test]
    fn containment() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(10, 255, 0, 1)));
        assert!(!c.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(Cidr::ANY.contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn covers_and_overlaps() {
        let big: Cidr = "10.0.0.0/8".parse().unwrap();
        let small: Cidr = "10.1.0.0/16".parse().unwrap();
        let other: Cidr = "11.0.0.0/8".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.overlaps(&small));
        assert!(small.overlaps(&big));
        assert!(!big.overlaps(&other));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("10.0.0/8".parse::<Cidr>().is_err());
        assert!("banana".parse::<Cidr>().is_err());
    }

    #[test]
    fn nth_host_stays_inside() {
        let c: Cidr = "10.0.0.0/30".parse().unwrap();
        for i in 0..16 {
            assert!(c.contains(c.nth_host(i)));
        }
    }

    #[test]
    fn first_last() {
        let c: Cidr = "10.0.0.0/24".parse().unwrap();
        assert_eq!(Ipv4Addr::from(c.first_u32()), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(Ipv4Addr::from(c.last_u32()), Ipv4Addr::new(10, 0, 0, 255));
    }
}
