#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> lint example smoke-run"
# The example lints a seeded wiring mistake (structured IN-L* rule ids)
# and prints the abstract field-effect table for the fixed config.
# (capture first: grep -q would close the pipe mid-print)
lint_out="$(cargo run --release -q -p innet-examples --bin lint)"
grep -q "IN-L" <<<"$lint_out"

echo "==> metrics example smoke-run"
# The example asserts the zero-silent-drops invariant
# (packets == delivered + buffered + drops-by-reason) and exercises
# both snapshot export formats end to end.
cargo run --release -q -p innet-examples --bin metrics \
  | grep -q "invariant holds: no silent packet loss"

echo "==> deploy_storm example smoke-run"
# A fleet of alpha-renamed tenants deploys one stock chain: every
# admission after the first must replay the memoized chain summary
# (the marker line proves the compositional path actually ran).
# (capture first: grep -q would close the pipe mid-print)
storm_out="$(cargo run --release -q -p innet-examples --bin deploy_storm)"
grep -qE "summary cache: [1-9][0-9]* hits" <<<"$storm_out"
grep -q "speedup:" <<<"$storm_out"

echo "==> fleet example smoke-run"
# The example builds a multi-host fleet over a generated capacitated
# topology, deploys through ranked placement, and rebalances load via
# live migration — the marker proves a migration actually completed.
# (capture first: grep -q would close the pipe mid-print)
fleet_out="$(cargo run --release -q -p innet-examples --bin fleet)"
grep -q "migration completed:" <<<"$fleet_out"
grep -q "load spread after rebalance" <<<"$fleet_out"

echo "==> scenarios example smoke-run"
# The scenario engine kills a PoP under a gravity traffic matrix and
# executes plan_fleet's consolidation on the data plane: the markers
# prove tenants actually re-homed and migrations actually ran.
# (capture first: grep -q would close the pipe mid-print)
scenarios_out="$(cargo run --release -q -p innet-examples --bin scenarios)"
grep -q "failover: .* re-homed" <<<"$scenarios_out"
grep -qE "consolidation executed: [1-9][0-9]* live migrations" <<<"$scenarios_out"

echo "==> bench compile gate"
# Benches are not run in CI (too slow, too noisy), but they must keep
# compiling — parallel_scaling in particular tracks the runner API.
cargo bench --no-run --quiet

echo "==> parallel example smoke-run"
# Differential, sharded-NAT, and global-degrade checks always run; the
# >=1.5x 4-worker speedup gate self-arms only on hosts with >=4 CPUs
# (on fewer cores the workers time-slice and no speedup is possible).
# (capture first: grep -q would close the pipe mid-print)
parallel_out="$(cargo run --release -q -p innet-examples --bin parallel)"
grep -q "verdict: FlowPartitionable" <<<"$parallel_out"
grep -q "all translated" <<<"$parallel_out"
grep -q "verdict: Global" <<<"$parallel_out"
grep -q "engine: compiled" <<<"$parallel_out"
grep -q "== verdict:" <<<"$parallel_out"

echo "==> bench snapshot smoke"
# Quick-mode snapshot emission into a scratch dir, then schema
# validation: proves the perf-trajectory machinery (BENCH_*.json
# writer + validator) stays wired without paying full bench time. The
# committed snapshots at the repo root are refreshed manually by full
# `cargo bench` runs, not by CI.
snapdir="$(mktemp -d)"
trap 'rm -rf "$snapdir"' EXIT
INNET_BENCH_QUICK=1 INNET_BENCH_SNAPSHOT_DIR="$snapdir" \
  cargo bench --quiet --bench parallel_scaling >/dev/null
cargo run --release -q -p innet-bench --bin validate_snapshot \
  "$snapdir/BENCH_parallel_scaling.json"
INNET_BENCH_QUICK=1 INNET_BENCH_SNAPSHOT_DIR="$snapdir" \
  cargo bench --quiet --bench deploy_storm >/dev/null
cargo run --release -q -p innet-bench --bin validate_snapshot \
  "$snapdir/BENCH_admission.json"
INNET_BENCH_QUICK=1 INNET_BENCH_SNAPSHOT_DIR="$snapdir" \
  cargo bench --quiet --bench fleet >/dev/null
cargo run --release -q -p innet-bench --bin validate_snapshot \
  "$snapdir/BENCH_fleet.json"
INNET_BENCH_QUICK=1 INNET_BENCH_SNAPSHOT_DIR="$snapdir" \
  cargo bench --quiet --bench scenarios >/dev/null
cargo run --release -q -p innet-bench --bin validate_snapshot \
  "$snapdir/BENCH_scenarios.json"

echo "CI OK"
