//! The chain-summary cache: fleet-wide memoization of compositional
//! chain summaries.
//!
//! [`crate::Controller::deploy`] checks module security by symbolic
//! execution; the compositional path
//! ([`innet_symnet::check_module_summarized`]) replays a memoized
//! [`SymSummary`] over the maximal chain-safe entry chain instead of
//! re-executing it element by element. This module provides the
//! memoization backend: a map from the chain's *canonical slice form*
//! ([`innet_click::ClickConfig::canonical_slice_text`] — classes, ordered
//! arguments, and order only, **no element names**) to its summary, so a
//! stock element chain shared across tenants — even alpha-renamed, even
//! embedded in different surrounding graphs — is summarized once
//! fleet-wide.
//!
//! # Keying and collision safety
//!
//! Like the verdict cache, the map is keyed by the full canonical slice
//! text rather than its 64-bit FNV fingerprint
//! ([`innet_click::ClickConfig::canonical_slice_hash`]): a crafted
//! fingerprint collision must not let one tenant's chain replay another's
//! transfer function.
//!
//! # Invalidation
//!
//! A chain summary is a pure function of the slice text — element classes
//! and arguments fully determine the chain's transfer function, which
//! depends on no controller state (policy, hardening, topology, other
//! tenants). Entries therefore never become *unsound*. The cache is still
//! epoch-invalidated alongside the verdict cache
//! ([`crate::Controller::invalidate_verdicts`]) as a hygiene measure: one
//! invalidation discipline for all verification memoization, and a bound
//! on how long entries outlive the workload that produced them. Stale
//! inserts (computed under an older epoch) are refused, mirroring the
//! verdict cache's contract.

use std::collections::HashMap;
use std::sync::Arc;

use innet_click::ClickConfig;
use innet_symnet::{ModelCache, SummarySource, SymSummary};
use parking_lot::RwLock;

/// The cache proper: an epoch counter plus the summary map. Shared across
/// `deploy_batch` verification shards behind `parking_lot::RwLock`, like
/// the verdict cache.
#[derive(Debug, Default)]
pub(crate) struct SummaryCache {
    epoch: u64,
    entries: HashMap<String, Arc<SymSummary>>,
}

impl SummaryCache {
    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a summary by its full canonical slice key.
    pub fn get(&self, key: &str) -> Option<Arc<SymSummary>> {
        self.entries.get(key).cloned()
    }

    /// Inserts a summary computed under `key_epoch`. Dropped silently if
    /// the epoch moved on while the summary was being computed.
    pub fn insert(&mut self, key_epoch: u64, key: String, summary: Arc<SymSummary>) {
        if key_epoch == self.epoch {
            self.entries.insert(key, summary);
        }
    }

    /// Starts a new epoch, discarding every entry; returns how many
    /// summaries were invalidated.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let discarded = self.entries.len() as u64;
        self.entries.clear();
        discarded
    }
}

/// [`SummarySource`] adapter handed to
/// [`innet_symnet::check_module_summarized`]: reads and writes the shared
/// cache under its lock, pinning the epoch observed at construction so a
/// summary computed before an invalidation can never land after it.
pub(crate) struct SharedSummaries {
    cache: Arc<RwLock<SummaryCache>>,
    models: Arc<ModelCache>,
    epoch: u64,
}

impl SharedSummaries {
    /// Snapshots the current epoch and wraps the shared cache, together
    /// with the fleet-wide symbolic model memo.
    pub fn new(cache: &Arc<RwLock<SummaryCache>>, models: &Arc<ModelCache>) -> SharedSummaries {
        let epoch = cache.read().epoch();
        SharedSummaries {
            cache: Arc::clone(cache),
            models: Arc::clone(models),
            epoch,
        }
    }
}

impl SummarySource for SharedSummaries {
    fn lookup(&self, cfg: &ClickConfig, chain: &[usize]) -> Option<Arc<SymSummary>> {
        self.cache.read().get(&cfg.canonical_slice_text(chain))
    }

    fn store(&self, cfg: &ClickConfig, chain: &[usize], summary: Arc<SymSummary>) {
        self.cache
            .write()
            .insert(self.epoch, cfg.canonical_slice_text(chain), summary);
    }

    fn models(&self) -> Option<&ModelCache> {
        Some(&self.models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> Arc<SymSummary> {
        Arc::new(SymSummary::identity())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut cache = SummaryCache::default();
        cache.insert(0, "k".to_string(), summary());
        assert!(cache.get("k").is_some());
        assert!(cache.get("other").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bump_discards_and_counts() {
        let mut cache = SummaryCache::default();
        cache.insert(0, "k".to_string(), summary());
        assert_eq!(cache.bump_epoch(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.epoch(), 1);
        // Stale inserts (computed under epoch 0) are refused.
        cache.insert(0, "k".to_string(), summary());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn shared_wrapper_pins_its_epoch() {
        let shared = Arc::new(RwLock::new(SummaryCache::default()));
        let models = Arc::new(ModelCache::default());
        let source = SharedSummaries::new(&shared, &models);
        let cfg = ClickConfig::parse("f :: IPFilter(allow udp); d :: DecIPTTL(); f -> d;").unwrap();
        source.store(&cfg, &[0, 1], summary());
        assert!(source.lookup(&cfg, &[0, 1]).is_some());
        assert!(source.lookup(&cfg, &[0]).is_none());

        // A wrapper created before an epoch bump cannot store afterwards…
        let stale = SharedSummaries::new(&shared, &models);
        shared.write().bump_epoch();
        stale.store(&cfg, &[0], summary());
        assert_eq!(shared.read().len(), 0);
        // …but a fresh wrapper can.
        let fresh = SharedSummaries::new(&shared, &models);
        fresh.store(&cfg, &[0], summary());
        assert_eq!(shared.read().len(), 1);
    }

    #[test]
    fn alpha_renamed_chains_share_an_entry() {
        let shared = Arc::new(RwLock::new(SummaryCache::default()));
        let source = SharedSummaries::new(&shared, &Arc::new(ModelCache::default()));
        let a = ClickConfig::parse("f :: IPFilter(allow udp); d :: DecIPTTL(); f -> d;").unwrap();
        let b =
            ClickConfig::parse("x9 :: IPFilter(allow   udp); y :: DecIPTTL(); x9 -> y;").unwrap();
        source.store(&a, &[0, 1], summary());
        assert!(
            source.lookup(&b, &[0, 1]).is_some(),
            "slice keys are name-independent"
        );
    }
}
