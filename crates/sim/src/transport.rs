//! Window-based transport models for the protocol-tunneling experiment
//! (paper §8, Figure 14).
//!
//! The experiment compares SCTP tunneled over UDP against SCTP tunneled
//! over TCP on an emulated 100 Mb/s, 20 ms-RTT path with induced random
//! loss:
//!
//! * Over **UDP**, the tunnel is transparent: SCTP's own AIMD loop sees
//!   the losses directly and recovers with fast retransmit —
//!   [`sctp_over_udp`].
//! * Over **TCP**, the tunnel repairs every loss itself, but its in-order
//!   delivery *stalls* the inner stream during recovery; the inner SCTP
//!   sees delivery-rate collapses and retransmission-timer expirations
//!   instead of clean loss signals, and both control loops back off —
//!   the "bad interactions between SCTP's congestion control loop and
//!   TCP's" — [`sctp_over_tcp`].

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::des::{SimTime, MILLI, SECOND};

/// Parameters of the tunneled path.
#[derive(Debug, Clone, Copy)]
pub struct TunnelPath {
    /// Bottleneck rate in bits/second.
    pub rate_bps: f64,
    /// Round-trip time.
    pub rtt: SimTime,
    /// Random per-packet loss probability (0..1).
    pub loss: f64,
    /// Segment size in bytes.
    pub mss: usize,
    /// Virtual duration to simulate.
    pub duration: SimTime,
}

impl TunnelPath {
    /// The paper's emulated path: 100 Mb/s, 20 ms RTT.
    pub fn paper(loss: f64) -> TunnelPath {
        TunnelPath {
            rate_bps: 100e6,
            rtt: 20 * MILLI,
            loss,
            mss: 1460,
            duration: 30 * SECOND,
        }
    }

    fn bdp_packets(&self) -> f64 {
        self.rate_bps * (self.rtt as f64 / SECOND as f64) / 8.0 / self.mss as f64
    }
}

/// Outcome of a tunnel simulation.
#[derive(Debug, Clone, Copy)]
pub struct TunnelResult {
    /// Application goodput in Mb/s.
    pub goodput_mbps: f64,
    /// Retransmission-timer expirations suffered by the inner protocol.
    pub inner_timeouts: u64,
}

/// One AIMD sender simulated in RTT rounds.
struct Aimd {
    cwnd: f64,
    ssthresh: f64,
    cap: f64,
}

impl Aimd {
    fn new(cap: f64) -> Aimd {
        Aimd {
            cwnd: 2.0,
            ssthresh: cap,
            cap,
        }
    }

    fn on_clean_round(&mut self) {
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd * 2.0).min(self.ssthresh);
        } else {
            self.cwnd += 1.0;
        }
        self.cwnd = self.cwnd.min(self.cap);
    }

    fn on_loss(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 2.0;
    }
}

/// SCTP directly exposed to the lossy path (UDP encapsulation).
pub fn sctp_over_udp(path: &TunnelPath, seed: u64) -> TunnelResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = path.bdp_packets() * 1.5;
    let mut cc = Aimd::new(cap);
    let mut now: SimTime = 0;
    let mut delivered = 0u64;
    let mut timeouts = 0u64;
    // SCTP RTO floor (RFC 4960 RTO.Min is 1 s; implementations commonly
    // clamp near 200 ms — we use the conservative implementation value).
    let rto: SimTime = 200 * MILLI;

    let drain_per_round = path.bdp_packets(); // The link empties one BDP per RTT.
    while now < path.duration {
        let w = cc.cwnd.round().max(1.0) as u64;
        let mut losses = 0u64;
        for _ in 0..w {
            if rng.gen_bool(path.loss.clamp(0.0, 1.0)) {
                losses += 1;
            }
        }
        // Goodput is bounded by the bottleneck drain rate regardless of
        // how aggressive the window is (excess packets only queue).
        delivered += ((w - losses) as f64).min(drain_per_round) as u64;
        if losses == 0 {
            cc.on_clean_round();
        } else if losses >= w || w < 4 {
            // Whole window (or a tiny window) lost: no dupacks, RTO.
            cc.on_timeout();
            timeouts += 1;
            now += rto;
        } else {
            // Fast retransmit: one multiplicative decrease per round.
            cc.on_loss();
        }
        now += path.rtt;
    }
    TunnelResult {
        goodput_mbps: delivered as f64 * path.mss as f64 * 8.0 / (now as f64 / SECOND as f64) / 1e6,
        inner_timeouts: timeouts,
    }
}

/// SCTP inside a TCP tunnel: the classic TCP-over-TCP meltdown.
///
/// The outer TCP hides every loss but pays for it with in-order recovery
/// stalls (one RTT for a fast retransmit; an exponentially backed-off RTO
/// when the window was too small for duplicate acks, when several
/// segments of one window were lost, or when the retransmission itself is
/// lost). The inner SCTP sees a loss-free but *spiky* pipe: its
/// retransmission timer adapts to the smoothed tunnel delay, so an outer
/// RTO stall blows past it, triggering spurious inner retransmissions —
/// duplicates the tunnel must still carry, in order, ahead of fresh data.
/// The duplicate flush delays fresh data further, which can fire the
/// inner timer again: both control loops back off against each other.
pub fn sctp_over_tcp(path: &TunnelPath, seed: u64) -> TunnelResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e77);
    let cap = path.bdp_packets() * 1.5;
    let mut outer = Aimd::new(cap);

    // Inner SCTP state: congestion window, outstanding fresh data queued
    // in the tunnel, and duplicate (spuriously retransmitted) packets the
    // tunnel must carry before any fresh data.
    let inner_cap = path.bdp_packets() * 4.0; // Receiver window is ample.
    let mut inner_cwnd = 2.0f64;
    let mut inner_ssthresh = inner_cap;
    let mut fresh_queue = 0.0f64;
    let mut dup_queue = 0.0f64;

    // Inner adaptive RTO: smoothed tunnel delay + variance, floored.
    let mut srtt = path.rtt as f64;
    let rto_floor = 100.0 * MILLI as f64;

    let mut now: SimTime = 0;
    let mut delivered = 0u64;
    let mut inner_timeouts = 0u64;
    let base_outer_rto = 200.0 * MILLI as f64;
    let mut outer_backoff = 0u32;

    while now < path.duration {
        let outer_w = outer.cwnd.round().max(1.0) as u64;
        let mut losses = 0u64;
        for _ in 0..outer_w {
            if rng.gen_bool(path.loss.clamp(0.0, 1.0)) {
                losses += 1;
            }
        }

        // The inner endpoint injects new data up to its window.
        let inflight = fresh_queue + dup_queue;
        let can_send = (inner_cwnd - inflight).max(0.0);
        fresh_queue += can_send;

        // Tunnel capacity this round; duplicates flush first (they carry
        // the earliest sequence numbers). The bottleneck drains at most
        // one BDP per RTT.
        let mut capacity = ((outer_w - losses) as f64).min(path.bdp_packets());
        let ship_dup = dup_queue.min(capacity);
        dup_queue -= ship_dup;
        capacity -= ship_dup;
        let ship_fresh = fresh_queue.min(capacity);
        fresh_queue -= ship_fresh;
        delivered += ship_fresh as u64;

        // Outer recovery stall for this round.
        let stall = if losses == 0 {
            outer.on_clean_round();
            outer_backoff = 0;
            0.0
        } else {
            let multi_loss = losses >= 2;
            let tiny_window = outer_w < 4;
            let rtx_lost = rng.gen_bool(path.loss.clamp(0.0, 1.0));
            if multi_loss || tiny_window || rtx_lost {
                outer.on_timeout();
                let s = base_outer_rto * f64::from(1u32 << outer_backoff.min(5));
                outer_backoff += 1;
                s
            } else {
                outer.on_loss();
                outer_backoff = 0;
                path.rtt as f64
            }
        };

        // The delay fresh data experiences this round: queueing behind the
        // backlog at the (post-recovery) outer rate, plus the stall.
        let outer_rate_pps = (outer.cwnd.max(1.0)) / (path.rtt as f64 / SECOND as f64);
        let queue_delay = (fresh_queue + dup_queue) / outer_rate_pps * SECOND as f64;
        let observed = path.rtt as f64 + stall + queue_delay;
        let inner_rto = (2.0 * srtt).max(rto_floor);
        // EWMA after the RTO comparison: the timer was armed on past
        // estimates.
        srtt = 0.875 * srtt + 0.125 * observed;

        if observed > inner_rto {
            // Spurious inner timeout: everything outstanding is
            // retransmitted into the tunnel as duplicates.
            dup_queue += fresh_queue;
            inner_ssthresh = (inner_cwnd / 2.0).max(2.0);
            inner_cwnd = 2.0;
            inner_timeouts += 1;
        } else if ship_fresh > 0.0 {
            // Acks arrived: normal growth.
            if inner_cwnd < inner_ssthresh {
                inner_cwnd = (inner_cwnd * 2.0).min(inner_cap);
            } else {
                inner_cwnd = (inner_cwnd + 1.0).min(inner_cap);
            }
        }

        now += path.rtt + stall as SimTime;
    }
    TunnelResult {
        goodput_mbps: delivered as f64 * path.mss as f64 * 8.0 / (now as f64 / SECOND as f64) / 1e6,
        inner_timeouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg<F: Fn(u64) -> f64>(f: F) -> f64 {
        (0..5).map(f).sum::<f64>() / 5.0
    }

    #[test]
    fn lossless_path_fills_the_pipe() {
        let r = sctp_over_udp(&TunnelPath::paper(0.0), 1);
        assert!(r.goodput_mbps > 80.0, "{}", r.goodput_mbps);
        assert_eq!(r.inner_timeouts, 0);
    }

    #[test]
    fn goodput_declines_with_loss() {
        let g1 = avg(|s| sctp_over_udp(&TunnelPath::paper(0.01), s).goodput_mbps);
        let g3 = avg(|s| sctp_over_udp(&TunnelPath::paper(0.03), s).goodput_mbps);
        let g5 = avg(|s| sctp_over_udp(&TunnelPath::paper(0.05), s).goodput_mbps);
        assert!(g1 > g3 && g3 > g5, "{g1} {g3} {g5}");
    }

    #[test]
    fn tcp_tunnel_two_to_five_times_worse() {
        // The paper: "when loss rate varies from 1% to 5%, running SCTP
        // over a TCP tunnel gives two to five times less throughput
        // compared to running SCTP over a UDP tunnel."
        for loss in [0.01, 0.02, 0.03, 0.04, 0.05] {
            let udp = avg(|s| sctp_over_udp(&TunnelPath::paper(loss), s).goodput_mbps);
            let tcp = avg(|s| sctp_over_tcp(&TunnelPath::paper(loss), s).goodput_mbps);
            let ratio = udp / tcp;
            assert!(
                (1.5..=8.0).contains(&ratio),
                "loss {loss}: udp {udp:.2} tcp {tcp:.2} ratio {ratio:.2}"
            );
        }
    }

    #[test]
    fn tcp_tunnel_suffers_inner_timeouts() {
        let r = sctp_over_tcp(&TunnelPath::paper(0.03), 3);
        assert!(r.inner_timeouts > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sctp_over_udp(&TunnelPath::paper(0.02), 9).goodput_mbps;
        let b = sctp_over_udp(&TunnelPath::paper(0.02), 9).goodput_mbps;
        assert_eq!(a, b);
    }
}
