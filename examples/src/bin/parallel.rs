//! Flow-sharded parallel execution: scale the stock consolidated
//! firewall across worker threads with the unified `RunnerConfig`
//! builder, observe the `innet_parallel_*` instruments, and verify the
//! stateful-degrade rule on a NAT.
//!
//! Exits non-zero if 4 workers fail to reach 1.5x the single-worker
//! rate on the stateless corpus — the smoke threshold CI enforces (the
//! full ≥3x target is measured by the `parallel_scaling` bench). The
//! speedup gate only applies on hosts with at least 4 CPUs: on fewer
//! cores the workers time-slice one another and no speedup is
//! physically possible, so the run still checks every correctness
//! invariant but reports the scaling numbers as informational.
//!
//! Run with: `cargo run --release -p innet-examples --bin parallel`

use std::net::Ipv4Addr;

use innet::obs;
use innet::platform::{consolidated_config, middlebox_config};
use innet::prelude::*;

const TRACE_LEN: usize = 4096;
const FLOWS: usize = 64;
const ROUNDS: usize = 40;

fn trace(dsts: &[Ipv4Addr]) -> Vec<Packet> {
    (0..TRACE_LEN)
        .map(|i| {
            let f = i % FLOWS;
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                .dst(dsts[f % dsts.len()], 80)
                .pad_to(64)
                .build()
        })
        .collect()
}

fn main() {
    // The paper's §5 consolidated firewall: one demux, 16 tenant
    // firewalls. Stateless end to end, so the registry clears it for
    // flow-sharded replication.
    let clients: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let pkts = trace(&clients);

    println!("== consolidated firewall (16 tenants), {TRACE_LEN}-packet trace x{ROUNDS} ==");
    let mut baseline = 0.0;
    let mut at4 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let reg = obs::Registry::new();
        let mut runner = RunnerConfig::new()
            .workers(workers)
            .batch(32)
            .metrics(&reg)
            .parallel(&cfg)
            .expect("valid config");
        let stats = runner.run(&pkts, ROUNDS);
        assert_eq!(stats.transmitted, stats.packets, "nothing lost");
        let speedup = if baseline > 0.0 {
            stats.pps() / baseline
        } else {
            1.0
        };
        if workers == 1 {
            baseline = stats.pps();
        }
        if workers == 4 {
            at4 = stats.pps();
        }
        // Every worker reports its own share through the shared registry.
        let per_worker = reg.labeled_counter("innet_parallel_packets_total", "worker");
        let shares: Vec<String> = (0..workers)
            .map(|w| format!("w{w}={}", per_worker.get(&w.to_string())))
            .collect();
        println!(
            "  {workers} worker(s): {:>8.0} kpps  ({speedup:.2}x)   [{}]",
            stats.pps() / 1e3,
            shares.join(" ")
        );
    }

    // The stateful-degrade rule, visibly: a NAT requests 4 workers and
    // runs on 1, because replicating its translation table would give
    // flows different mappings depending on the replica they hash to.
    let nat = middlebox_config("nat").expect("stock kind");
    let runner = RunnerConfig::new()
        .workers(4)
        .parallel(&nat)
        .expect("valid config");
    println!("== stateful degrade ==");
    println!(
        "  IPNAT: requested {} workers, running {} (shardable: {})",
        runner.requested_workers(),
        runner.effective_workers(),
        runner.shardable()
    );
    assert!(!runner.shardable());
    assert_eq!(runner.effective_workers(), 1);

    let speedup4 = at4 / baseline;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        println!("== verdict: 4-worker speedup {speedup4:.2}x on {cores} cores (smoke threshold 1.5x) ==");
        assert!(
            speedup4 >= 1.5,
            "expected >=1.5x at 4 workers on a {cores}-core host, measured {speedup4:.2}x"
        );
    } else {
        println!(
            "== verdict: 4-worker speedup {speedup4:.2}x on {cores} core(s) — \
             speedup gate skipped (needs >=4 CPUs to be meaningful) =="
        );
    }
}
