//! A wide-area end-to-end scenario driven by the discrete-event core:
//! notification traffic crosses an Internet link, triggers on-the-fly VM
//! instantiation at the platform, passes the deployed batcher module, and
//! crosses the access link to the mobile client — all in one virtual
//! clock.

use innet::platform::ClientEntry;
use innet::prelude::*;
use innet::sim::des::{EventQueue, SimTime, MILLI, SECOND};
use innet::sim::link::Link;
use rand::{rngs::StdRng, SeedableRng};
use std::net::Ipv4Addr;

const MODULE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
const PHONE: Ipv4Addr = Ipv4Addr::new(172, 16, 15, 133);

#[derive(Debug, PartialEq, Eq)]
enum Event {
    /// A notification leaves the app server.
    SendNotification(u16),
    /// The packet arrives at the platform edge.
    ArriveAtPlatform(u16),
    /// The batcher released packets; they arrive at the phone.
    ArriveAtPhone(usize),
    /// Periodic check of the batcher's release timer.
    PollBatcher,
}

#[test]
fn notification_pipeline_end_to_end() {
    // Links: app server → platform (20 ms one way), platform → phone
    // (30 ms one way over the radio access network).
    let mut wan = Link::new(100e6, 20 * MILLI, 0.0);
    let mut ran = Link::new(10e6, 30 * MILLI, 0.0);
    let mut rng = StdRng::seed_from_u64(9);

    // The platform with the client's registered batcher (1 s interval to
    // keep the test fast; the real module uses 120 s).
    let mut host = Host::new(16 * 1024);
    let mut sw = SwitchController::new();
    sw.register(ClientEntry {
        addr: MODULE,
        config: ClickConfig::parse(&format!(
            "FromNetfront() -> IPFilter(allow udp dst port 1500) \
             -> IPRewriter(pattern - - {PHONE} - 0 0) \
             -> TimedUnqueue(1, 100) -> ToNetfront();"
        ))
        .unwrap(),
        stateful: false,
    });

    let mut q: EventQueue<Event> = EventQueue::new();
    // Five notifications, 400 ms apart.
    for i in 0..5u16 {
        q.schedule(i as SimTime * 400 * MILLI, Event::SendNotification(i));
    }
    q.schedule(100 * MILLI, Event::PollBatcher);

    let mut deliveries: Vec<(SimTime, u16)> = Vec::new();
    let mut pending_releases = 0usize;

    while let Some((now, ev)) = q.pop() {
        match ev {
            Event::SendNotification(seq) => {
                let arrive = wan.transmit(now, 1064, &mut rng).expect("lossless link");
                q.schedule(arrive, Event::ArriveAtPlatform(seq));
            }
            Event::ArriveAtPlatform(seq) => {
                let pkt = PacketBuilder::udp()
                    .src(Ipv4Addr::new(8, 8, 8, 8), 9999)
                    .dst(MODULE, 1500)
                    .ident(seq)
                    .payload(b"ding")
                    .build();
                // The switch boots the VM on the first packet; nothing is
                // released until the batcher interval fires.
                let out = sw.on_packet(&mut host, pkt, now).expect("capacity");
                assert!(out.is_empty(), "batcher holds traffic");
            }
            Event::PollBatcher => {
                // Flush VM lifecycle transitions and fire element timers.
                host.advance(now);
                if let Some(vm) = sw.binding(MODULE) {
                    if let Ok(v) = host.vm_mut(vm) {
                        if let Some(router) = v.router.as_mut() {
                            for (_iface, pkt) in router.tick(now) {
                                let arrive = ran
                                    .transmit(now, pkt.len(), &mut rng)
                                    .expect("lossless link");
                                let seq = pkt.ipv4().unwrap().ident();
                                q.schedule(arrive, Event::ArriveAtPhone(seq as usize));
                                pending_releases += 1;
                            }
                        }
                    }
                }
                if now < 4 * SECOND {
                    q.schedule(now + 100 * MILLI, Event::PollBatcher);
                }
            }
            Event::ArriveAtPhone(seq) => {
                deliveries.push((now, seq as u16));
            }
        }
    }

    assert_eq!(deliveries.len(), 5, "all notifications delivered");
    assert_eq!(pending_releases, 5);
    for (t, seq) in &deliveries {
        // Lower bound: WAN latency + batching delay + RAN latency.
        let sent = *seq as SimTime * 400 * MILLI;
        let min_delay = 20 * MILLI + 30 * MILLI;
        assert!(
            t - sent >= min_delay,
            "notification {seq} arrived impossibly fast: {} ms",
            (t - sent) / MILLI
        );
        // Upper bound: one batching interval + polling slack + links.
        assert!(
            t - sent <= SECOND + 200 * MILLI + min_delay,
            "notification {seq} took too long: {} ms",
            (t - sent) / MILLI
        );
    }
    // Batching coalesced wake-ups: distinct delivery instants ≤ wake-ups
    // a naive per-notification push would cause.
    let mut instants: Vec<SimTime> = deliveries.iter().map(|(t, _)| *t).collect();
    instants.dedup();
    assert!(instants.len() <= 5);

    // Ordering preserved through the pipeline.
    let seqs: Vec<u16> = deliveries.iter().map(|&(_, s)| s).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted);

    // Billing recorded the five packets against the tenant.
    let usage = sw.usage(MODULE);
    assert_eq!(usage.packets, 5);
    assert_eq!(usage.boots, 1);
}
