//! The paper's Table 1: safety verdicts for a catalog of middlebox
//! configurations, per requester class.
//!
//! Mapping of the paper's symbols: ✓ = [`Verdict::Safe`], ✗ =
//! [`Verdict::Reject`], ✓(s) = [`Verdict::SafeWithSandbox`].

use std::net::Ipv4Addr;

use innet_click::{ClickConfig, Registry};
use innet_symnet::{check_module, RequesterClass, SecurityContext, Verdict};

/// One row of the Table 1 matrix.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Middlebox name as the paper lists it.
    pub name: &'static str,
    /// Verdicts for (third party, client, operator).
    pub verdicts: [Verdict; 3],
}

/// The middlebox catalog of Table 1, instantiated for a module that would
/// be assigned `assigned`, owned by a tenant whose registered addresses
/// are `owner` and `owner2`, tunneling to `peer` (also registered).
pub fn table1_catalog(
    assigned: Ipv4Addr,
    owner: Ipv4Addr,
    owner2: Ipv4Addr,
    peer: Ipv4Addr,
) -> Vec<(&'static str, ClickConfig)> {
    let parse = |s: &str| ClickConfig::parse(s).expect("catalog configs are valid");
    vec![
        (
            "IP Router",
            parse(
                "FromNetfront() -> CheckIPHeader() -> DecIPTTL() \
                 -> r :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1); \
                 r[0] -> ToNetfront(0); r[1] -> ToNetfront(1);",
            ),
        ),
        (
            "DPI",
            parse(
                "FromNetfront() -> d :: DPI(\"attack-signature\"); \
                 d[0] -> ToNetfront(); d[1] -> Discard();",
            ),
        ),
        (
            "NAT",
            parse(
                "FromNetfront(0) -> [0]n :: IPNAT(203.0.113.99); n[0] -> ToNetfront(1); \
                 FromNetfront(1) -> [1]n; n[1] -> ToNetfront(0);",
            ),
        ),
        (
            "Transparent Proxy",
            parse(
                "FromNetfront(0) -> [0]t :: TransparentProxy(192.0.2.80, 3128); \
                 t[0] -> ToNetfront(1); \
                 FromNetfront(1) -> [1]t; t[1] -> ToNetfront(0);",
            ),
        ),
        (
            "Flow meter",
            parse(&format!(
                "FromNetfront() -> FlowMeter() \
                 -> IPRewriter(pattern - - {owner} - 0 0) -> ToNetfront();"
            )),
        ),
        (
            "Rate limiter",
            parse(&format!(
                "FromNetfront() -> RateLimiter(10000) \
                 -> IPRewriter(pattern - - {owner} - 0 0) -> ToNetfront();"
            )),
        ),
        (
            "Firewall",
            parse(&format!(
                "FromNetfront() -> IPFilter(allow udp, allow tcp dst port 80) \
                 -> IPRewriter(pattern - - {owner} - 0 0) -> ToNetfront();"
            )),
        ),
        (
            "Tunnel",
            parse(&format!(
                "FromNetfront(0) -> UDPTunnelEncap({assigned}, 7000, {peer}, 7001) \
                   -> ToNetfront(1); \
                 FromNetfront(1) -> UDPTunnelDecap() -> ToNetfront(0);"
            )),
        ),
        (
            "Multicast",
            parse(&format!(
                "FromNetfront() -> IPMulticast({owner}, {owner2}) -> ToNetfront();"
            )),
        ),
        (
            "DNS server (stock)",
            parse(&format!(
                "FromNetfront() -> StockDNSServer({assigned}) -> ToNetfront();"
            )),
        ),
        (
            "Reverse proxy (stock)",
            parse(&format!(
                "FromNetfront() -> StockReverseProxy({assigned}) -> ToNetfront();"
            )),
        ),
        (
            "x86 VM",
            parse("FromNetfront() -> StockX86VM() -> ToNetfront();"),
        ),
    ]
}

/// Runs the full Table 1 matrix: every catalog middlebox checked for every
/// requester class.
pub fn table1_matrix() -> Vec<Table1Row> {
    let assigned = Ipv4Addr::new(203, 0, 113, 10);
    let owner = Ipv4Addr::new(172, 16, 15, 133);
    let owner2 = Ipv4Addr::new(172, 16, 15, 134);
    let peer = Ipv4Addr::new(198, 51, 100, 1);
    let registry = Registry::standard();
    let registered = vec![owner, owner2, peer];

    table1_catalog(assigned, owner, owner2, peer)
        .into_iter()
        .map(|(name, cfg)| {
            let verdicts = [
                RequesterClass::ThirdParty,
                RequesterClass::Client,
                RequesterClass::Operator,
            ]
            .map(|class| {
                check_module(
                    &cfg,
                    &SecurityContext {
                        assigned_addr: assigned,
                        registered: registered.clone(),
                        class,
                    },
                    &registry,
                )
                .expect("catalog configs are modellable")
                .verdict
            });
            Table1Row { name, verdicts }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table 1 from the paper, symbol by symbol.
    #[test]
    fn matches_paper_table1() {
        use Verdict::{Reject as X, Safe as V, SafeWithSandbox as S};
        let expected: Vec<(&str, [Verdict; 3])> = vec![
            ("IP Router", [X, X, V]),
            ("DPI", [X, X, V]),
            ("NAT", [X, X, V]),
            ("Transparent Proxy", [X, X, V]),
            ("Flow meter", [V, V, V]),
            ("Rate limiter", [V, V, V]),
            ("Firewall", [V, V, V]),
            ("Tunnel", [S, V, V]),
            ("Multicast", [V, V, V]),
            ("DNS server (stock)", [V, V, V]),
            ("Reverse proxy (stock)", [V, V, V]),
            ("x86 VM", [S, S, V]),
        ];
        let matrix = table1_matrix();
        assert_eq!(matrix.len(), expected.len());
        for (row, (name, verdicts)) in matrix.iter().zip(expected.iter()) {
            assert_eq!(row.name, *name);
            assert_eq!(
                row.verdicts, *verdicts,
                "verdicts for {name} diverge from Table 1"
            );
        }
    }
}
