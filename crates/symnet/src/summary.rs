//! Compositional symbolic summaries of chain-safe element chains.
//!
//! A [`SymSummary`] is the transfer function of a maximal single-in /
//! single-out chain of [`chain-safe`](crate::SymElement::chain_safe)
//! elements, captured once by running each element's model over a fully
//! unconstrained *capture probe* and folded with [`compose`]. Applying a
//! summary ([`SymSummary::apply`]) to a packet at a graph entry reproduces
//! — exactly, up to variable renaming and write positions — the set of
//! branches the engine would produce by executing the chain element by
//! element, at a cost independent of the chain's length and branch
//! structure of the individual elements.
//!
//! # The summary domain
//!
//! Each [`SummaryBranch`] is one input-partition cell of the chain:
//!
//! * `constraints` — per header field, the intersection set the chain
//!   applies to the value that field held *at chain entry* (not to the
//!   field slot: copies may move entry values into other fields);
//! * `writes` — the final value of every overwritten field, as a
//!   constant, a reference to an entry field's value ([`SummaryVal::Entry`]
//!   — preserving SymNet's structural `provably_same` binding), or a
//!   fresh-variable slot ([`SummaryVal::Fresh`] — slot indices preserve
//!   aliasing when one fresh value lands in several fields);
//! * `fresh` — origin and residual range of each fresh slot;
//! * `outcome` — the branch continues past the chain, or leaves through a
//!   numbered egress interface.
//!
//! # Soundness (`summarize(chain) ⊑ execute(chain)`)
//!
//! Summaries are *exact* (not merely over-approximate) for chain-safe
//! models, by the substitution-exactness contract of
//! [`SymElement::chain_safe`]: chain-safe
//! models transform packets only through value-preserving writes and
//! range-intersection constraints, so their behaviour on any restriction
//! of the capture probe equals the restriction of their captured
//! behaviour. Concretely, for every chain `C` of chain-safe elements and
//! every packet `p` obtained by constrain-only refinement of
//! [`SymPacket::unconstrained`]:
//!
//! * every feasible branch of `execute(C, p)` corresponds to exactly one
//!   feasible branch of `apply(summarize(C), p)` with identical field
//!   values (modulo fresh-variable renaming), identical possible-value
//!   sets, identical origins, identical written-field sets, and identical
//!   outcome — and vice versa (infeasible cells drop on both sides);
//! * therefore every verdict predicate (`ever_written`, `provably_eq`,
//!   `provably_same` against the ingress snapshot, `possible`,
//!   `origin_of`) agrees between the two.
//!
//! The unit tests below and the 1,000-config differential suite in
//! `tests/` check this relation against the whole-graph executor, which
//! remains the oracle.
//!
//! # Fallback rule
//!
//! Summarization stops — and the engine falls back to per-element
//! execution — at chain boundaries: the first element that is not
//! chain-safe (stateful firewalls, NATs, rewriters' reverse paths,
//! tunnels), any multi-port fan-out or fan-in, and any edge that does not
//! run `[0] -> [0]`. [`entry_chain`] encodes exactly this rule.

use std::collections::HashMap;

use crate::{
    field::{Field, ALL_FIELDS},
    model::{SymElement, SymGraph, SymOut},
    packet::SymPacket,
    value::{Origin, RangeSet, SymValue, VarId},
};

/// Branch-count cap: a chain whose composed partition exceeds this many
/// cells is not worth memoizing (and would cost more to replay than to
/// execute); summarization fails and the caller falls back.
const MAX_BRANCHES: usize = 256;

/// The final value of an overwritten field in a summary branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryVal {
    /// A known constant.
    Const(u64),
    /// The value the named field held at chain entry (structural binding:
    /// replay writes the very same symbolic value, preserving
    /// `provably_same` against the ingress snapshot).
    Entry(Field),
    /// A fresh variable, identified by its slot index in
    /// [`SummaryBranch::fresh`]. Two fields holding the same slot hold the
    /// same variable after replay.
    Fresh(usize),
}

/// Where a summary branch ends up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOutcome {
    /// The packet continues past the chain (out port 0 of the last
    /// element).
    Continue,
    /// The packet leaves the graph through this egress interface.
    Egress(u16),
}

/// One input-partition cell of a summarized chain.
#[derive(Debug, Clone)]
pub struct SummaryBranch {
    /// Intersection constraint per *entry value* of a field (fields not
    /// listed are unconstrained by this branch).
    pub constraints: Vec<(Field, RangeSet)>,
    /// Final value of every field the chain overwrites on this branch.
    pub writes: Vec<(Field, SummaryVal)>,
    /// Origin and residual range of each fresh-variable slot.
    pub fresh: Vec<(Origin, RangeSet)>,
    /// Continue past the chain, or egress.
    pub outcome: BranchOutcome,
}

/// The memoizable transfer function of a chain-safe element chain.
#[derive(Debug, Clone)]
pub struct SymSummary {
    /// The input partition: disjoint feasible branches.
    pub branches: Vec<SummaryBranch>,
    /// Number of chain elements this summary covers.
    pub nodes: usize,
}

/// A maximal chain-safe prefix of a graph starting at an entry node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryChain {
    /// Chain node indices, in execution order (may be empty when the
    /// entry itself is not chain-safe).
    pub nodes: Vec<usize>,
    /// Where `Continue` branches resume per-element execution:
    /// `(node, in_port)` — `None` when the chain ends at an element with
    /// no outgoing edge (continues drop, as in the runtime).
    pub cont: Option<(usize, usize)>,
}

impl SymSummary {
    /// The identity summary: one unconstrained, write-free `Continue`
    /// branch covering zero elements.
    pub fn identity() -> SymSummary {
        SymSummary {
            branches: vec![SummaryBranch {
                constraints: Vec::new(),
                writes: Vec::new(),
                fresh: Vec::new(),
                outcome: BranchOutcome::Continue,
            }],
            nodes: 0,
        }
    }

    /// Replays the summary on `base` as if it had just been injected at
    /// the chain head: records an arrival per chain node (keeping hop
    /// accounting and loop detection coherent), narrows entry values by
    /// the branch constraints, and materializes the branch writes.
    /// Infeasible branches are dropped. Returns one packet per surviving
    /// branch with its outcome.
    pub fn apply(
        &self,
        base: &SymPacket,
        chain_nodes: &[usize],
    ) -> Vec<(BranchOutcome, SymPacket)> {
        let entry_vals: Vec<(Field, SymValue)> =
            ALL_FIELDS.iter().map(|&f| (f, base.get(f))).collect();
        let entry_val = |f: Field| -> SymValue {
            entry_vals
                .iter()
                .find(|(g, _)| *g == f)
                .map(|(_, v)| *v)
                .expect("ALL_FIELDS covers every field")
        };
        let mut out = Vec::new();
        'branches: for br in &self.branches {
            let mut p = base.clone();
            for &n in chain_nodes {
                p.record_arrival(n, 0);
            }
            for (g, r) in &br.constraints {
                if !p.constrain_value(entry_val(*g), r) {
                    continue 'branches;
                }
            }
            let mut slots: Vec<Option<SymValue>> = vec![None; br.fresh.len()];
            for (f, v) in &br.writes {
                let val = match v {
                    SummaryVal::Const(c) => SymValue::Const(*c),
                    SummaryVal::Entry(g) => entry_val(*g),
                    SummaryVal::Fresh(s) => {
                        if slots[*s].is_none() {
                            let (origin, ranges) = br.fresh[*s].clone();
                            slots[*s] = Some(p.fresh_ranged(origin, ranges));
                        }
                        slots[*s].expect("slot just filled")
                    }
                };
                p.write(*f, val);
            }
            if p.feasible() {
                out.push((br.outcome, p));
            }
        }
        out
    }
}

/// Captures the summary of a single chain-safe element by running its
/// model once over the unconstrained capture probe and reading each output
/// branch back into the summary domain. Returns `None` when the element is
/// not chain-safe or a branch falls outside the domain (non-zero out port,
/// header-layer manipulation).
pub fn summarize_element(model: &dyn SymElement) -> Option<SymSummary> {
    if !model.chain_safe() {
        return None;
    }
    let probe = SymPacket::capture_probe();
    let entry = probe.ingress;
    let entry_field_of: HashMap<VarId, Field> = ALL_FIELDS
        .iter()
        .filter_map(|&f| entry.get(f).as_var().map(|id| (id, f)))
        .collect();
    let mut branches = Vec::new();
    for o in model.exec(0, probe) {
        let (outcome, b) = match o {
            SymOut::Port(0, b) => (BranchOutcome::Continue, b),
            SymOut::Port(_, _) => return None,
            SymOut::Egress(iface, b) => (BranchOutcome::Egress(iface), b),
        };
        if !b.feasible() {
            continue;
        }
        if b.depth() != 1 {
            return None;
        }
        let mut constraints = Vec::new();
        for &g in &ALL_FIELDS {
            if let Some(id) = entry.get(g).as_var() {
                let r = b.possible_of(SymValue::Var(id));
                if !r.is_full() {
                    constraints.push((g, r));
                }
            }
        }
        let mut writes = Vec::new();
        let mut fresh: Vec<(Origin, RangeSet)> = Vec::new();
        let mut slot_of: HashMap<VarId, usize> = HashMap::new();
        for &f in &ALL_FIELDS {
            if !b.ever_written(f) {
                if b.get(f) != entry.get(f) {
                    // A layer operation changed the field without a write
                    // record: outside the domain.
                    return None;
                }
                continue;
            }
            let val = match b.get(f) {
                SymValue::Const(c) => SummaryVal::Const(c),
                SymValue::Var(id) => match entry_field_of.get(&id) {
                    Some(&g) => SummaryVal::Entry(g),
                    None => {
                        let slot = *slot_of.entry(id).or_insert_with(|| {
                            let origin = b
                                .origin_of(SymValue::Var(id))
                                .expect("fresh vars have an origin");
                            fresh.push((origin, b.possible_of(SymValue::Var(id))));
                            fresh.len() - 1
                        });
                        SummaryVal::Fresh(slot)
                    }
                },
            };
            writes.push((f, val));
        }
        branches.push(SummaryBranch {
            constraints,
            writes,
            fresh,
            outcome,
        });
        if branches.len() > MAX_BRANCHES {
            return None;
        }
    }
    Some(SymSummary { branches, nodes: 1 })
}

fn intersect_constraint(map: &mut HashMap<Field, RangeSet>, f: Field, r: &RangeSet) -> bool {
    let cur = map.entry(f).or_insert_with(RangeSet::full);
    *cur = cur.intersect(r);
    !cur.is_empty()
}

/// Composes two summaries: the transfer function of running chain `a`
/// then chain `b`. Egress branches of `a` pass through unchanged;
/// `Continue` branches of `a` are refined by each branch of `b`, with
/// `b`'s entry-value constraints and entry-value reads translated through
/// `a`'s writes. Returns `None` when the composed partition exceeds the
/// branch cap.
pub fn compose(a: &SymSummary, b: &SymSummary) -> Option<SymSummary> {
    let mut branches = Vec::new();
    for x in &a.branches {
        if matches!(x.outcome, BranchOutcome::Egress(_)) {
            branches.push(x.clone());
            continue;
        }
        let xw: HashMap<Field, SummaryVal> = x.writes.iter().cloned().collect();
        'ybranch: for y in &b.branches {
            let mut constraints: HashMap<Field, RangeSet> = x.constraints.iter().cloned().collect();
            let mut fresh = x.fresh.clone();
            let base = fresh.len();
            fresh.extend(y.fresh.iter().cloned());
            // Translate b's constraints on what arrives at its entry
            // through a's writes.
            for (g, r) in &y.constraints {
                match xw.get(g) {
                    Some(SummaryVal::Const(c)) => {
                        if !r.contains(*c) {
                            continue 'ybranch;
                        }
                    }
                    Some(SummaryVal::Entry(h)) => {
                        if !intersect_constraint(&mut constraints, *h, r) {
                            continue 'ybranch;
                        }
                    }
                    Some(SummaryVal::Fresh(s)) => {
                        fresh[*s].1 = fresh[*s].1.intersect(r);
                        if fresh[*s].1.is_empty() {
                            continue 'ybranch;
                        }
                    }
                    None => {
                        if !intersect_constraint(&mut constraints, *g, r) {
                            continue 'ybranch;
                        }
                    }
                }
            }
            // Translate b's writes; b wins per field.
            let mut writes: HashMap<Field, SummaryVal> = xw.clone();
            for (f, v) in &y.writes {
                let tv = match v {
                    SummaryVal::Const(c) => SummaryVal::Const(*c),
                    SummaryVal::Fresh(s) => SummaryVal::Fresh(base + s),
                    SummaryVal::Entry(g) => match xw.get(g) {
                        Some(w) => *w,
                        None => SummaryVal::Entry(*g),
                    },
                };
                writes.insert(*f, tv);
            }
            let mut constraints: Vec<(Field, RangeSet)> = constraints.into_iter().collect();
            constraints.sort_by_key(|(f, _)| *f as usize);
            let mut writes: Vec<(Field, SummaryVal)> = writes.into_iter().collect();
            writes.sort_by_key(|(f, _)| *f as usize);
            branches.push(SummaryBranch {
                constraints,
                writes,
                fresh,
                outcome: y.outcome,
            });
            if branches.len() > MAX_BRANCHES {
                return None;
            }
        }
    }
    Some(SymSummary {
        branches,
        nodes: a.nodes + b.nodes,
    })
}

/// Summarizes a chain of graph nodes by folding per-element summaries
/// with [`compose`] — the genuinely compositional production path. `None`
/// when any element resists summarization or the partition explodes.
pub fn summarize_chain(g: &SymGraph, nodes: &[usize]) -> Option<SymSummary> {
    let mut acc = SymSummary::identity();
    for &n in nodes {
        let s = summarize_element(g.model(n))?;
        acc = compose(&acc, &s)?;
    }
    Some(acc)
}

/// Extracts the maximal chain-safe single-in/single-out chain starting at
/// `entry`, together with the continuation point where per-element
/// execution resumes. This is the summarization fallback rule in code:
/// the chain stops at the first non-chain-safe element, any non-port-0
/// wiring, and any fan-in (successor in-degree > 1).
pub fn entry_chain(g: &SymGraph, entry: usize) -> EntryChain {
    let mut nodes = Vec::new();
    let mut cur = entry;
    loop {
        if !g.model(cur).chain_safe() {
            return EntryChain {
                nodes,
                cont: Some((cur, 0)),
            };
        }
        let outs = g.out_edges(cur);
        if outs.iter().any(|&(p, _, _)| p != 0) {
            return EntryChain {
                nodes,
                cont: Some((cur, 0)),
            };
        }
        nodes.push(cur);
        match outs.first() {
            None => {
                return EntryChain { nodes, cont: None };
            }
            Some(&(_, to, to_port)) => {
                if to_port != 0 || g.in_edges(to).len() != 1 || nodes.contains(&to) {
                    return EntryChain {
                        nodes,
                        cont: Some((to, to_port)),
                    };
                }
                cur = to;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExecOptions, Observe};
    use crate::models::build_sym_graph;
    use innet_click::{ClickConfig, Registry};

    fn graph(cfg: &str) -> (ClickConfig, SymGraph) {
        let cfg = ClickConfig::parse(cfg).unwrap();
        let g = build_sym_graph(&cfg, &Registry::standard()).unwrap();
        (cfg, g)
    }

    /// Fingerprint of a flow for comparing executor output with summary
    /// replay: everything the verdict predicates can observe.
    fn flow_key(p: &SymPacket) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for &f in &ALL_FIELDS {
            let written = p.ever_written(f);
            let same_src = p.provably_same(p.get(f), p.ingress.get(Field::IpSrc));
            let same_dst = p.provably_same(p.get(f), p.ingress.get(Field::IpDst));
            let origin = p.origin_of(p.get(f));
            let single = p.possible(f).as_single();
            let full = p.possible(f).is_full();
            let _ = write!(
                s,
                "{f}:w={written},ss={same_src},sd={same_dst},o={origin:?},c={single:?},f={full};"
            );
        }
        s
    }

    /// Differential harness: whole-graph execution vs summary replay of
    /// the maximal entry chain, continuing per-element past the boundary.
    fn assert_summary_matches(cfg_text: &str) {
        let (cfg, g) = graph(cfg_text);
        let entry = g
            .node_index(&cfg.elements[0].name)
            .expect("first element is the entry");
        let opts = ExecOptions {
            max_hops: 10_000,
            max_node_visits: 6,
            observe: Observe::EgressOnly,
        };
        let oracle = g.run(entry, 0, SymPacket::unconstrained(), &opts);

        let chain = entry_chain(&g, entry);
        assert!(
            !chain.nodes.is_empty(),
            "test configs start with a chain-safe entry"
        );
        let summary = summarize_chain(&g, &chain.nodes).expect("chain summarizes");
        let mut egress: Vec<(u16, SymPacket)> = Vec::new();
        for (outcome, pkt) in summary.apply(&SymPacket::unconstrained(), &chain.nodes) {
            match outcome {
                BranchOutcome::Egress(iface) => egress.push((iface, pkt)),
                BranchOutcome::Continue => {
                    if let Some((n, p)) = chain.cont {
                        let res = g.run(n, p, pkt, &opts);
                        egress.extend(res.egress);
                    }
                }
            }
        }

        let mut want: Vec<String> = oracle
            .egress
            .iter()
            .map(|(i, p)| format!("{i}|{}", flow_key(p)))
            .collect();
        let mut got: Vec<String> = egress
            .iter()
            .map(|(i, p)| format!("{i}|{}", flow_key(p)))
            .collect();
        want.sort();
        got.sort();
        assert_eq!(want, got, "summary replay diverged on:\n{cfg_text}");
    }

    #[test]
    fn identity_composes_as_unit() {
        let (_, g) = graph("src :: FromNetfront(); dst :: ToNetfront(); src -> dst;");
        let s = summarize_chain(&g, &[0, 1]).unwrap();
        let id = SymSummary::identity();
        let left = compose(&id, &s).unwrap();
        let right = compose(&s, &id).unwrap();
        assert_eq!(left.branches.len(), s.branches.len());
        assert_eq!(right.branches.len(), s.branches.len());
        assert_eq!(left.nodes, s.nodes);
        assert_eq!(right.nodes, s.nodes);
    }

    #[test]
    fn filter_chain_summarizes_exactly() {
        assert_summary_matches(
            "FromNetfront() -> IPFilter(allow udp dst port 1500) \
             -> IPRewriter(pattern - - 172.16.15.133 - 0 0) \
             -> TimedUnqueue(120, 100) -> ToNetfront();",
        );
    }

    #[test]
    fn responder_binding_survives_summary() {
        assert_summary_matches("FromNetfront() -> ICMPPingResponder() -> ToNetfront();");
    }

    #[test]
    fn turnaround_server_summary() {
        assert_summary_matches("FromNetfront() -> ServerS() -> ToNetfront();");
    }

    #[test]
    fn dec_ttl_fresh_slot() {
        assert_summary_matches("FromNetfront() -> DecIPTTL() -> DecIPTTL() -> ToNetfront();");
    }

    #[test]
    fn opaque_vm_havoc_summary() {
        assert_summary_matches("FromNetfront() -> StockX86VM() -> ToNetfront();");
    }

    #[test]
    fn multicast_branches() {
        assert_summary_matches("FromNetfront() -> IPMulticast(10.0.0.1, 10.0.0.2) -> Discard();");
    }

    #[test]
    fn spoof_chain_summary() {
        assert_summary_matches(
            "FromNetfront() -> SetIPSrc(8.8.8.8) -> SetIPDst(9.9.9.9) -> ToNetfront();",
        );
    }

    #[test]
    fn chain_stops_at_stateful_element() {
        let (_, g) = graph(
            "client_in :: FromNetfront();
             fw :: StatefulFirewall(allow udp);
             s :: ServerS();
             out :: ToNetfront();
             client_in -> [0]fw; fw[0] -> s -> [1]fw; fw[1] -> out;",
        );
        let entry = g.node_index("client_in").unwrap();
        let chain = entry_chain(&g, entry);
        assert_eq!(chain.nodes, vec![entry], "firewall is not chain-safe");
        assert_eq!(chain.cont, Some((g.node_index("fw").unwrap(), 0)));
    }

    #[test]
    fn chain_stops_at_fan_out() {
        let (_, g) = graph(
            "src :: FromNetfront(); c :: IPClassifier(udp, -); \
             a :: ToNetfront(0); b :: ToNetfront(1); \
             src -> c; c[0] -> a; c[1] -> b;",
        );
        let chain = entry_chain(&g, g.node_index("src").unwrap());
        assert_eq!(chain.nodes.len(), 1);
        assert_eq!(chain.cont, Some((g.node_index("c").unwrap(), 0)));
    }

    #[test]
    fn chain_stops_at_fan_in() {
        // Two sources converge on one filter: the filter has in-degree 2,
        // so neither entry chain may swallow it.
        let (_, g) = graph(
            "s1 :: FromNetfront(0); s2 :: FromNetfront(1); \
             f :: IPFilter(allow udp); d :: ToNetfront(); \
             s1 -> f; s2 -> [0]f; f -> d;",
        );
        let chain = entry_chain(&g, g.node_index("s1").unwrap());
        assert_eq!(chain.nodes, vec![g.node_index("s1").unwrap()]);
        assert_eq!(chain.cont, Some((g.node_index("f").unwrap(), 0)));
    }

    #[test]
    fn whole_linear_chain_has_no_continuation() {
        let (_, g) = graph("FromNetfront() -> IPFilter(allow udp) -> ToNetfront();");
        let chain = entry_chain(&g, 0);
        assert_eq!(chain.nodes.len(), 3);
        assert_eq!(chain.cont, None, "chain ends at the egress element");
    }

    #[test]
    fn infeasible_branches_drop_on_replay() {
        // Contradictory filters: udp then tcp. The composed summary has no
        // surviving branch.
        let (_, g) =
            graph("FromNetfront() -> IPFilter(allow udp) -> IPFilter(allow tcp) -> ToNetfront();");
        let chain = entry_chain(&g, 0);
        let s = summarize_chain(&g, &chain.nodes).unwrap();
        let outs = s.apply(&SymPacket::unconstrained(), &chain.nodes);
        assert!(outs.is_empty(), "udp ∧ tcp is infeasible");
    }

    #[test]
    fn constraints_apply_to_entry_values_not_slots() {
        // The responder swaps src/dst; a later constraint on the entry dst
        // must narrow the value now living in the src field.
        let (_, g) = graph("FromNetfront() -> ICMPPingResponder() -> ToNetfront();");
        let chain = entry_chain(&g, 0);
        let s = summarize_chain(&g, &chain.nodes).unwrap();
        let outs = s.apply(&SymPacket::unconstrained(), &chain.nodes);
        assert_eq!(outs.len(), 1);
        let (_, p) = &outs[0];
        assert!(p.provably_same(p.get(Field::IpDst), p.ingress.get(Field::IpSrc)));
        assert!(p.provably_same(p.get(Field::IpSrc), p.ingress.get(Field::IpDst)));
        assert!(p.provably_eq(Field::Proto, 1), "ICMP constraint captured");
    }
}
