//! `IPNAT` — network address and port translation (NAPT).

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::{FlowKey, IpProto, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// First external port handed out by the allocator.
const PORT_BASE: u16 = 1024;

/// `IPNAT(PUBLIC_ADDR)` — source NAT with per-flow port allocation.
///
/// * Input 0 / output 0: inside → outside. The source address is rewritten
///   to `PUBLIC_ADDR` and the source port to an allocated external port.
/// * Input 1 / output 1: outside → inside. Packets addressed to
///   `PUBLIC_ADDR` on an allocated port are rewritten back to the internal
///   endpoint; everything else is dropped.
///
/// One of Table 1's middleboxes: safe only when the *operator* runs it
/// (it rewrites source addresses, which the anti-spoofing rule forbids for
/// tenants).
#[derive(Debug)]
pub struct IpNat {
    public: Ipv4Addr,
    /// internal flow (directed, inside->out) -> external source port.
    forward: HashMap<FlowKey, u16>,
    /// (external port, remote addr, remote port, proto) -> internal flow.
    reverse: HashMap<(u16, Ipv4Addr, u16, u8), FlowKey>,
    next_port: u16,
    translated_out: u64,
    translated_in: u64,
    dropped: u64,
}

impl IpNat {
    /// Creates a NAT advertising `public`.
    pub fn new(public: Ipv4Addr) -> IpNat {
        IpNat {
            public,
            forward: HashMap::new(),
            reverse: HashMap::new(),
            next_port: PORT_BASE,
            translated_out: 0,
            translated_in: 0,
            dropped: 0,
        }
    }

    /// Parses `IPNAT(PUBLIC_ADDR)`.
    pub fn from_args(args: &ConfigArgs) -> Result<IpNat, ElementError> {
        args.expect_len(1)?;
        Ok(IpNat::new(args.addr_at(0)?))
    }

    /// Number of active translations.
    pub fn mappings(&self) -> usize {
        self.forward.len()
    }

    /// Counters: (outbound translated, inbound translated, dropped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.translated_out, self.translated_in, self.dropped)
    }

    /// The advertised public address.
    pub fn public_addr(&self) -> Ipv4Addr {
        self.public
    }

    fn alloc_port(&mut self) -> u16 {
        // Linear scan from the cursor; 64k flows exhaust the space, after
        // which ports are reused (matching real NAPT behavior under churn).
        let p = self.next_port;
        self.next_port = if self.next_port == u16::MAX {
            PORT_BASE
        } else {
            self.next_port + 1
        };
        p
    }

    fn set_l4_ports(pkt: &mut Packet, src: Option<u16>, dst: Option<u16>) {
        match pkt.ip_proto() {
            Ok(IpProto::Udp) => {
                if let Ok(mut u) = pkt.udp_mut() {
                    if let Some(s) = src {
                        u.set_src_port(s);
                    }
                    if let Some(d) = dst {
                        u.set_dst_port(d);
                    }
                }
            }
            Ok(IpProto::Tcp) => {
                if let Ok(mut t) = pkt.tcp_mut() {
                    if let Some(s) = src {
                        t.set_src_port(s);
                    }
                    if let Some(d) = dst {
                        t.set_dst_port(d);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Element for IpNat {
    fn class_name(&self) -> &'static str {
        "IPNAT"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(2, 2)
    }

    fn push(&mut self, port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let Ok(key) = FlowKey::of(&pkt) else {
            self.dropped += 1;
            return;
        };
        match port {
            0 => {
                let ext_port = match self.forward.get(&key) {
                    Some(&p) => p,
                    None => {
                        let p = self.alloc_port();
                        self.forward.insert(key, p);
                        self.reverse
                            .insert((p, key.dst, key.dst_port, key.proto.number()), key);
                        p
                    }
                };
                if let Ok(mut ip) = pkt.ipv4_mut() {
                    ip.set_src(self.public);
                    ip.update_checksum();
                }
                IpNat::set_l4_ports(&mut pkt, Some(ext_port), None);
                self.translated_out += 1;
                out.push(0, pkt);
            }
            _ => {
                let Ok(ip) = pkt.ipv4() else {
                    self.dropped += 1;
                    return;
                };
                if ip.dst() != self.public {
                    self.dropped += 1;
                    return;
                }
                let lookup = (key.dst_port, key.src, key.src_port, key.proto.number());
                match self.reverse.get(&lookup).copied() {
                    Some(internal) => {
                        if let Ok(mut ip) = pkt.ipv4_mut() {
                            ip.set_dst(internal.src);
                            ip.update_checksum();
                        }
                        IpNat::set_l4_ports(&mut pkt, None, Some(internal.src_port));
                        self.translated_in += 1;
                        out.push(1, pkt);
                    }
                    None => self.dropped += 1,
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    const PUB: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const INSIDE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);
    const SERVER: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    fn nat() -> IpNat {
        IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1")).unwrap()
    }

    #[test]
    fn outbound_rewrites_source() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp()
            .src(INSIDE, 5555)
            .dst(SERVER, 53)
            .build();
        n.push(0, pkt, &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        let ip = out.ipv4().unwrap();
        assert_eq!(ip.src(), PUB);
        assert!(ip.verify_checksum());
        assert_eq!(out.udp().unwrap().src_port(), PORT_BASE);
        assert_eq!(out.udp().unwrap().dst_port(), 53);
    }

    #[test]
    fn reply_translated_back() {
        let mut n = nat();
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::default(),
            &mut s,
        );
        let ext_port = s.pushed[0].1.udp().unwrap().src_port();
        let reply = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(PUB, ext_port)
            .build();
        n.push(1, reply, &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 2);
        let back = &s.pushed[1].1;
        assert_eq!(back.ipv4().unwrap().dst(), INSIDE);
        assert_eq!(back.udp().unwrap().dst_port(), 5555);
    }

    #[test]
    fn same_flow_keeps_mapping() {
        let mut n = nat();
        let mut s = VecSink::new();
        for _ in 0..3 {
            n.push(
                0,
                PacketBuilder::udp()
                    .src(INSIDE, 5555)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        assert_eq!(n.mappings(), 1);
        let ports: Vec<u16> = s
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        assert!(ports.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut n = nat();
        let mut s = VecSink::new();
        for sport in [100u16, 200, 300] {
            n.push(
                0,
                PacketBuilder::udp()
                    .src(INSIDE, sport)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        let mut ports: Vec<u16> = s
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp().src(SERVER, 53).dst(PUB, 2000).build();
        n.push(1, pkt, &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(n.counters().2, 1);
    }

    #[test]
    fn inbound_to_other_address_dropped() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(Ipv4Addr::new(9, 9, 9, 9), PORT_BASE)
            .build();
        n.push(1, pkt, &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
    }
}
