//! A 3G radio (RRC) energy model for the push-notification experiment
//! (paper §4.5, §8, Figure 13).
//!
//! UMTS radios move between three RRC states — IDLE, CELL_FACH (shared
//! channel), and CELL_DCH (dedicated channel) — with *tail timers*:
//! after activity the radio lingers in DCH, then FACH, before dropping
//! back to IDLE. The tail energy dominates for chatty traffic; batching
//! amortizes it, which is the entire point of the paper's batcher module.
//!
//! The constants are calibrated to the paper's Monsoon measurements on a
//! Samsung Galaxy Nexus: a 30 s notification interval averages ≈240 mW,
//! a 240 s batching interval ≈140 mW (Figure 13), and an 8 Mb/s download
//! costs ≈570 mW over HTTP vs ≈650 mW over HTTPS (§8, "the added cost of
//! HTTPS comes from the CPU cycles needed to decrypt the traffic").

use crate::des::{SimTime, SECOND};

/// Radio/device power parameters (milliwatts, seconds).
#[derive(Debug, Clone, Copy)]
pub struct RadioParams {
    /// Device baseline (everything but the radio) in mW.
    pub base_mw: f64,
    /// CELL_DCH power in mW.
    pub dch_mw: f64,
    /// CELL_FACH power in mW.
    pub fach_mw: f64,
    /// IDLE radio power in mW.
    pub idle_mw: f64,
    /// DCH tail timer.
    pub dch_tail: SimTime,
    /// FACH tail timer (after the DCH tail).
    pub fach_tail: SimTime,
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams {
            base_mw: 120.0,
            dch_mw: 600.0,
            fach_mw: 360.0,
            idle_mw: 0.0,
            dch_tail: 3 * SECOND,
            fach_tail: 5 * SECOND,
        }
    }
}

/// Average device power (mW) for a schedule of radio wake-ups over
/// `duration`, integrating the RRC state machine.
///
/// `wakeups` must be sorted ascending. Every wake-up promotes the radio
/// to DCH; it then decays through the DCH and FACH tails unless another
/// wake-up arrives first.
pub fn average_power_mw(params: &RadioParams, wakeups: &[SimTime], duration: SimTime) -> f64 {
    if duration == 0 {
        return params.base_mw;
    }
    let mut radio_energy = 0.0; // mW * ns.
    let mut i = 0;
    while i < wakeups.len() {
        let start = wakeups[i];
        if start >= duration {
            break;
        }
        let next = wakeups.get(i + 1).copied().unwrap_or(SimTime::MAX);
        let horizon = next.min(duration);

        // DCH phase.
        let dch_end = (start + params.dch_tail).min(horizon);
        radio_energy += params.dch_mw * (dch_end - start) as f64;
        // FACH phase.
        if dch_end < horizon {
            let fach_end = (start + params.dch_tail + params.fach_tail).min(horizon);
            radio_energy += params.fach_mw * (fach_end - dch_end) as f64;
            // IDLE until the next wake-up.
            if fach_end < horizon {
                radio_energy += params.idle_mw * (horizon - fach_end) as f64;
            }
        }
        i += 1;
    }
    params.base_mw + radio_energy / duration as f64
}

/// Average power for periodic batched delivery every `interval` over
/// `duration` (the Figure 13 x-axis).
pub fn batched_delivery_power_mw(
    params: &RadioParams,
    interval: SimTime,
    duration: SimTime,
) -> f64 {
    let wakeups: Vec<SimTime> = (0..)
        .map(|k| k * interval)
        .take_while(|&t| t < duration)
        .collect();
    average_power_mw(params, &wakeups, duration)
}

/// Power parameters for the HTTP-vs-HTTPS download comparison (§8).
#[derive(Debug, Clone, Copy)]
pub struct DownloadPower {
    /// Radio + platform power while streaming at the measured rate (mW).
    pub streaming_mw: f64,
    /// Extra CPU power for TLS record decryption (mW).
    pub tls_cpu_mw: f64,
}

impl Default for DownloadPower {
    fn default() -> Self {
        DownloadPower {
            streaming_mw: 570.0,
            tls_cpu_mw: 80.0,
        }
    }
}

/// Average download power over HTTP or HTTPS.
pub fn download_power_mw(p: &DownloadPower, https: bool) -> f64 {
    if https {
        p.streaming_mw + p.tls_cpu_mw
    } else {
        p.streaming_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_endpoints() {
        let p = RadioParams::default();
        let hour = 3600 * SECOND;
        let p30 = batched_delivery_power_mw(&p, 30 * SECOND, hour);
        let p240 = batched_delivery_power_mw(&p, 240 * SECOND, hour);
        // Paper: ≈240 mW at a 30 s interval, ≈140 mW at 240 s.
        assert!((230.0..=250.0).contains(&p30), "{p30}");
        assert!((125.0..=150.0).contains(&p240), "{p240}");
    }

    #[test]
    fn power_monotonically_decreases_with_interval() {
        let p = RadioParams::default();
        let hour = 3600 * SECOND;
        let vals: Vec<f64> = [30u64, 60, 120, 240]
            .iter()
            .map(|&s| batched_delivery_power_mw(&p, s * SECOND, hour))
            .collect();
        assert!(vals.windows(2).all(|w| w[0] > w[1]), "{vals:?}");
    }

    #[test]
    fn back_to_back_wakeups_keep_dch() {
        let p = RadioParams::default();
        // Wake-ups every second: the radio never leaves DCH.
        let wakeups: Vec<SimTime> = (0..60).map(|k| k * SECOND).collect();
        let avg = average_power_mw(&p, &wakeups, 60 * SECOND);
        assert!((avg - (p.base_mw + p.dch_mw)).abs() < 1.0, "{avg}");
    }

    #[test]
    fn no_wakeups_is_baseline() {
        let p = RadioParams::default();
        assert_eq!(average_power_mw(&p, &[], 100 * SECOND), p.base_mw);
    }

    #[test]
    fn https_costs_fifteen_percent_more() {
        let d = DownloadPower::default();
        let http = download_power_mw(&d, false);
        let https = download_power_mw(&d, true);
        assert_eq!(http, 570.0);
        assert_eq!(https, 650.0);
        let overhead = (https - http) / http;
        assert!((0.10..=0.20).contains(&overhead));
    }
}
