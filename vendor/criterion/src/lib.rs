//! Minimal offline stand-in for `criterion`.
//!
//! Implements the macro/struct surface the bench crate uses
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`) with a simple
//! warmup-then-measure loop that prints mean wall-clock time per
//! iteration. It has none of criterion's statistics, but a `cargo bench`
//! run completes offline and produces comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the stub treats all variants the
/// same (setup runs outside the timed section either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Re-export matching `criterion::black_box` (std's hint is what the
/// real crate uses on recent toolchains).
pub use std::hint::black_box;

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Total measured time and iteration count for the report.
    elapsed: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 10;
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < TARGET {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` with a fresh `setup()` value per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let wall = Instant::now();
        while measured < TARGET && wall.elapsed() < TARGET * 4 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iters = iters.max(1);
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / (b.iters as u32)
        };
        println!("{name:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
