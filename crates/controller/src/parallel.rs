//! Parallel request verification — the paper's §4.3 "Scaling the
//! controller" conjecture, implemented:
//!
//! > "we conjecture it is fairly easy to parallelize the controller by
//! > simply having multiple machines answer the queries. Care must be
//! > taken, however, to ensure requests of the same user reach the same
//! > controller (to ensure ordering of operations), or to deal with
//! > problems that may arise when different controllers simultaneously
//! > decide to take conflicting actions: e.g. install new processing
//! > modules onto the same platform that does not have enough capacity."
//!
//! [`Controller::deploy_batch`] shards a batch of requests by client (so
//! one client's requests stay ordered on one shard), verifies every shard
//! against a snapshot of the network in parallel, and then commits
//! serially. A commit that finds its proposed platform filled up by an
//! earlier commit — the conflicting-action case — is re-verified from
//! scratch against the now-current network.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::{
    controller::{Controller, DeployError, DeployResponse},
    request::ClientRequest,
};

/// A shard's verified proposal, awaiting serial commit.
struct Proposal {
    batch_index: usize,
    client: String,
    request: ClientRequest,
    platform: String,
    sandboxed: bool,
}

impl Controller {
    /// Deploys a batch of requests using `shards` parallel verifiers.
    ///
    /// Results are returned in batch order. Requests from the same client
    /// are processed by the same shard, in order. Proposals whose platform
    /// ran out of capacity between snapshot and commit are transparently
    /// re-verified against the live network.
    pub fn deploy_batch(
        &mut self,
        batch: Vec<(String, ClientRequest)>,
        shards: usize,
    ) -> Vec<Result<DeployResponse, DeployError>> {
        let shards = shards.max(1);
        let n = batch.len();

        // Partition by client hash: per-user ordering within a shard.
        let mut partitions: Vec<Vec<(usize, String, ClientRequest)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (i, (client, request)) in batch.into_iter().enumerate() {
            let mut h = DefaultHasher::new();
            client.hash(&mut h);
            partitions[(h.finish() as usize) % shards].push((i, client, request));
        }

        // Phase 1: parallel verification against the snapshot.
        let mut results: Vec<Option<Result<DeployResponse, DeployError>>> =
            (0..n).map(|_| None).collect();
        let mut proposals: Vec<Proposal> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    let snapshot = self.verification_clone();
                    scope.spawn(move || {
                        let mut snapshot = snapshot;
                        let mut out = Vec::new();
                        for (idx, client, request) in part {
                            let r = snapshot.deploy(&client, request.clone());
                            out.push((idx, client, request, r));
                        }
                        (out, snapshot.stats())
                    })
                })
                .collect();
            for h in handles {
                let (rows, shard_stats) = h.join().expect("shard panicked");
                // Shard verification runs against throwaway snapshots, but
                // the work was done on this controller's behalf — fold the
                // whole statistics struct (requests, rejections, timing,
                // cache traffic) into this controller's, so a batch deploy
                // reports the same statistics as the serial equivalent.
                self.fold_shard_stats(shard_stats);
                for (idx, client, request, r) in rows {
                    match r {
                        Ok(resp) => proposals.push(Proposal {
                            batch_index: idx,
                            client,
                            request,
                            platform: resp.platform,
                            sandboxed: resp.sandboxed,
                        }),
                        Err(e) => results[idx] = Some(Err(e)),
                    }
                }
            }
        });

        // Phase 2: serial commit, in batch order, re-verifying on
        // conflict (the proposed platform no longer has room).
        proposals.sort_by_key(|p| p.batch_index);
        for p in proposals {
            let conflict = !self.platform_has_room(&p.platform);
            let r = if conflict {
                // The conflicting-action case: full re-verification
                // against the live network. The shard already counted
                // this request, so the re-run must not count it again.
                self.deploy_counted(&p.client, p.request, false)
            } else {
                // The shard verified this placement against an equivalent
                // snapshot (addresses within one pool are
                // interchangeable): commit without re-checking.
                self.commit_verified(&p.client, p.request, &p.platform, p.sandboxed)
            };
            results[p.batch_index] = Some(r);
        }

        results
            .into_iter()
            .map(|r| r.expect("every request produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_symnet::RequesterClass;
    use innet_topology::{NodeKind, PlatformSpec, Topology};
    use std::collections::HashSet;

    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;

    fn controller() -> Controller {
        let mut c = Controller::new(Topology::figure3());
        for i in 0..8 {
            c.register_client(
                format!("client{i}"),
                RequesterClass::Client,
                vec!["172.16.15.133".parse().unwrap()],
            );
        }
        c
    }

    fn request(i: usize) -> ClientRequest {
        let mut r = ClientRequest::parse(FIG4).unwrap();
        r.module_name = format!("batcher{i}");
        // Way-points must reference the renamed module.
        let req = format!(
            "reach from internet udp -> batcher{i}:dst:0 dst 172.16.15.133 \
             -> client dst port 1500 const proto && dst port && payload"
        );
        r.requirements = vec![innet_policy::Requirement::parse(&req).unwrap()];
        r
    }

    #[test]
    fn batch_deploys_all_with_distinct_addresses() {
        let mut c = controller();
        let batch: Vec<_> = (0..8).map(|i| (format!("client{i}"), request(i))).collect();
        let results = c.deploy_batch(batch, 4);
        assert_eq!(results.len(), 8);
        let mut addrs = HashSet::new();
        for r in results {
            let resp = r.expect("all deployable");
            assert!(addrs.insert(resp.public_addr), "addresses must be unique");
        }
        assert_eq!(c.modules().len(), 8);
        assert_eq!(c.flow_rules().len(), 8);
    }

    #[test]
    fn capacity_conflict_resolved_serially() {
        // Shrink platform 3 to one slot: two parallel shards both propose
        // it; only one commit can land there, and the other must fail
        // cleanly after re-verification (platforms 1/2 are unreachable
        // from the Internet, so there is nowhere else to go).
        let mut topo = Topology::figure3();
        let p3 = topo.index_of("platform3").unwrap();
        if let NodeKind::Platform(spec) = &mut topo.nodes[p3].kind {
            *spec = PlatformSpec {
                capacity: 1,
                ..spec.clone()
            };
        }
        let mut c = Controller::new(topo);
        c.register_client(
            "client0",
            RequesterClass::Client,
            vec!["172.16.15.133".parse().unwrap()],
        );
        c.register_client(
            "client1",
            RequesterClass::Client,
            vec!["172.16.15.133".parse().unwrap()],
        );
        let results = c.deploy_batch(
            vec![
                ("client0".to_string(), request(0)),
                ("client1".to_string(), request(1)),
            ],
            2,
        );
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 1, "exactly one deployment fits");
        assert_eq!(c.modules().len(), 1);
    }

    #[test]
    fn same_client_requests_stay_ordered() {
        let mut c = controller();
        let batch: Vec<_> = (0..4)
            .map(|i| ("client0".to_string(), request(i)))
            .collect();
        let results = c.deploy_batch(batch, 4);
        // All land (platform3 has room); module ids are committed in
        // batch order.
        let ids: Vec<u64> = results
            .iter()
            .map(|r| r.as_ref().expect("deployable").module_id)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "commit order follows batch order");
    }

    #[test]
    fn parallel_matches_serial_outcome() {
        let mut serial = controller();
        let mut parallel = controller();
        let batch: Vec<_> = (0..6).map(|i| (format!("client{i}"), request(i))).collect();
        for (client, req) in batch.clone() {
            serial.deploy(&client, req).expect("deployable");
        }
        let results = parallel.deploy_batch(batch, 3);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(serial.modules().len(), parallel.modules().len());
    }
}
