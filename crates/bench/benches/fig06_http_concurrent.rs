//! Figure 6: 100 concurrent HTTP clients retrieving a 50 MB file through
//! an In-Net platform at 25 Mb/s each.

use innet::experiments::fig06_http::{http_concurrent, HttpParams};
use innet_bench::Report;

fn main() {
    let flows = http_concurrent(&HttpParams::default());
    let mut r = Report::new(
        "fig06_http_concurrent",
        "Figure 6: connection and transfer time per flow (100 clients, 50 MB @ 25 Mb/s)",
    );
    r.line(&format!(
        "{:>6} {:>16} {:>14} {:>12}",
        "flow", "connection (ms)", "transfer (s)", "total (s)"
    ));
    for f in flows.iter().step_by(10) {
        r.line(&format!(
            "{:>6} {:>16.1} {:>14.2} {:>12.2}",
            f.flow, f.connection_ms, f.transfer_s, f.total_s
        ));
    }
    let min = flows.iter().map(|f| f.total_s).fold(f64::MAX, f64::min);
    let max = flows.iter().map(|f| f.total_s).fold(0.0f64, f64::max);
    r.blank();
    r.line(&format!(
        "total transfer band: {min:.2}–{max:.2} s (paper: ~16.6–17.8 s)"
    ));
    r.finish();
}
