//! Figure 15: valid requests served per second while defending against
//! a Slowloris attack with In-Net reverse proxies.

use innet::experiments::fig15_slowloris::{slowloris, SlowlorisParams};
use innet_bench::Report;

fn main() {
    let params = SlowlorisParams::default();
    let samples = slowloris(&params);
    let mut r = Report::new(
        "fig15_slowloris",
        "Figure 15: valid connections/s over a 900 s Slowloris timeline",
    );
    r.line(&format!(
        "{:>8} {:>16} {:>14}",
        "t (s)", "single server", "with In-Net"
    ));
    for s in samples.iter().step_by(30) {
        r.line(&format!(
            "{:>8} {:>16.0} {:>14.0}",
            s.t_s, s.single_server_rps, s.with_innet_rps
        ));
    }
    r.blank();
    r.line(&format!(
        "attack from t={} to t={}; defense detected at t={}",
        params.attack_start_s,
        params.attack_end_s,
        params.attack_start_s + params.detect_after_s
    ));
    r.line(
        "paper: the single server starves during the attack; In-Net \
         quickly instantiates proxies and diverts traffic, restoring the \
         service rate",
    );
    r.finish();
}
