//! Parser for the requirements language.

use innet_packet::{pattern::PatternExpr, Cidr};

use crate::types::{ConstField, HopSpec, NodeRef, Requirement};

/// Error produced when a requirement fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "requirement parse error: {}", self.message)
    }
}

impl std::error::Error for PolicyParseError {}

fn err(m: impl Into<String>) -> PolicyParseError {
    PolicyParseError { message: m.into() }
}

fn parse_node(tok: &str) -> Result<NodeRef, PolicyParseError> {
    match tok {
        "internet" => return Ok(NodeRef::Internet),
        "client" | "clients" => return Ok(NodeRef::Client),
        _ => {}
    }
    if let Ok(c) = tok.parse::<Cidr>() {
        return Ok(NodeRef::Addr(c));
    }
    // Reject IP-with-port-count-like garbage early: a node must be an
    // identifier or identifier:identifier[:port].
    let parts: Vec<&str> = tok.split(':').collect();
    let ident_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '@' || c == '/')
    };
    match parts.as_slice() {
        [name] if ident_ok(name) => Ok(NodeRef::Named(name.to_string())),
        [module, element] if ident_ok(module) && ident_ok(element) => Ok(NodeRef::ElementPort {
            module: module.to_string(),
            element: element.to_string(),
            port: 0,
        }),
        [module, element, port] if ident_ok(module) && ident_ok(element) => {
            Ok(NodeRef::ElementPort {
                module: module.to_string(),
                element: element.to_string(),
                port: port
                    .parse()
                    .map_err(|_| err(format!("bad port in node '{tok}'")))?,
            })
        }
        _ => Err(err(format!("bad node '{tok}'"))),
    }
}

fn parse_const_fields(s: &str) -> Result<Vec<ConstField>, PolicyParseError> {
    let mut out = Vec::new();
    for part in s.split("&&") {
        let norm = part.split_whitespace().collect::<Vec<_>>().join(" ");
        let field = match norm.as_str() {
            "proto" | "ip proto" => ConstField::Proto,
            "src port" => ConstField::SrcPort,
            "dst port" => ConstField::DstPort,
            "src host" | "src" | "src addr" => ConstField::SrcAddr,
            "dst host" | "dst" | "dst addr" => ConstField::DstAddr,
            "ttl" => ConstField::Ttl,
            "tos" => ConstField::Tos,
            "payload" => ConstField::Payload,
            other => return Err(err(format!("unknown const field '{other}'"))),
        };
        out.push(field);
    }
    if out.is_empty() {
        return Err(err("empty const clause"));
    }
    Ok(out)
}

/// Parses one hop segment: `node [flow] [const fields]`.
fn parse_hop(seg: &str) -> Result<HopSpec, PolicyParseError> {
    let seg = seg.trim();
    let (node_tok, rest) = match seg.split_once(char::is_whitespace) {
        Some((n, r)) => (n, r.trim()),
        None => (seg, ""),
    };
    if node_tok.is_empty() {
        return Err(err("empty hop"));
    }
    let node = parse_node(node_tok)?;
    let (flow_s, const_s) = match rest.split_once("const") {
        Some((f, c)) => (f.trim(), Some(c.trim())),
        None => (rest, None),
    };
    let flow: PatternExpr = flow_s
        .parse()
        .map_err(|e| err(format!("bad flow specification '{flow_s}': {e}")))?;
    let const_fields = match const_s {
        Some(c) => parse_const_fields(c)?,
        None => Vec::new(),
    };
    Ok(HopSpec {
        node,
        flow,
        const_fields,
    })
}

/// Parses a full requirement statement.
pub fn parse_requirement(s: &str) -> Result<Requirement, PolicyParseError> {
    let s = s.split_whitespace().collect::<Vec<_>>().join(" ");
    let body = s
        .strip_prefix("reach from ")
        .or_else(|| s.strip_prefix("reach from"))
        .ok_or_else(|| err("requirement must start with 'reach from'"))?;
    let mut segments = body.split("->");
    let first = segments.next().ok_or_else(|| err("missing source"))?;
    let first_hop = parse_hop(first)?;
    if !first_hop.const_fields.is_empty() {
        return Err(err("the source hop cannot carry a const clause"));
    }
    let hops: Vec<HopSpec> = segments.map(parse_hop).collect::<Result<_, _>>()?;
    if hops.is_empty() {
        return Err(err("a requirement needs at least one '->' way-point"));
    }
    Ok(Requirement {
        from: first_hop.node,
        from_flow: first_hop.flow,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::pattern::PatternExpr;

    #[test]
    fn figure4_requirement() {
        let r = parse_requirement(
            "reach from internet udp -> Batcher:dst:0 dst 172.16.15.133 \
             -> client dst port 1500 const proto && dst port && payload",
        )
        .unwrap();
        assert_eq!(r.from, NodeRef::Internet);
        assert_eq!(r.from_flow, "udp".parse::<PatternExpr>().unwrap());
        assert_eq!(r.hops.len(), 2);
        assert_eq!(
            r.hops[0].node,
            NodeRef::ElementPort {
                module: "Batcher".to_string(),
                element: "dst".to_string(),
                port: 0
            }
        );
        assert_eq!(
            r.hops[1].const_fields,
            vec![ConstField::Proto, ConstField::DstPort, ConstField::Payload]
        );
    }

    #[test]
    fn operator_http_policy() {
        let r = parse_requirement("reach from internet tcp src port 80 -> HTTPOptimizer -> client")
            .unwrap();
        assert_eq!(r.hops[0].node, NodeRef::Named("HTTPOptimizer".to_string()));
        assert_eq!(r.hops[1].node, NodeRef::Client);
        assert!(r.hops[1].const_fields.is_empty());
    }

    #[test]
    fn simple_udp_reachability() {
        let r = parse_requirement("reach from internet udp -> client dst port 1500").unwrap();
        assert_eq!(r.hops.len(), 1);
        assert_eq!(
            r.hops[0].flow,
            "dst port 1500".parse::<PatternExpr>().unwrap()
        );
    }

    #[test]
    fn address_nodes() {
        let r = parse_requirement("reach from 10.0.0.0/8 -> 192.0.2.7").unwrap();
        assert!(matches!(r.from, NodeRef::Addr(_)));
        assert!(matches!(r.hops[0].node, NodeRef::Addr(c) if c.prefix_len() == 32));
    }

    #[test]
    fn element_port_defaults_to_zero() {
        let r = parse_requirement("reach from internet -> batcher:dst -> client").unwrap();
        assert_eq!(
            r.hops[0].node,
            NodeRef::ElementPort {
                module: "batcher".to_string(),
                element: "dst".to_string(),
                port: 0
            }
        );
    }

    #[test]
    fn empty_flow_means_any() {
        let r = parse_requirement("reach from internet -> client").unwrap();
        assert_eq!(r.from_flow, PatternExpr::any());
        assert_eq!(r.hops[0].flow, PatternExpr::any());
    }

    #[test]
    fn errors() {
        assert!(parse_requirement("from internet -> client").is_err());
        assert!(parse_requirement("reach from internet").is_err());
        assert!(parse_requirement("reach from internet -> client const wibble").is_err());
        assert!(parse_requirement("reach from internet banana -> client").is_err());
        assert!(parse_requirement("reach from internet ->").is_err());
        assert!(
            parse_requirement("reach from internet udp const payload -> client").is_err(),
            "source hop cannot carry const"
        );
        assert!(parse_requirement("reach from a:b:c:d -> client").is_err());
    }

    #[test]
    fn display_roundtrip_nodes() {
        let r =
            parse_requirement("reach from internet udp -> batcher:dst:0 -> client dst port 1500")
                .unwrap();
        let shown = r.to_string();
        assert!(shown.contains("reach from internet"));
        assert!(shown.contains("batcher:dst:0"));
        assert!(shown.contains("client"));
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_requirement("reach from internet udp -> client").unwrap();
        let b = parse_requirement("reach   from\n internet\t udp ->\n  client").unwrap();
        assert_eq!(a, b);
    }
}
